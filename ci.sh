#!/usr/bin/env bash
# CI gate: the tier-1 contract (ROADMAP.md) plus the parallel-snowball
# and parallel-clustering equivalence suites. Test threads are pinned so
# the harness schedule is reproducible; the pipeline's own worker counts
# are set per-test.
set -euo pipefail
cd "$(dirname "$0")"

# ---- Tier 1: build + root-package tests. ----
cargo build --release
cargo test -q

# ---- Sequential-oracle equivalence suites. ----
cargo test -q -p daas-world --test parallel_equivalence -- --test-threads 4
cargo test -q -p daas-detector --test parallel_equivalence -- --test-threads 4
cargo test -q -p daas-detector --test snowball_props -- --test-threads 4
cargo test -q -p daas-cluster --test parallel_equivalence -- --test-threads 4
cargo test -q -p daas-measure --test parallel_equivalence -- --test-threads 4
cargo test -q --test determinism -- --test-threads 4

# ---- Streaming (live) equivalence suites: online detector →
#      incremental clusterer → live measurement vs the batch oracle. ----
cargo test -q -p daas-detector --test online_equivalence -- --test-threads 4
cargo test -q -p daas-cluster --test live_equivalence -- --test-threads 4
cargo test -q -p daas-measure --test live_equivalence -- --test-threads 4
cargo test -q --test live_equivalence -- --test-threads 4

# ---- Observability: recorder-on runs must not change artifacts, and
#      the --metrics-out summary must conform to the checked-in schema. ----
cargo test -q --test obs_equivalence -- --test-threads 4
cargo test -q -p daas-detector --test cache_hit_rate -- --test-threads 4
OBS_TMP="$(mktemp -d)"
cargo run -q --release -p daas-cli --bin daas-lab -- --scale 0.05 --exp table1 \
  --metrics-out "$OBS_TMP/metrics.json" --trace-out "$OBS_TMP/trace.jsonl" > /dev/null
cargo run -q --release -p daas-obs --bin obs_validate -- \
  schemas/metrics_summary.schema.json "$OBS_TMP/metrics.json"
rm -rf "$OBS_TMP"

# ---- Streaming perf smoke: replay a small world through the live
#      pipeline with the recorder on and fail if the incremental
#      clusterer's total window-update time exceeds the re-cluster-
#      from-scratch baseline measured in the same run (relative gate,
#      so the verdict is stable across machine speeds). ----
DAAS_SCALE=0.05 cargo run -q --release -p daas-bench --bin live_smoke

# ---- Serve gate: a real daas-serve daemon on a scale-0.05 world
#      ingests half the chain, checkpoints, is hard-killed, restores in
#      a fresh process, finishes the stream while answering ≥1000
#      concurrent address-risk queries across ≥2 snapshot epochs — and
#      its final artifact must be byte-identical to the one-shot batch
#      pipeline run in-process. ----
cargo test -q --release -p daas-serve --test serve_gate -- --ignored --test-threads 1

# ---- Scrape gate: two scale-0.05 daemons drive the identical command
#      sequence — one polled on /metrics + /healthz for the whole
#      ingest (obs query validated against obs_snapshot.schema.json),
#      one with no scrape listener — and the artifact plus the drained
#      metrics summary must be identical: the telemetry read path
#      records nothing (DESIGN.md §15). ----
cargo test -q --release -p daas-serve --test scrape_gate -- --ignored --test-threads 1

# ---- Scale-sweep smoke: the columnar arena must complete a multi-×
#      run with bounded memory. A small multiplier keeps the smoke
#      fast; the RSS ceiling (generous for the 0.25 world, which peaks
#      well under 200 MiB) catches an accidental return to per-tx
#      heap-allocated storage or an interner/columns leak. The real
#      sweep (scales 1/2/5) regenerates BENCH_scale_sweep.json. ----
SWEEP_TMP="$(mktemp -d)"
DAAS_SCALES=0.25 DAAS_RSS_CEILING_MB=512 \
  DAAS_SCALE_SWEEP_OUT="$SWEEP_TMP/BENCH_scale_sweep.json" \
  cargo run -q --release -p daas-bench --bin scale_sweep
test -s "$SWEEP_TMP/BENCH_scale_sweep.json"
rm -rf "$SWEEP_TMP"

# ---- Scenario pack: every shipped scenario must conform to the
#      scenario schema, and the robustness harness must run the full
#      matrix at a fast smoke scale (honours DAAS_THREADS /
#      DAAS_TRACE / DAAS_METRICS like every exp_* harness). ----
cargo run -q --release -p daas-obs --bin scenario_validate -- \
  schemas/scenario.schema.json scenarios
ROB_TMP="$(mktemp -d)"
DAAS_SCALE=0.25 DAAS_ROBUSTNESS_OUT="$ROB_TMP/BENCH_robustness.json" \
  cargo run -q --release -p daas-bench --bin exp_robustness > /dev/null
test -s "$ROB_TMP/BENCH_robustness.json"
rm -rf "$ROB_TMP"

# ---- Everything else. ----
cargo test -q --workspace

# ---- Slow full-scale equivalence (paper-scale world, opt-out with
#      CI_FULL_SCALE=0). ----
if [[ "${CI_FULL_SCALE:-1}" == "1" ]]; then
  cargo test -q --release -p daas-world --test parallel_equivalence -- --ignored --test-threads 1
  cargo test -q --release -p daas-detector --test parallel_equivalence -- --ignored --test-threads 1
  cargo test -q --release -p daas-cluster --test parallel_equivalence -- --ignored --test-threads 1
  cargo test -q --release -p daas-measure --test parallel_equivalence -- --ignored --test-threads 1
  cargo test -q --release -p daas-cluster --test live_equivalence -- --ignored --test-threads 1
  cargo test -q --release -p daas-measure --test live_equivalence -- --ignored --test-threads 1
  cargo test -q --release --test live_equivalence -- --ignored --test-threads 1
  cargo test -q --release --test columnar_equivalence -- --ignored --test-threads 1
  cargo test -q --release -p daas-serve --test checkpoint_restore -- --ignored --test-threads 1
fi

# ---- Throughput tracking: writes BENCH_<group>.json (see BENCH_OUT_DIR)
#      with sequential/parallel numbers for each parallelized stage. ----
cargo bench -p daas-bench --bench world_build
cargo bench -p daas-bench --bench snowball_parallel
cargo bench -p daas-bench --bench cluster_parallel
cargo bench -p daas-bench --bench measure_reports
cargo bench -p daas-bench --bench live_pipeline
cargo bench -p daas-bench --bench obs_overhead
