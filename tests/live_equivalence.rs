//! End-to-end streaming equivalence: `Pipeline::live` (online detector →
//! incremental clusterer → live measurement, one shared classification
//! memo) must converge to exactly the one-shot batch pipeline — for any
//! window size, at any world scale. `LiveRun::batch_matches` is the
//! pipeline's own built-in diff (dataset member sets, clustering JSON,
//! report-bundle JSON); the proptest below additionally drives the
//! streaming stack through arbitrary transaction-window interleavings.

use std::sync::OnceLock;

use daas_cli::Pipeline;
use daas_lab::chain::TxId;
use daas_lab::cluster::{cluster_prefix, ClusterConfig, OnlineClusterer};
use daas_lab::detector::{OnlineDetector, SnowballConfig};
use daas_lab::measure::{LiveMeasure, MeasureConfig, MeasureCtx};
use daas_lab::world::{collection_end, World, WorldConfig};
use proptest::prelude::*;

fn assert_live_matches(config: &WorldConfig, window_blocks: u64) {
    let run = Pipeline::live(
        config,
        &SnowballConfig::default(),
        0,
        window_blocks,
        &MeasureConfig::sequential(),
        |_| {},
    )
    .expect("live pipeline");
    assert!(
        run.batch_matches,
        "streaming (window {window_blocks}) diverged from batch at scale {} seed {}",
        config.scale, config.seed
    );
    assert!(!run.windows.is_empty());
}

#[test]
fn micro_worlds_all_window_sizes() {
    for window in [1, 7, 64, u64::MAX] {
        assert_live_matches(&WorldConfig::micro(91), window);
    }
}

#[test]
fn tiny_worlds_all_window_sizes() {
    for window in [1, 7, 64, u64::MAX] {
        assert_live_matches(&WorldConfig::tiny(92), window);
    }
}

#[test]
fn small_world_representative_windows() {
    for window in [64, u64::MAX] {
        assert_live_matches(&WorldConfig::small(93), window);
    }
}

#[test]
#[ignore = "small world with per-block windows; run via ci.sh or -- --ignored"]
fn small_world_fine_windows() {
    for window in [1, 7] {
        assert_live_matches(&WorldConfig::small(94), window);
    }
}

#[test]
#[ignore = "paper-scale world; run via ci.sh or -- --ignored"]
fn paper_scale_live_run() {
    assert_live_matches(&WorldConfig::paper_scale(42), 7_200);
}

/// One shared micro world for the interleaving property (world
/// generation dominates per-case cost otherwise).
fn prop_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(&WorldConfig::micro(95)).expect("world"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of transaction-window sizes — including empty
    /// windows and windows of one — converges to the batch clustering
    /// and report bundle byte-identically.
    #[test]
    fn arbitrary_interleavings_converge(windows in proptest::collection::vec(0u32..=17, 1..24)) {
        let world = prop_world();
        let snowball = SnowballConfig::default();
        let mut detector = OnlineDetector::new(snowball.clone());
        let mut clusterer = OnlineClusterer::new(snowball.classifier.clone());
        let mut measure = LiveMeasure::new(snowball.classifier.clone());
        let total = world.chain.transactions().len() as TxId;

        let mut at: TxId = 0;
        let mut step_iter = windows.iter().cycle();
        // Cycle the sampled window sizes; all-zero vectors still finish
        // through the final catch-up poll below.
        for _ in 0..(windows.len() * 64) {
            if at >= total {
                break;
            }
            at = (at + step_iter.next().unwrap()).min(total);
            let events = detector.poll_until(&world.chain, &world.labels, at);
            clusterer.ingest(&world.chain, &world.labels, detector.dataset(), &events, at);
            measure.ingest(&world.chain, &world.oracle, &events);
        }
        let events = detector.poll(&world.chain, &world.labels);
        clusterer.ingest(&world.chain, &world.labels, detector.dataset(), &events, total);
        measure.ingest(&world.chain, &world.oracle, &events);

        let dataset = detector.dataset();
        let live_clustering = clusterer.clustering(&world.labels);
        let batch_clustering =
            cluster_prefix(&world.chain, &world.labels, dataset, total, &ClusterConfig::sequential());
        prop_assert_eq!(
            serde_json::to_string(&live_clustering).unwrap(),
            serde_json::to_string(&batch_clustering).unwrap()
        );

        let cfg = MeasureConfig::sequential();
        let live_reports = measure.reports(
            &world.chain, dataset, &world.oracle, &world.labels, 30 * 86_400, collection_end(), &cfg,
        );
        let batch_reports = MeasureCtx::new(&world.chain, dataset, &world.oracle).reports(
            &world.labels, 30 * 86_400, collection_end(), &cfg,
        );
        prop_assert_eq!(
            serde_json::to_string(&live_reports).unwrap(),
            serde_json::to_string(&batch_reports).unwrap()
        );
    }
}
