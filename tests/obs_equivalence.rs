//! The observability layer's core contract: enabling the recorder
//! changes **no artifact**. Every test here runs the same pipeline with
//! the recorder off and on and diffs the serialized outputs byte for
//! byte — batch and `--live`, micro and tiny worlds, sequential and
//! all-cores schedules — then sanity-checks that the enabled run
//! actually recorded something (the equivalence would be vacuous if the
//! instrumentation never fired).
//!
//! The recorder is process-global, so the tests in this binary
//! serialize on a mutex; other test binaries are separate processes and
//! never see the flag.

use std::sync::{Mutex, MutexGuard, OnceLock};

use daas_cli::{run_pipeline_sharded, Pipeline};
use daas_lab::detector::SnowballConfig;
use daas_lab::measure::MeasureConfig;
use daas_lab::obs;
use daas_lab::world::WorldConfig;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner())
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

/// (dataset, clustering, reports) of a one-shot batch run.
fn batch_artifacts(config: &WorldConfig, threads: usize) -> (String, String, String) {
    let snowball = SnowballConfig { threads, ..Default::default() };
    let pipeline = run_pipeline_sharded(config, &snowball, 0).expect("pipeline");
    let measured = pipeline.measured(&MeasureConfig { threads });
    (json(&pipeline.dataset), json(&pipeline.clustering), json(&measured.reports))
}

/// (dataset, clustering, reports, batch_matches) of a streaming replay.
fn live_artifacts(config: &WorldConfig, threads: usize) -> (String, String, String, bool) {
    let snowball = SnowballConfig { threads, ..Default::default() };
    let run = Pipeline::live(config, &snowball, 0, 7, &MeasureConfig { threads }, |_| {})
        .expect("live pipeline");
    (json(&run.dataset), json(&run.clustering), json(&run.reports), run.batch_matches)
}

#[test]
fn batch_artifacts_identical_with_recorder_on() {
    let _guard = lock();
    for (config, threads) in [
        (WorldConfig::micro(91), 1usize),
        (WorldConfig::micro(91), 0),
        (WorldConfig::tiny(92), 1),
        (WorldConfig::tiny(92), 0),
    ] {
        obs::set_enabled(false);
        let _ = obs::drain();
        let off = batch_artifacts(&config, threads);

        obs::set_enabled(true);
        let on = batch_artifacts(&config, threads);
        obs::set_enabled(false);
        let report = obs::drain();

        assert_eq!(
            off, on,
            "recorder changed a batch artifact (scale {}, threads {threads})",
            config.scale
        );
        assert!(!report.spans.is_empty(), "enabled run recorded no spans");
        assert!(
            report.metrics.counter("cache.classify.miss") > 0,
            "enabled run recorded no classification traffic"
        );
        assert!(
            report.metrics.gauge("pipeline.stage_ms{stage=world}").is_some(),
            "enabled run recorded no stage gauges"
        );
    }
}

#[test]
fn live_artifacts_identical_with_recorder_on() {
    let _guard = lock();
    for (config, threads) in [
        (WorldConfig::micro(91), 1usize),
        (WorldConfig::micro(91), 0),
        (WorldConfig::tiny(92), 1),
        (WorldConfig::tiny(92), 0),
    ] {
        obs::set_enabled(false);
        let _ = obs::drain();
        let off = live_artifacts(&config, threads);

        obs::set_enabled(true);
        let on = live_artifacts(&config, threads);
        obs::set_enabled(false);
        let report = obs::drain();

        assert_eq!(
            off, on,
            "recorder changed a live artifact (scale {}, threads {threads})",
            config.scale
        );
        assert!(on.3, "live replay diverged from batch with the recorder on");
        assert!(
            report.metrics.counter("live.windows") > 0,
            "enabled live run recorded no windows"
        );
        for stage in ["detect", "cluster", "measure"] {
            let key = format!("live.window.update_ms{{stage={stage}}}");
            let hist = report.metrics.histograms.get(&key).expect("window histogram");
            assert_eq!(
                hist.count,
                report.metrics.counter("live.windows"),
                "one {stage} observation per window"
            );
        }
    }
}

#[test]
fn drained_state_does_not_leak_across_runs() {
    let _guard = lock();
    obs::set_enabled(false);
    let _ = obs::drain();

    obs::set_enabled(true);
    let _ = batch_artifacts(&WorldConfig::micro(91), 1);
    obs::set_enabled(false);
    let first = obs::drain();
    assert!(!first.spans.is_empty());

    // A second drain with no work in between must come back empty.
    let second = obs::drain();
    assert!(second.spans.is_empty());
    assert!(second.metrics.counters.is_empty());
    assert!(second.metrics.gauges.is_empty());
    assert!(second.metrics.histograms.is_empty());
}
