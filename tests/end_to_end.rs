//! Workspace-level end-to-end test: everything a downstream user would
//! do through the `daas-lab` facade, from world generation to the final
//! reports, in one pass.

use std::sync::OnceLock;

use daas_lab::cluster::{cluster, Clustering};
use daas_lab::ct_watch::{CtStream, DomainTriage};
use daas_lab::detector::{build_dataset, evaluate, Dataset, SnowballConfig};
use daas_lab::measure::MeasureCtx;
use daas_lab::reporting::{coverage, report_all, Blocklist};
use daas_lab::webscan::{scan_domains, FingerprintDb};
use daas_lab::world::{collection_end, detection_start, World, WorldConfig};

struct Fixture {
    world: World,
    dataset: Dataset,
    clustering: Clustering,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let world = World::build(&WorldConfig::small(2025)).expect("world");
        let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
        let clustering = cluster(&world.chain, &world.labels, &dataset);
        Fixture { world, dataset, clustering }
    })
}

#[test]
fn snowball_reproduces_table1_shape() {
    let f = fixture();
    // The expanded dataset is a strict superset of the seed and grows
    // severalfold (paper: 391 → 1,910 contracts).
    assert!(f.dataset.seed.contracts * 2 < f.dataset.counts().contracts);
    // Everything is correct (paper: no false positives in validation).
    let eval = evaluate(
        &f.dataset,
        &f.world.truth.all_contracts(),
        &f.world.truth.all_operators(),
        &f.world.truth.all_affiliates(),
        &f.world.truth.ps_tx_ids(),
    );
    assert_eq!(eval.contracts.false_positives, 0);
    assert!(eval.contracts.recall() > 0.97);
    assert!(eval.transactions.recall() > 0.97);
}

#[test]
fn clustering_reproduces_table2_families() {
    let f = fixture();
    assert_eq!(f.clustering.families.len(), 9);
    for name in ["Angel Drainer", "Inferno Drainer", "Pink Drainer"] {
        assert!(f.clustering.by_name(name).is_some(), "{name} missing");
    }
}

#[test]
fn measurement_reproduces_section6() {
    let f = fixture();
    let ctx = MeasureCtx::new(&f.world.chain, &f.dataset, &f.world.oracle);
    let victims = ctx.victim_report();
    assert!((victims.below_1k_pct - 83.5).abs() < 6.0);
    let affiliates = ctx.affiliate_report();
    assert!((affiliates.above_1k_pct - 50.2).abs() < 12.0);
    let repeats = ctx.repeat_victim_report();
    assert!((repeats.simultaneous_pct - 78.1).abs() < 10.0);
}

#[test]
fn website_pipeline_detects_drainer_sites() {
    let f = fixture();
    let mut db = FingerprintDb::new();
    for fp in &f.world.sites.seed_fingerprints {
        db.add(fp.clone());
    }
    for &idx in &f.world.sites.reported {
        db.expand_from_reported(&f.world.sites.sites[idx].files);
    }
    let mut stream = CtStream::new(f.world.sites.certs.clone());
    stream.poll_until(detection_start() - 1);
    let watched = stream.poll_rest().to_vec();
    let triage = DomainTriage::default();
    let suspicious: Vec<&str> = watched
        .iter()
        .filter(|c| triage.assess(&c.domain).is_some())
        .map(|c| c.domain.as_str())
        .collect();
    let report = scan_domains(&f.world.crawler(), &db, suspicious);

    assert!(report.confirmed > 0, "no sites detected");
    // No benign site is ever confirmed: fingerprints are exact.
    let confirmed: std::collections::HashSet<&str> =
        report.phishing_domains().into_iter().collect();
    for (site, truth) in f.world.sites.sites.iter().zip(&f.world.sites.truth) {
        if truth.family.is_none() {
            assert!(
                !confirmed.contains(site.domain.as_str()),
                "benign site {} confirmed as phishing",
                site.domain
            );
        }
    }
    // The TLD table is dominated by .com like Table 4.
    let tlds = report.tld_table();
    assert_eq!(tlds.rows[0].0, "com");
}

#[test]
fn reporting_flow_works() {
    let f = fixture();
    let mut labels = f.world.labels.clone();
    let before = coverage(&labels, &f.dataset);
    assert!(before.labeled_pct < 30.0, "pre-labeled {}%", before.labeled_pct);
    let newly = report_all(&mut labels, &f.dataset);
    assert!(newly > 0);
    // A blocklist from the midpoint forward prevents a meaningful share.
    let midpoint = daas_lab::world::collection_start()
        + (collection_end() - daas_lab::world::collection_start()) / 2;
    let blocklist = Blocklist::from_dataset(&f.dataset, midpoint);
    let (prevented, total_after) = blocklist.prevented(&f.world.chain, &f.dataset);
    assert_eq!(prevented, total_after, "all known-account txs post-cutoff are blockable");
}

#[test]
fn dataset_export_roundtrips_as_json() {
    // The paper releases its dataset; ours serialises losslessly.
    let f = fixture();
    let json = serde_json::to_string(&f.dataset).expect("serialise");
    let back: Dataset = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.counts(), f.dataset.counts());
    assert_eq!(back.observations.len(), f.dataset.observations.len());
    assert_eq!(back.seed, f.dataset.seed);
}
