//! Byte-identity pins across the interned-address columnar chain
//! refactor: the serialized chain, clustering, and §6 measurement
//! artifacts must hash to exactly what the pre-refactor (per-tx `Vec`)
//! storage produced. The constants below were captured at the commit
//! immediately before the columnar storage landed; any drift in the
//! serialization contract shows up here as a hash mismatch.

use daas_lab::cluster::cluster;
use daas_lab::detector::{build_dataset, SnowballConfig};
use daas_lab::measure::{MeasureConfig, MeasureCtx};
use daas_lab::world::{collection_end, World, WorldConfig};

/// FNV-1a over the artifact text — same fingerprint the determinism
/// suite uses, so pins are comparable across test files.
fn fnv(text: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// `[chain, clustering, measure-bundle]` artifact hashes for a config.
fn artifact_hashes(config: &WorldConfig) -> [u64; 3] {
    let world = World::build(config).expect("world");
    let chain = fnv(&serde_json::to_string(&world.chain).expect("chain serialises"));
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let clustering = cluster(&world.chain, &world.labels, &dataset);
    let clusters = fnv(&serde_json::to_string(&clustering).expect("clustering serialises"));
    let ctx = MeasureCtx::new(&world.chain, &dataset, &world.oracle);
    let reports =
        ctx.reports(&world.labels, 30 * 86_400, collection_end(), &MeasureConfig::default());
    let measure = fnv(&serde_json::to_string(&reports).expect("reports serialise"));
    [chain, clusters, measure]
}

/// Pinned pre-refactor hashes for `WorldConfig::tiny(7)`.
const TINY_PINS: [u64; 3] = [0xd7bfdbce9108f842, 0x7df13984630d694a, 0xef053cf1213057be];

/// Pinned pre-refactor hashes for paper scale (seed 42, scale 1.0 —
/// the `exp_*` harness defaults).
const PAPER_PINS: [u64; 3] = [0xa3fcafc0bf046eef, 0x8f8ec2ca1b481890, 0x564a09923448a033];

#[test]
fn tiny_world_artifacts_match_pre_refactor_pins() {
    let got = artifact_hashes(&WorldConfig::tiny(7));
    println!("tiny pins: {got:#018x?}");
    assert_eq!(got, TINY_PINS, "tiny-world artifacts drifted from the pre-refactor bytes");
}

#[test]
#[ignore = "paper scale: minutes in debug — ci.sh runs it in release under CI_FULL_SCALE"]
fn paper_scale_artifacts_match_pre_refactor_pins() {
    let got = artifact_hashes(&WorldConfig::paper_scale(42));
    println!("paper pins: {got:#018x?}");
    assert_eq!(got, PAPER_PINS, "paper-scale artifacts drifted from the pre-refactor bytes");
}
