//! Reproducibility contract: the entire pipeline — world, dataset,
//! clustering, website detection — is a pure function of the seed.

use daas_lab::cluster::cluster;
use daas_lab::detector::{build_dataset, SnowballConfig};
use daas_lab::world::{World, WorldConfig};

fn run(seed: u64) -> (String, usize, Vec<String>) {
    let world = World::build(&WorldConfig::tiny(seed)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let clustering = cluster(&world.chain, &world.labels, &dataset);
    let last_hash = world.chain.transactions().last().unwrap().hash.to_hex();
    let names = clustering.families.iter().map(|f| f.name.clone()).collect();
    (last_hash, dataset.counts().ps_txs, names)
}

#[test]
fn identical_seeds_identical_worlds() {
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run(7);
    let b = run(8);
    assert_ne!(a.0, b.0, "chains should differ across seeds");
}

#[test]
fn dataset_is_insensitive_to_detector_rerun() {
    // Re-running detection on the same world is bit-identical (no hidden
    // state, no randomness in the pipeline itself).
    let world = World::build(&WorldConfig::tiny(9)).expect("world");
    let a = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let b = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    assert_eq!(a.contracts, b.contracts);
    assert_eq!(a.ps_txs, b.ps_txs);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.rounds, b.rounds);
}
