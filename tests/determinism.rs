//! Reproducibility contract: the entire pipeline — world, dataset,
//! clustering, website detection — is a pure function of the seed.

use daas_lab::cluster::cluster;
use daas_lab::detector::{build_dataset, SnowballConfig};
use daas_lab::world::{World, WorldConfig};

fn run(seed: u64) -> (String, usize, Vec<String>) {
    let world = World::build(&WorldConfig::tiny(seed)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let clustering = cluster(&world.chain, &world.labels, &dataset);
    let last_hash = world.chain.transactions().last().unwrap().hash().to_hex();
    let names = clustering.families.iter().map(|f| f.name.clone()).collect();
    (last_hash, dataset.counts().ps_txs, names)
}

#[test]
fn identical_seeds_identical_worlds() {
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = run(7);
    let b = run(8);
    assert_ne!(a.0, b.0, "chains should differ across seeds");
}

/// One number summarising a full detection run: FNV-1a over the
/// serialized dataset plus the clustering's family names.
fn pipeline_fingerprint(world: &World, threads: usize) -> u64 {
    let cfg = SnowballConfig { threads, ..Default::default() };
    let dataset = build_dataset(&world.chain, &world.labels, &cfg);
    let clustering = cluster(&world.chain, &world.labels, &dataset);
    let mut text = serde_json::to_string(&dataset).expect("dataset serialises");
    for family in &clustering.families {
        text.push_str(&family.name);
    }
    let mut hash = 0xcbf29ce484222325u64;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// One number summarising a generated world: FNV-1a over the serialized
/// chain artifact.
fn world_fingerprint(threads: usize, shards: usize) -> u64 {
    let world = World::build_opts(&WorldConfig::tiny(7), threads, shards).expect("world");
    let mut hash = 0xcbf29ce484222325u64;
    for byte in serde_json::to_string(&world.chain).expect("chain serialises").bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[test]
fn world_hash_stable_across_thread_and_shard_counts() {
    // Planner threads are a schedule and chain shards are a memory
    // layout — the generated world never changes with either.
    let reference = world_fingerprint(1, 1);
    for threads in [1usize, 2, 4, 0] {
        for shards in [1usize, 4, 16] {
            assert_eq!(
                world_fingerprint(threads, shards),
                reference,
                "world hash drifted at threads={threads} shards={shards}"
            );
        }
    }
}

#[test]
fn pipeline_hash_stable_across_thread_counts() {
    let world = World::build(&WorldConfig::tiny(7)).expect("world");
    let reference = pipeline_fingerprint(&world, 1);
    for threads in [1usize, 2, 4, 8, 0] {
        assert_eq!(
            pipeline_fingerprint(&world, threads),
            reference,
            "pipeline hash drifted at threads={threads}"
        );
    }
}

#[test]
fn pipeline_hash_stable_across_repeat_runs() {
    // Fresh world builds and repeated parallel detection runs all land
    // on the same fingerprint — no schedule leaks into the output.
    let reference = {
        let world = World::build(&WorldConfig::tiny(13)).expect("world");
        pipeline_fingerprint(&world, 0)
    };
    for _ in 0..2 {
        let world = World::build(&WorldConfig::tiny(13)).expect("world");
        assert_eq!(pipeline_fingerprint(&world, 0), reference);
    }
}

#[test]
fn dataset_is_insensitive_to_detector_rerun() {
    // Re-running detection on the same world is bit-identical (no hidden
    // state, no randomness in the pipeline itself).
    let world = World::build(&WorldConfig::tiny(9)).expect("world");
    let a = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let b = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    assert_eq!(a.contracts, b.contracts);
    assert_eq!(a.ps_txs, b.ps_txs);
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.rounds, b.rounds);
}
