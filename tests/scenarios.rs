//! Custom-scenario support: every shipped scenario file validates
//! against the checked-in schema, builds a world, and runs the full
//! pipeline clean (the `daas-lab --config` path). The adversarial
//! scenarios additionally carry golden precision/recall counts so a
//! silent robustness regression — the exact-ratio rule getting weaker
//! or stronger without anyone noticing — fails tier-1.

use std::path::PathBuf;

use daas_lab::cluster::cluster;
use daas_lab::detector::{
    build_dataset, evaluate, pairwise_family_scores, ClassScores, SnowballConfig,
};
use daas_lab::obs::json::{parse, validate_schema};
use daas_lab::world::{World, WorldConfig};
use proptest::prelude::*;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Every shipped scenario, sorted by file name: (stem, raw JSON).
fn scenario_files() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(repo_path("scenarios"))
        .expect("scenarios directory present")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("scenario readable");
            (stem, text)
        })
        .collect();
    files.sort();
    assert!(files.len() >= 6, "expected the shipped scenario pack, found {}", files.len());
    files
}

#[test]
fn config_json_roundtrip() {
    let cfg = WorldConfig::paper_scale(7);
    let json = serde_json::to_string_pretty(&cfg).expect("serialise");
    let back: WorldConfig = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.seed, cfg.seed);
    assert_eq!(back.families.len(), cfg.families.len());
    for (a, b) in back.families.iter().zip(&cfg.families) {
        assert_eq!(a.slug, b.slug);
        assert_eq!(a.victims, b.victims);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.toolkit_files, b.toolkit_files);
    }
    // The calibrated config leaves every adversarial knob off, and the
    // round trip must not invent one.
    assert!(back.adversarial.is_default());
    // A world built from the round-tripped config is identical.
    let w1 = World::build(&WorldConfig { scale: 0.01, ..cfg }).unwrap();
    let w2 = World::build(&WorldConfig { scale: 0.01, ..back }).unwrap();
    assert_eq!(w1.chain.stats(), w2.chain.stats());
    assert_eq!(
        w1.chain.transactions().last().unwrap().hash(),
        w2.chain.transactions().last().unwrap().hash()
    );
}

/// Every scenario file conforms to `schemas/scenario.schema.json`,
/// deserialises into a valid `WorldConfig`, and survives a lossless
/// round trip — including the adversarial block.
#[test]
fn all_scenarios_schema_valid_and_roundtrip() {
    let schema_text = std::fs::read_to_string(repo_path("schemas/scenario.schema.json"))
        .expect("scenario schema present");
    let schema = parse(&schema_text).expect("schema parses");
    for (name, text) in scenario_files() {
        let doc = parse(&text).unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
        let errors = validate_schema(&schema, &doc);
        assert!(errors.is_empty(), "{name}: schema violations: {errors:?}");

        let cfg: WorldConfig =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        cfg.validate().unwrap_or_else(|e| panic!("{name}: invalid config: {e}"));

        let json = serde_json::to_string_pretty(&cfg).expect("serialise");
        let back: WorldConfig = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.seed, cfg.seed, "{name}: seed drifted");
        assert_eq!(back.adversarial, cfg.adversarial, "{name}: adversarial block drifted");
        for (a, b) in back.families.iter().zip(&cfg.families) {
            assert_eq!(a.slug, b.slug);
            assert_eq!(a.kind_mix, b.kind_mix, "{name}: kind_mix drifted");
        }
    }
}

/// Golden pinned counts per scenario: (true positives, false positives,
/// false negatives) for contracts, profit-sharing transactions, and
/// family-assignment pairs. Worlds are pure functions of their pinned
/// seeds, so these are exact; a change means the classifier, snowball
/// guard, or clustering rule moved — deliberate changes re-pin here and
/// in the DESIGN.md robustness table.
fn golden(name: &str) -> Option<[(usize, usize, usize); 3]> {
    Some(match name {
        "baseline-calibrated" => [(18, 0, 0), (741, 0, 0), (1_271, 0, 0)],
        "hydra-demo" => [(52, 0, 0), (2_392, 0, 0), (15_077, 0, 0)],
        "mixer-laundering" => [(18, 0, 0), (740, 0, 0), (1_271, 0, 0)],
        "multi-hop-payouts" => [(18, 0, 0), (743, 0, 0), (466, 28, 805)],
        "nft-entry-flows" => [(18, 0, 0), (738, 0, 0), (1_271, 0, 0)],
        "off-menu-ratios" => [(12, 0, 6), (503, 0, 235), (919, 0, 352)],
        "pyramid-background" => [(18, 2, 0), (740, 400, 0), (1_271, 861, 0)],
        "ratio-drift" => [(7, 0, 11), (308, 0, 425), (471, 0, 800)],
        _ => return None,
    })
}

fn counts(s: ClassScores) -> (usize, usize, usize) {
    (s.true_positives, s.false_positives, s.false_negatives)
}

/// Data-driven pipeline run over every shipped scenario. Calibrated
/// scenarios (no adversarial knobs) must score a perfect dataset and
/// cluster into exactly the configured families under their configured
/// names; adversarial scenarios must match their golden counts — and
/// the ratio attacks must demonstrably degrade recall below 1.
#[test]
fn shipped_scenarios_run_clean_with_golden_scores() {
    for (name, text) in scenario_files() {
        let cfg: WorldConfig = serde_json::from_str(&text).expect("valid scenario");
        cfg.validate().expect("scenario validates");

        let world = World::build(&cfg).unwrap_or_else(|e| panic!("{name}: world: {e}"));
        let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
        let eval = evaluate(
            &dataset,
            &world.truth.all_contracts(),
            &world.truth.all_operators(),
            &world.truth.all_affiliates(),
            &world.truth.ps_tx_ids(),
        );
        let clustering = cluster(&world.chain, &world.labels, &dataset);
        let truth_sets: Vec<Vec<_>> = world
            .truth
            .families
            .iter()
            .map(|f| {
                let mut v = f.operators.clone();
                v.extend(f.contracts.iter().map(|c| c.address));
                v.extend(f.affiliates.iter().copied());
                v
            })
            .collect();
        let pairs = pairwise_family_scores(&clustering.member_sets(), &truth_sets);

        let calibrated =
            cfg.adversarial.is_default() && cfg.families.iter().all(|f| f.kind_mix.is_none());
        if calibrated {
            assert_eq!(eval.contracts.false_positives, 0, "{name}: contract FPs");
            assert!(eval.contracts.recall() > 0.95, "{name}: recall {}", eval.contracts.recall());
            assert_eq!(
                clustering.families.len(),
                cfg.families.len(),
                "{name}: expected one cluster per configured family"
            );
            for fam in &cfg.families {
                if let Some(label) = &fam.label {
                    assert!(
                        clustering.by_name(label).is_some(),
                        "{name}: family {label} not recovered by name"
                    );
                }
            }
        }

        if let Some([want_contracts, want_txs, want_pairs]) = golden(&name) {
            assert_eq!(counts(eval.contracts), want_contracts, "{name}: contract counts moved");
            assert_eq!(counts(eval.transactions), want_txs, "{name}: tx counts moved");
            assert_eq!(counts(pairs), want_pairs, "{name}: family-pair counts moved");
        } else {
            panic!("{name}: new scenario without a golden entry — pin its counts above");
        }
    }

    // The headline robustness claims, stated once against the goldens:
    // the baseline is perfect, and the ratio attacks cut recall.
    let [c, t, _] = golden("baseline-calibrated").unwrap();
    assert_eq!((c.1, c.2, t.1, t.2), (0, 0, 0, 0));
    for attack in ["ratio-drift", "off-menu-ratios"] {
        let [c, ..] = golden(attack).unwrap();
        assert!(c.2 > 0, "{attack} must produce contract false negatives");
    }
}

/// A malformed adversarial block must be rejected by
/// `WorldConfig::validate`, whatever the magnitudes involved.
fn adv_base() -> WorldConfig {
    WorldConfig::micro(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Negative or out-of-window drift magnitudes are rejected whenever
    /// the drift knob is armed. (The shimmed proptest samples integers;
    /// knob values are mapped into floats in the body.)
    #[test]
    fn rejects_bad_drift(frac_pct in 1u32..=100, bad_bps in prop_oneof![
        -5_000i64..0,
        0i64..25,
        1_001i64..20_000,
    ]) {
        let mut cfg = adv_base();
        cfg.adversarial.ratio_drift_frac = frac_pct as f64 / 100.0;
        cfg.adversarial.ratio_drift_bps = bad_bps as f64;
        prop_assert!(cfg.validate().is_err());
    }

    /// An armed off-menu knob with an empty menu, or an armed payout-hop
    /// knob with an empty hop chain, is rejected.
    #[test]
    fn rejects_empty_menus_and_chains(frac_pct in 1u32..=100) {
        let frac = frac_pct as f64 / 100.0;
        let mut cfg = adv_base();
        cfg.adversarial.off_menu_frac = frac;
        prop_assert!(cfg.validate().is_err());

        let mut cfg = adv_base();
        cfg.adversarial.payout_hop_frac = frac;
        cfg.adversarial.payout_hops = 0;
        prop_assert!(cfg.validate().is_err());
    }

    /// Off-menu ratios that overlap a §4.3 table ratio within the
    /// classifier tolerance are rejected — they would make the
    /// ground-truth labels ambiguous.
    #[test]
    fn rejects_overlapping_off_menu_ratios(
        idx in 0usize..daas_lab::world::RATIO_TABLE.len(),
        jitter in -4i32..=4,
    ) {
        let (known, _) = daas_lab::world::RATIO_TABLE[idx];
        let near = (known as i32 + jitter).max(1) as u32;
        // Within 0.5% relative of a table entry → ambiguous → rejected.
        prop_assume!((near as f64 - known as f64).abs() / known as f64 <= 0.005);
        let mut cfg = adv_base();
        cfg.adversarial.off_menu_frac = 0.5;
        cfg.adversarial.off_menu_bps = vec![near];
        prop_assert!(cfg.validate().is_err());
    }

    /// Fractions outside [0, 1] are rejected for every adversarial
    /// fraction knob.
    #[test]
    fn rejects_out_of_range_fracs(bad_milli in prop_oneof![-10_000i64..0, 1_001i64..10_000]) {
        let bad = bad_milli as f64 / 1_000.0;
        for knob in 0..4 {
            let mut cfg = adv_base();
            match knob {
                0 => cfg.adversarial.ratio_drift_frac = bad,
                1 => cfg.adversarial.off_menu_frac = bad,
                2 => cfg.adversarial.payout_hop_frac = bad,
                _ => cfg.adversarial.pyramid_mislabel_frac = bad,
            }
            prop_assert!(cfg.validate().is_err(), "knob {knob} accepted {bad}");
        }
    }

    /// Pyramid traffic without contracts or with fewer than two users
    /// cannot pay referrals and is rejected.
    #[test]
    fn rejects_underpopulated_pyramid(txs in 1u32..10_000, users in 0u32..2) {
        let mut cfg = adv_base();
        cfg.adversarial.pyramid_txs = txs;
        cfg.adversarial.pyramid_contracts = 0;
        cfg.adversarial.pyramid_users = 10;
        prop_assert!(cfg.validate().is_err());

        let mut cfg = adv_base();
        cfg.adversarial.pyramid_txs = txs;
        cfg.adversarial.pyramid_contracts = 1;
        cfg.adversarial.pyramid_users = users;
        prop_assert!(cfg.validate().is_err());
    }

    /// Hop chains beyond the 8-hop cap are rejected for both the payout
    /// and laundering knobs.
    #[test]
    fn rejects_oversized_hop_chains(hops in 9u32..100) {
        let mut cfg = adv_base();
        cfg.adversarial.payout_hop_frac = 0.5;
        cfg.adversarial.payout_hops = hops;
        prop_assert!(cfg.validate().is_err());

        let mut cfg = adv_base();
        cfg.adversarial.launder_hops = hops;
        prop_assert!(cfg.validate().is_err());
    }

    /// A negative or zero-sum kind mix is rejected.
    #[test]
    fn rejects_bad_kind_mix(w_milli in -10_000i64..1) {
        let mut cfg = adv_base();
        cfg.families[0].kind_mix = Some((w_milli as f64 / 1_000.0, 0.0, 0.0));
        prop_assert!(cfg.validate().is_err());
    }
}
