//! Custom-scenario support: configurations serialise losslessly and
//! drive the full pipeline (the `daas-lab --config` path).

use daas_lab::detector::{build_dataset, evaluate, SnowballConfig};
use daas_lab::world::{World, WorldConfig};

#[test]
fn config_json_roundtrip() {
    let cfg = WorldConfig::paper_scale(7);
    let json = serde_json::to_string_pretty(&cfg).expect("serialise");
    let back: WorldConfig = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back.seed, cfg.seed);
    assert_eq!(back.families.len(), cfg.families.len());
    for (a, b) in back.families.iter().zip(&cfg.families) {
        assert_eq!(a.slug, b.slug);
        assert_eq!(a.victims, b.victims);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.toolkit_files, b.toolkit_files);
    }
    // A world built from the round-tripped config is identical.
    let w1 = World::build(&WorldConfig { scale: 0.01, ..cfg }).unwrap();
    let w2 = World::build(&WorldConfig { scale: 0.01, ..back }).unwrap();
    assert_eq!(w1.chain.stats(), w2.chain.stats());
    assert_eq!(
        w1.chain.transactions().last().unwrap().hash,
        w2.chain.transactions().last().unwrap().hash
    );
}

#[test]
fn shipped_hydra_scenario_runs_clean() {
    let text = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/hydra-demo.json"),
    )
    .expect("scenario file present");
    let cfg: WorldConfig = serde_json::from_str(&text).expect("valid scenario");
    cfg.validate().expect("scenario validates");
    assert_eq!(cfg.families.len(), 2, "the demo models two families");

    let world = World::build(&cfg).expect("world builds");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let eval = evaluate(
        &dataset,
        &world.truth.all_contracts(),
        &world.truth.all_operators(),
        &world.truth.all_affiliates(),
        &world.truth.ps_tx_ids(),
    );
    assert_eq!(eval.contracts.false_positives, 0);
    assert!(eval.contracts.recall() > 0.95, "recall {}", eval.contracts.recall());
    // The two custom families cluster apart.
    let clustering =
        daas_lab::cluster::cluster(&world.chain, &world.labels, &dataset);
    assert_eq!(clustering.families.len(), 2);
    assert!(clustering.by_name("Hydra Drainer").is_some());
    assert!(clustering.by_name("Gorgon Drainer").is_some());
}
