//! `daas-lab` — facade crate re-exporting the whole workspace.
//!
//! This is the one-stop dependency for downstream users: examples and
//! integration tests in this repository use only this crate, exercising
//! the same public API an external adopter would see.
//!
//! Reproduction of "Unmasking the Shadow Economy: A Deep Dive into
//! Drainer-as-a-Service Phishing on Ethereum" (IMC 2025). See `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results.

#![forbid(unsafe_code)]

pub use daas_chain as chain;
pub use daas_cluster as cluster;
pub use daas_obs as obs;
pub use daas_detector as detector;
pub use daas_measure as measure;
pub use daas_pricing as pricing;
pub use daas_reporting as reporting;
pub use daas_world as world;
pub use wallet_guard;
pub use ct_watch;
pub use eth_types as types;
pub use txgraph;
pub use webscan;
