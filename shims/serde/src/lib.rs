//! Offline drop-in subset of `serde`.
//!
//! The build container has no network access, so the real `serde`
//! cannot be fetched. This shim keeps serde's trait *shapes* — so the
//! workspace's hand-written `impl Serialize`/`impl Deserialize` and
//! `#[serde(with = …)]` modules compile unchanged — but collapses the
//! data model to a single JSON-like [`Value`]: every serializer lowers
//! to a `Value`, every deserializer lifts from one. `serde_json` (also
//! shimmed) renders and parses that `Value`.
//!
//! Supported surface: `Serialize`/`Serializer` (`serialize_str` plus
//! scalar convenience methods), `Deserialize`/`Deserializer`,
//! `ser::Error`/`de::Error` with `custom`, impls for the std types the
//! workspace serializes, and the derive macros via the `derive`
//! feature.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The single in-memory data model every (de)serializer goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A canonical text form used only for deterministic ordering of
    /// unordered containers (HashSet serialization).
    fn canonical(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::F64(n) => format!("{n:?}"),
            Value::Str(s) => s.clone(),
            Value::Seq(items) => {
                let inner: Vec<String> = items.iter().map(Value::canonical).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Map(entries) => {
                let inner: Vec<String> =
                    entries.iter().map(|(k, v)| format!("{k}:{}", v.canonical())).collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// The shared error type of the value model.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization half.
pub mod ser {
    use super::Value;
    use std::fmt::Display;

    /// Error constraint for serializers.
    pub trait Error: Sized + Display + std::fmt::Debug {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }

    /// A sink for one value. All methods lower to [`Value`].
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Accepts the fully lowered value.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes a string slice.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Str(v.to_owned()))
        }

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bool(v))
        }

        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::U64(v))
        }

        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(if v < 0 { Value::I64(v) } else { Value::U64(v as u64) })
        }

        /// Serializes a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v))
        }

        /// Serializes a unit/null.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Null)
        }
    }

    /// A serializable type.
    pub trait Serialize {
        /// Lowers `self` into the serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }
}

/// Deserialization half.
pub mod de {
    use super::Value;
    use std::fmt::Display;

    /// Error constraint for deserializers.
    pub trait Error: Sized + Display + std::fmt::Debug {
        /// Builds an error from a message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    impl Error for super::Error {
        fn custom<T: Display>(msg: T) -> Self {
            super::Error(msg.to_string())
        }
    }

    /// A source of one value. All methods lift from [`Value`].
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Yields the underlying value.
        fn into_value(self) -> Result<Value, Self::Error>;
    }

    /// A deserializable type.
    pub trait Deserialize<'de>: Sized {
        /// Lifts `Self` out of the deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// ---------------------------------------------------------------------
// The one concrete serializer/deserializer pair.
// ---------------------------------------------------------------------

/// Serializer producing a [`Value`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Deserializer reading from a [`Value`].
#[derive(Debug, Clone)]
pub struct ValueDeserializer(Value);

impl ValueDeserializer {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn into_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Lowers any serializable value into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Lifts a typed value out of the [`Value`] model.
pub fn from_value<T>(value: Value) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(ValueDeserializer(value))
}

/// Derive support: removes a named field from a decoded object.
/// Unknown extra fields are ignored (serde's default posture).
pub fn take_field(
    map: &mut Vec<(String, Value)>,
    name: &str,
    type_name: &str,
) -> Result<Value, Error> {
    match map.iter().position(|(k, _)| k == name) {
        Some(i) => Ok(map.remove(i).1),
        None => Err(Error(format!("missing field `{name}` in {type_name}"))),
    }
}

/// Derive support: removes a field by name, if present. Backs
/// `#[serde(default)]` — absence is not an error.
pub fn take_field_opt(map: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    map.iter().position(|(k, _)| k == name).map(|i| map.remove(i).1)
}

/// Derive support: expects an object.
pub fn expect_map(value: Value, type_name: &str) -> Result<Vec<(String, Value)>, Error> {
    match value {
        Value::Map(m) => Ok(m),
        other => Err(Error(format!("expected object for {type_name}, found {}", other.kind()))),
    }
}

/// Derive support: expects an array of exactly `n` elements.
pub fn expect_seq(value: Value, n: usize, type_name: &str) -> Result<Vec<Value>, Error> {
    match value {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(Error(format!(
            "expected {n} elements for {type_name}, found {}",
            items.len()
        ))),
        other => Err(Error(format!("expected array for {type_name}, found {}", other.kind()))),
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

// Smart pointers serialize transparently, exactly like real serde:
// `Arc<T>`/`Rc<T>`/`Box<T>` fields never change the artifact relative to
// a plain `T` field, so structures can move to shared ownership (the
// persistent-state refactors) without touching any released byte.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_unit(),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_to_value<'a, T, I, S>(items: I) -> Result<Value, S::Error>
where
    T: Serialize + 'a,
    I: Iterator<Item = &'a T>,
    S: Serializer,
{
    let mut seq = Vec::new();
    for item in items {
        seq.push(to_value(item).map_err(<S::Error as ser::Error>::custom)?);
    }
    Ok(Value::Seq(seq))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, _, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, _, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, _, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = seq_to_value::<T, _, S>(self.iter())?;
        serializer.serialize_value(v)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Hash iteration order is arbitrary; sort canonically so output
        // is deterministic.
        let mut seq = Vec::new();
        for item in self {
            seq.push(to_value(item).map_err(<S::Error as ser::Error>::custom)?);
        }
        seq.sort_by(|a, b| a.canonical().cmp(&b.canonical()));
        serializer.serialize_value(Value::Seq(seq))
    }
}

fn map_to_value<'a, K, V, I, S>(entries: I, sort: bool) -> Result<Value, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
    S: Serializer,
{
    let mut out = Vec::new();
    for (k, v) in entries {
        let key = match to_value(k).map_err(<S::Error as ser::Error>::custom)? {
            Value::Str(s) => s,
            other => {
                return Err(<S::Error as ser::Error>::custom(format!(
                    "map key must serialize to a string, got {}",
                    other.kind()
                )))
            }
        };
        out.push((key, to_value(v).map_err(<S::Error as ser::Error>::custom)?));
    }
    if sort {
        out.sort_by(|a, b| a.0.cmp(&b.0));
    }
    Ok(Value::Map(out))
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value::<K, V, _, S>(self.iter(), true)?;
        serializer.serialize_value(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let v = map_to_value::<K, V, _, S>(self.iter(), false)?;
        serializer.serialize_value(v)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![
                    $(to_value(&self.$idx).map_err(<S::Error as ser::Error>::custom)?),+
                ];
                serializer.serialize_value(Value::Seq(seq))
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

macro_rules! deserialize_unsigned {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let err = |k| <D::Error as de::Error>::custom(
                    format!(concat!("expected ", stringify!($ty), ", found {}"), k),
                );
                match deserializer.into_value()? {
                    Value::U64(n) => <$ty>::try_from(n).map_err(|_| err("overflow")),
                    other => Err(err(other.kind())),
                }
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let err = |k| <D::Error as de::Error>::custom(
                    format!(concat!("expected ", stringify!($ty), ", found {}"), k),
                );
                match deserializer.into_value()? {
                    Value::U64(n) => <$ty>::try_from(n).map_err(|_| err("overflow")),
                    Value::I64(n) => <$ty>::try_from(n).map_err(|_| err("overflow")),
                    other => Err(err(other.kind())),
                }
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::F64(n) => Ok(n),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|n| n as f32)
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        // The value model owns its strings, so a borrowed str can only
        // be produced by leaking. Only structs carrying interned
        // `&'static str` fields hit this (e.g. keyword-table entries),
        // and only when actually deserialized.
        match deserializer.into_value()? {
            Value::Str(s) => Ok(Box::leak(s.into_boxed_str())),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Str(s) => Ok(s),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

// The transparent-pointer counterparts of the `Serialize` impls above.
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

/// Lifts one [`Value`] into any `Deserialize<'de>` type, converting the
/// shim error into the caller's error type. This is the glue every
/// container impl uses; it works for one specific `'de` (no
/// higher-ranked bound), matching hand-written generic serde code.
fn lift<'de, T: Deserialize<'de>, E: de::Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer(value)).map_err(E::custom)
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.into_value()? {
            Value::Null => Ok(None),
            value => lift(value).map(Some),
        }
    }
}

fn value_seq<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Vec<Value>, D::Error> {
    match deserializer.into_value()? {
        Value::Seq(items) => Ok(items),
        other => Err(<D::Error as de::Error>::custom(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        value_seq(deserializer)?.into_iter().map(lift).collect()
    }
}

impl<'de, T, const N: usize> Deserialize<'de> for [T; N]
where
    T: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = value_seq(deserializer)?;
        if items.len() != N {
            return Err(<D::Error as de::Error>::custom(format!(
                "expected array of {N}, found {}",
                items.len()
            )));
        }
        let elems: Vec<T> = items.into_iter().map(lift).collect::<Result<_, D::Error>>()?;
        elems
            .try_into()
            .map_err(|_| <D::Error as de::Error>::custom("array length changed mid-build"))
    }
}

impl<'de, T> Deserialize<'de> for BTreeSet<T>
where
    T: Deserialize<'de> + Ord,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        value_seq(deserializer)?.into_iter().map(lift).collect()
    }
}

impl<'de, T> Deserialize<'de> for HashSet<T>
where
    T: Deserialize<'de> + Hash + Eq,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        value_seq(deserializer)?.into_iter().map(lift).collect()
    }
}

fn value_map<'de, D: Deserializer<'de>>(
    deserializer: D,
) -> Result<Vec<(String, Value)>, D::Error> {
    match deserializer.into_value()? {
        Value::Map(entries) => Ok(entries),
        other => Err(<D::Error as de::Error>::custom(format!(
            "expected object, found {}",
            other.kind()
        ))),
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Hash + Eq,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        value_map(deserializer)?
            .into_iter()
            .map(|(k, v)| Ok((lift(Value::Str(k))?, lift(v)?)))
            .collect()
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        value_map(deserializer)?
            .into_iter()
            .map(|(k, v)| Ok((lift(Value::Str(k))?, lift(v)?)))
            .collect()
    }
}

macro_rules! deserialize_tuple {
    ($(($n:expr => $($name:ident . $idx:tt),+))*) => {$(
        impl<'de, $($name),+> Deserialize<'de> for ($($name,)+)
        where
            $($name: Deserialize<'de>),+
        {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                let items = value_seq(deserializer)?;
                if items.len() != $n {
                    return Err(<De::Error as de::Error>::custom(format!(
                        "expected {}-tuple, found array of {}", $n, items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok(($({
                    let _ = stringify!($name);
                    lift::<$name, De::Error>(iter.next().expect("length checked"))?
                },)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1 => A.0)
    (2 => A.0, B.1)
    (3 => A.0, B.1, C.2)
    (4 => A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(from_value::<u64>(to_value(&7u64).unwrap()).unwrap(), 7);
        assert_eq!(from_value::<String>(to_value("hi").unwrap()).unwrap(), "hi");
        assert_eq!(from_value::<bool>(to_value(&true).unwrap()).unwrap(), true);
        assert_eq!(from_value::<f64>(to_value(&1.5f64).unwrap()).unwrap(), 1.5);
    }

    #[test]
    fn container_roundtrip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u64, String)> = from_value(to_value(&v).unwrap()).unwrap();
        assert_eq!(back, v);

        let mut map = HashMap::new();
        map.insert("k".to_string(), 3u32);
        let back: HashMap<String, u32> = from_value(to_value(&map).unwrap()).unwrap();
        assert_eq!(back, map);

        let opt: Option<u8> = None;
        assert_eq!(from_value::<Option<u8>>(to_value(&opt).unwrap()).unwrap(), None);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(from_value::<u64>(Value::Str("x".into())).is_err());
        assert!(from_value::<Vec<u8>>(Value::Bool(true)).is_err());
    }
}
