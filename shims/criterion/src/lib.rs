//! Offline drop-in subset of `criterion`.
//!
//! The build container cannot fetch crates, so this shim provides the
//! benchmark API surface the workspace uses — `Criterion`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros —
//! over a simple wall-clock sampler. There are no statistics beyond
//! mean ns/iter; each group's results are appended to
//! `BENCH_<group>.json` in the working directory (override the
//! directory with `BENCH_OUT_DIR`) so CI can track throughput drift.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample batch sizing hint (accepted, not used for sizing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work-per-iteration annotation used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct BenchRecord {
    group: String,
    name: String,
    mean_ns: f64,
    iterations: u64,
    throughput: Option<Throughput>,
}

/// Top-level benchmark driver.
pub struct Criterion {
    records: Vec<BenchRecord>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { records: Vec::new(), default_sample_size: 20 }
    }
}

impl Criterion {
    /// Runs an ungrouped benchmark (reported under group `misc`).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one("misc", name, sample_size, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_one<F>(
        &mut self,
        group: &str,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size, total: Duration::ZERO, iterations: 0 };
        f(&mut bencher);
        let mean_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iterations as f64
        };
        eprintln!(
            "{group}/{name}: {:.1} ns/iter ({} iterations){}",
            mean_ns,
            bencher.iterations,
            match throughput {
                Some(Throughput::Elements(n)) if mean_ns > 0.0 => format!(
                    ", {:.0} elem/s",
                    n as f64 / (mean_ns / 1e9)
                ),
                _ => String::new(),
            }
        );
        self.records.push(BenchRecord {
            group: group.to_string(),
            name: name.to_string(),
            mean_ns,
            iterations: bencher.iterations,
            throughput,
        });
    }

    /// Writes per-group `BENCH_<group>.json` summaries. Called by
    /// `criterion_main!`.
    pub fn final_summary(&self) {
        let out_dir = std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
        let mut groups: Vec<&str> = self.records.iter().map(|r| r.group.as_str()).collect();
        groups.dedup();
        groups.sort_unstable();
        groups.dedup();
        for group in groups {
            let mut body = String::from("{\n");
            body.push_str(&format!("  \"group\": \"{group}\",\n  \"benchmarks\": [\n"));
            let members: Vec<&BenchRecord> =
                self.records.iter().filter(|r| r.group == group).collect();
            for (i, r) in members.iter().enumerate() {
                let throughput = match r.throughput {
                    Some(Throughput::Elements(n)) if r.mean_ns > 0.0 => {
                        format!(", \"elements_per_sec\": {:.1}", n as f64 / (r.mean_ns / 1e9))
                    }
                    Some(Throughput::Bytes(n)) if r.mean_ns > 0.0 => {
                        format!(", \"bytes_per_sec\": {:.1}", n as f64 / (r.mean_ns / 1e9))
                    }
                    _ => String::new(),
                };
                body.push_str(&format!(
                    "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}{}}}{}\n",
                    r.name,
                    r.mean_ns,
                    r.iterations,
                    throughput,
                    if i + 1 < members.len() { "," } else { "" }
                ));
            }
            body.push_str("  ]\n}\n");
            let path = format!("{out_dir}/BENCH_{group}.json");
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: could not write {path}: {e}");
            }
        }
    }
}

/// Scoped view over a [`Criterion`] applying group-wide settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let group = self.name.clone();
        let throughput = self.throughput;
        self.criterion.run_one(&group, name, sample_size, throughput, f);
        self
    }

    /// Ends the group (summary is written by `criterion_main!`).
    pub fn finish(self) {}
}

/// Samples a routine's wall-clock time.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

/// Total measurement budget per benchmark; keeps expensive routines
/// (full-scale snowball runs) from dominating CI time.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warmup call also calibrates the per-call cost.
        let calibrate = Instant::now();
        black_box(routine());
        let per_call = calibrate.elapsed().max(Duration::from_nanos(1));

        // Aim each sample at ~10ms of work, budget-capped overall.
        let iters_per_sample =
            (Duration::from_millis(10).as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;
        let started = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iterations += iters_per_sample;
            if started.elapsed() > BENCH_BUDGET {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by the untimed `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let calibrate = Instant::now();
        black_box(routine(input));
        let per_call = calibrate.elapsed().max(Duration::from_nanos(1));

        let iters_per_sample =
            (Duration::from_millis(10).as_nanos() / per_call.as_nanos()).clamp(1, 100_000) as u64;
        let started = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.total += t.elapsed();
            self.iterations += iters_per_sample;
            if started.elapsed() > BENCH_BUDGET {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running every group then writing summaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shimtest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.records.len(), 2);
        assert!(c.records.iter().all(|r| r.iterations > 0));
        assert!(c.records.iter().all(|r| r.group == "shimtest"));
    }
}
