//! Offline drop-in subset of `serde_json`.
//!
//! Provides exactly the functions this workspace calls — `to_string`,
//! `to_string_pretty`, `from_str` — over the shim `serde::Value` data
//! model. Output matches serde_json's formatting conventions: compact
//! form without spaces, pretty form with two-space indentation, floats
//! rendered with `{:?}` so they round-trip.

#![forbid(unsafe_code)]

use serde::Value;
use std::fmt;

/// Error produced by serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, &mut out, Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> serde::Deserialize<'de>,
{
    let value = Parser::new(s).parse_document()?;
    serde::from_value(value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n:?}"));
            } else {
                // serde_json emits null for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| self.err("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null", Value::Null),
            b't' => self.eat_keyword("true", Value::Bool(true)),
            b'f' => self.eat_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        // Caller guarantees the opening quote is next (after ws).
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and number punctuation are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1u64).unwrap(), "1");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("4000000.0").unwrap(), 4_000_000.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(to_string(&m).unwrap(), "{\"a\":1,\"b\":2}");
        assert_eq!(from_str::<BTreeMap<String, u32>>("{\"b\":2,\"a\":1}").unwrap(), m);
    }

    #[test]
    fn pretty_format_matches_serde_json_shape() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u8]);
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v = from_str::<Vec<String>>(" [ \"\\u0041\", \"\\ud83d\\ude00\" ] ").unwrap();
        assert_eq!(v, vec!["A".to_string(), "😀".to_string()]);
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("").is_err());
    }

    #[test]
    fn negative_integers_parse_as_i64() {
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<i32>("-2147483648").unwrap(), i32::MIN);
    }
}
