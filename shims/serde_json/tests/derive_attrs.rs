//! The derive shim's field attributes: `#[serde(default)]` tolerates
//! absent keys and `#[serde(skip_serializing_if = "path")]` omits
//! fields, so configs can grow optional knobs without breaking old
//! JSON documents or changing the serialised form when the knob is at
//! its default.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Knobs {
    enabled: bool,
    level: u32,
}

impl Knobs {
    fn is_default(&self) -> bool {
        !self.enabled && self.level == 0
    }

    fn is_default_ref(knobs: &Knobs) -> bool {
        knobs.is_default()
    }
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs { enabled: false, level: 0 }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Config {
    seed: u64,
    #[serde(default, skip_serializing_if = "Knobs::is_default_ref")]
    knobs: Knobs,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    note: Option<String>,
}

#[test]
fn default_fields_tolerate_absent_keys() {
    let cfg: Config = serde_json::from_str("{\"seed\": 7}").expect("legacy document parses");
    assert_eq!(cfg.seed, 7);
    assert_eq!(cfg.knobs, Knobs::default());
    assert_eq!(cfg.note, None);
}

#[test]
fn default_valued_fields_are_omitted_from_output() {
    let cfg = Config { seed: 7, knobs: Knobs::default(), note: None };
    assert_eq!(serde_json::to_string(&cfg).unwrap(), "{\"seed\":7}");
}

#[test]
fn non_default_fields_serialise_and_roundtrip() {
    let cfg = Config {
        seed: 9,
        knobs: Knobs { enabled: true, level: 3 },
        note: Some("adversarial".into()),
    };
    let json = serde_json::to_string(&cfg).unwrap();
    assert!(json.contains("\"knobs\""), "{json}");
    assert!(json.contains("\"note\""), "{json}");
    let back: Config = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}

#[test]
fn present_keys_still_deserialise_on_default_fields() {
    let cfg: Config = serde_json::from_str(
        "{\"seed\": 1, \"knobs\": {\"enabled\": true, \"level\": 2}, \"note\": \"x\"}",
    )
    .unwrap();
    assert_eq!(cfg.knobs, Knobs { enabled: true, level: 2 });
    assert_eq!(cfg.note.as_deref(), Some("x"));
}
