//! Offline drop-in subset of `parking_lot`.
//!
//! The build container cannot fetch crates, so this shim provides the
//! `parking_lot` API surface the workspace uses — `Mutex` and `RwLock`
//! with poison-free guards — on top of `std::sync`. A poisoned std lock
//! (a writer panicked) degrades to taking the inner value, which is
//! parking_lot's own semantics: its locks do not poison.

#![forbid(unsafe_code)]

use std::sync::{self, LockResult};

/// Read guard of [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard of [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard of [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
