//! Offline drop-in subset of `crossbeam`.
//!
//! The build container cannot fetch crates, so this shim provides
//! `crossbeam::scope` / `crossbeam::thread::scope` — the only surface
//! the workspace uses — on top of `std::thread::scope` (stable since
//! Rust 1.63). Semantics follow crossbeam: the closure receives a scope
//! handle, `spawn` closures take the scope as an argument so they can
//! spawn recursively, and `scope` returns `Err` instead of unwinding
//! when a child thread panicked.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// A handle that spawns threads scoped to an enclosing [`scope`]
    /// call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to join one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before returning. Returns `Err` if any unjoined child panicked
    /// (crossbeam's contract — std's scope would resume the unwind).
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std_thread::scope(|s| f(&Scope { inner: s }))))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::scope;

    #[test]
    fn spawn_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn() {
        let n = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_is_an_err() {
        let result = scope(|s| {
            let _ = s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
