//! Offline drop-in subset of `proptest`.
//!
//! The build container cannot fetch crates, so this shim reimplements
//! the slice of proptest this workspace relies on: the `proptest!` /
//! `prop_assert*` / `prop_assume!` / `prop_oneof!` macros, integer
//! range strategies, regex-subset string strategies, tuple strategies,
//! `any::<T>()`, `proptest::collection::vec`, `prop_map`, and
//! `prop_filter`. There is no shrinking — a failing case panics with
//! the generated inputs' debug output. Generation is deterministic:
//! the RNG is seeded from the property's name, so failures reproduce.

#![forbid(unsafe_code)]

/// Deterministic RNG + case runner.
pub mod test_runner {
    /// Failure (assert) or rejection (assume) raised inside a property.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failed: the property is falsified.
        Fail(String),
        /// `prop_assume!` failed: discard the case and draw another.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Builds a rejection.
        pub fn reject(msg: &str) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    /// SplitMix64: tiny, uniform, and plenty for test-case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from the property name so each test
        /// explores its own reproducible sequence.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Runs one property: draws cases until `config.cases` succeed,
    /// skipping rejected draws (bounded), panicking on the first
    /// falsified case.
    pub fn run<F>(config: &crate::config::ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = (config.cases as u64).saturating_mul(64).max(1024);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "property `{name}`: too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` falsified after {passed} passing cases: {msg}")
                }
            }
        }
    }
}

/// Runner configuration (`cases` only).
pub mod config {
    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of one type. Object-safe so `prop_oneof!` can
    /// box heterogeneous arms.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (re-drawing, with a
        /// bounded number of attempts).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason, pred }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter.
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason)
        }
    }

    /// `prop_oneof!` support: uniform choice over boxed arms.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    // Integer range strategies.
    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    let draw = ((hi << 64) | lo) % span;
                    (self.start as u128).wrapping_add(draw) as $ty
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                    if span == 0 {
                        // Full-width u128 range: any draw is in range.
                        let hi = rng.next_u64() as u128;
                        let lo = rng.next_u64() as u128;
                        return ((hi << 64) | lo) as $ty;
                    }
                    let hi = rng.next_u64() as u128;
                    let lo = rng.next_u64() as u128;
                    let draw = ((hi << 64) | lo) % span;
                    (start as u128).wrapping_add(draw) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuple strategies (each element an independent strategy).
    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    }

    // String strategies from a regex subset (see `crate::pattern`).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::pattern::sample(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::pattern::sample(self, rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! arb_tuple {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )*};
    }
    arb_tuple! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy over a type's whole domain.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Regex-subset sampler backing string strategies. Supports literal
/// chars, `\`-escapes, `[...]` classes with ranges (trailing `-`
/// literal), `(a|b|c)` alternation groups, and `{n}` / `{m,n}` / `*` /
/// `+` / `?` repetitions.
pub mod pattern {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
        Group(Vec<Vec<(Atom, Rep)>>),
    }

    struct Rep {
        min: usize,
        max: usize,
    }

    /// Draws one string matching `pattern`.
    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let seq = parse_seq(&chars, &mut pos, pattern);
        assert!(
            pos == chars.len(),
            "proptest shim: unsupported regex `{pattern}` (stopped at {pos})"
        );
        let mut out = String::new();
        emit_seq(&seq, rng, &mut out);
        out
    }

    fn emit_seq(seq: &[(Atom, Rep)], rng: &mut TestRng, out: &mut String) {
        for (atom, rep) in seq {
            let n = rep.min + rng.below((rep.max - rep.min + 1) as u64) as usize;
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Group(alts) => {
                        let alt = &alts[rng.below(alts.len() as u64) as usize];
                        emit_seq(alt, rng, out);
                    }
                }
            }
        }
    }

    /// Parses until end of input, `)`, or `|` (caller handles both).
    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(Atom, Rep)> {
        let mut seq = Vec::new();
        while *pos < chars.len() {
            let atom = match chars[*pos] {
                ')' | '|' => break,
                '[' => {
                    *pos += 1;
                    Atom::Class(parse_class(chars, pos, pattern))
                }
                '(' => {
                    *pos += 1;
                    let mut alts = vec![parse_seq(chars, pos, pattern)];
                    while *pos < chars.len() && chars[*pos] == '|' {
                        *pos += 1;
                        alts.push(parse_seq(chars, pos, pattern));
                    }
                    assert!(
                        *pos < chars.len() && chars[*pos] == ')',
                        "proptest shim: unterminated group in `{pattern}`"
                    );
                    *pos += 1;
                    Atom::Group(alts)
                }
                '\\' => {
                    *pos += 1;
                    assert!(*pos < chars.len(), "proptest shim: dangling escape in `{pattern}`");
                    let c = chars[*pos];
                    *pos += 1;
                    Atom::Literal(c)
                }
                c => {
                    *pos += 1;
                    Atom::Literal(c)
                }
            };
            let rep = parse_rep(chars, pos, pattern);
            seq.push((atom, rep));
        }
        seq
    }

    fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let c = match chars[*pos] {
                '\\' => {
                    *pos += 1;
                    assert!(*pos < chars.len(), "proptest shim: dangling escape in `{pattern}`");
                    chars[*pos]
                }
                c => c,
            };
            *pos += 1;
            if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                let end = chars[*pos + 1];
                *pos += 2;
                assert!(c <= end, "proptest shim: inverted class range in `{pattern}`");
                for code in (c as u32)..=(end as u32) {
                    set.push(char::from_u32(code).expect("class range stays in valid chars"));
                }
            } else {
                set.push(c);
            }
        }
        assert!(
            *pos < chars.len(),
            "proptest shim: unterminated character class in `{pattern}`"
        );
        *pos += 1; // consume ']'
        assert!(!set.is_empty(), "proptest shim: empty character class in `{pattern}`");
        set
    }

    fn parse_rep(chars: &[char], pos: &mut usize, pattern: &str) -> Rep {
        if *pos >= chars.len() {
            return Rep { min: 1, max: 1 };
        }
        match chars[*pos] {
            '*' => {
                *pos += 1;
                Rep { min: 0, max: 8 }
            }
            '+' => {
                *pos += 1;
                Rep { min: 1, max: 8 }
            }
            '?' => {
                *pos += 1;
                Rep { min: 0, max: 1 }
            }
            '{' => {
                *pos += 1;
                let mut min = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    min.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize =
                    min.parse().unwrap_or_else(|_| panic!("bad repetition in `{pattern}`"));
                let max = if *pos < chars.len() && chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = String::new();
                    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                        max.push(chars[*pos]);
                        *pos += 1;
                    }
                    max.parse().unwrap_or_else(|_| panic!("bad repetition in `{pattern}`"))
                } else {
                    min
                };
                assert!(
                    *pos < chars.len() && chars[*pos] == '}',
                    "proptest shim: unterminated repetition in `{pattern}`"
                );
                *pos += 1;
                assert!(min <= max, "proptest shim: inverted repetition in `{pattern}`");
                Rep { min, max }
            }
            _ => Rep { min: 1, max: 1 },
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` drawing `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { (<$crate::config::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expands one property fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, ::std::stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}

/// Asserts inside a property; failure falsifies the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`",
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Discards the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(__arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn patterns_match_expected_shapes() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = crate::pattern::sample("[a-z]{2,8}\\.js", &mut rng);
            assert!(s.ends_with(".js"));
            let stem = &s[..s.len() - 3];
            assert!((2..=8).contains(&stem.len()));
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()));

            let t = crate::pattern::sample("(com|dev|xyz)", &mut rng);
            assert!(["com", "dev", "xyz"].contains(&t.as_str()));

            let d = crate::pattern::sample("[A-Z][a-z]{2,6} Drainer", &mut rng);
            assert!(d.ends_with(" Drainer"));
            assert!(d.chars().next().unwrap().is_ascii_uppercase());

            let w = crate::pattern::sample("[a-zA-Z0-9-]{1,20}", &mut rng);
            assert!((1..=20).contains(&w.chars().count()));
            assert!(w.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        use crate::strategy::Strategy;
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let b = (b'a'..=b'z').generate(&mut rng);
            assert!(b.is_ascii_lowercase());
            let i = (0usize..3).generate(&mut rng);
            assert!(i < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            n in 1u32..100,
            v in crate::collection::vec(any::<u8>(), 0..4),
            s in "[a-z]{1,3}",
        ) {
            prop_assert!(n >= 1);
            prop_assert!(v.len() < 4);
            prop_assume!(n != 55);
            prop_assert_eq!(s.len(), s.chars().count());
        }

        #[test]
        fn oneof_and_map_work(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v),
        ]) {
            prop_assert!(x < 20 || (100..110).contains(&x));
        }
    }
}
