//! Offline drop-in subset of `rand` 0.8.
//!
//! The build container has no network access and no vendored registry,
//! so the real `rand` crate cannot be fetched. This shim reimplements
//! the slice of the 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` — with
//! **bit-identical output**: `StdRng` is ChaCha12 behind the same
//! four-block `BlockRng` buffering as `rand_chacha`, `seed_from_u64`
//! uses the same PCG32 seed expansion as `rand_core`, and integer
//! ranges use the same widening-multiply rejection sampling as
//! `rand 0.8.5`. Every seed-derived world in the test suite therefore
//! reproduces exactly what it did when the repo was built against the
//! real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Core traits (rand_core shapes).
// ---------------------------------------------------------------------

/// Minimal `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Minimal `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding it with the same PCG32-based
    /// fill as `rand_core` 0.6 so streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

// ---------------------------------------------------------------------
// Distributions.
// ---------------------------------------------------------------------

/// Distribution subset (`rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A value distribution.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard (uniform-bits) distribution.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            // Low half first, as in rand 0.8.
            let x = u128::from(rng.next_u64());
            let y = u128::from(rng.next_u64());
            (y << 64) | x
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Sign test on the most significant bit, as in rand 0.8.
            (rng.next_u32() as i32) < 0
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53-bit multiply conversion into [0, 1).
            let value = rng.next_u64() >> 11;
            value as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> 8;
            value as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

// ---------------------------------------------------------------------
// Uniform range sampling (rand 0.8.5 `sample_single_inclusive`).
// ---------------------------------------------------------------------

/// Types samplable from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Mirrors rand 0.8.5's `uniform_int_impl!`: `$ty` sampled through the
/// widened `$u_large` with widening-multiply rejection. Small types
/// (≤ 16 bits) use the exact-modulus zone; larger types the shifted
/// approximation — both exactly as upstream, so accept/reject decisions
/// (and therefore stream consumption) are identical.
macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty, $gen:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "UniformSampler::sample_single: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "UniformSampler::sample_single_inclusive: low > high");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The full integer domain: every draw is acceptable.
                    return $gen(rng) as $u_large as $ty;
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = $gen(rng) as $u_large;
                    let wide = (v as $wide) * (range as $wide);
                    let hi = (wide >> (<$u_large>::BITS)) as $u_large;
                    let lo = wide as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

fn gen_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
    rng.next_u32()
}
fn gen_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    rng.next_u64()
}

uniform_int_impl! { u8, u8, u32, u64, gen_u32 }
uniform_int_impl! { u16, u16, u32, u64, gen_u32 }
uniform_int_impl! { u32, u32, u32, u64, gen_u32 }
uniform_int_impl! { u64, u64, u64, u128, gen_u64 }
uniform_int_impl! { usize, usize, usize, u128, gen_u64 }
uniform_int_impl! { i8, u8, u32, u64, gen_u32 }
uniform_int_impl! { i16, u16, u32, u64, gen_u32 }
uniform_int_impl! { i32, u32, u32, u64, gen_u32 }
uniform_int_impl! { i64, u64, u64, u128, gen_u64 }
uniform_int_impl! { isize, usize, usize, u128, gen_u64 }

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // rand 0.8.5 UniformFloat::sample_single: a [1, 2) mantissa draw
        // rescaled into the target range.
        let scale = high - low;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let value0_1 = value1_2 - 1.0;
        value0_1 * scale + low
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        Self::sample_single(low, high, rng)
    }
}

// ---------------------------------------------------------------------
// The user-facing `Rng` extension trait.
// ---------------------------------------------------------------------

/// The `rand::Rng` extension trait (subset).
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

// ---------------------------------------------------------------------
// StdRng: ChaCha12 behind rand_chacha's four-block buffer.
// ---------------------------------------------------------------------

/// Named RNGs (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    /// rand_chacha computes four ChaCha blocks per refill; the buffer
    /// length drives the `BlockRng` wrap-around arithmetic, so it must
    /// match.
    const BUF_WORDS: usize = 64;

    /// The standard RNG of rand 0.8: ChaCha with 12 rounds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// One ChaCha block: `double_rounds` column/diagonal round pairs
    /// (6 for ChaCha12), djb layout — 64-bit block counter in words
    /// 12–13, 64-bit stream id (always 0 here) in words 14–15.
    pub(crate) fn chacha_block(
        key: &[u32; 8],
        counter: u64,
        double_rounds: usize,
        out: &mut [u32],
    ) {
        let mut initial = [0u32; 16];
        initial[..4].copy_from_slice(&CONSTANTS);
        initial[4..12].copy_from_slice(key);
        initial[12] = counter as u32;
        initial[13] = (counter >> 32) as u32;
        let mut working = initial;
        for _ in 0..double_rounds {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (o, (w, i)) in out.iter_mut().zip(working.iter().zip(initial.iter())) {
            *o = w.wrapping_add(*i);
        }
    }

    impl StdRng {
        fn generate(&mut self) {
            for block in 0..4 {
                let c = self.counter.wrapping_add(block as u64);
                chacha_block(&self.key, c, 6, &mut self.buf[block * 16..(block + 1) * 16]);
            }
            self.counter = self.counter.wrapping_add(4);
        }

        fn generate_and_set(&mut self, offset: usize) {
            self.generate();
            self.index = offset;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
            }
            StdRng { key, counter: 0, buf: [0; BUF_WORDS], index: BUF_WORDS }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.buf[self.index];
            self.index += 1;
            value
        }

        // rand_core's BlockRng::next_u64, including the buffer-straddle
        // case: the stream position of every draw must match upstream.
        fn next_u64(&mut self) -> u64 {
            let read_u64 =
                |buf: &[u32; BUF_WORDS], i: usize| (u64::from(buf[i + 1]) << 32) | u64::from(buf[i]);
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                read_u64(&self.buf, index)
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                read_u64(&self.buf, 0)
            } else {
                let x = u64::from(self.buf[BUF_WORDS - 1]);
                self.generate_and_set(1);
                let y = u64::from(self.buf[0]);
                (y << 32) | x
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let bytes = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{chacha_block, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn chacha20_zero_key_known_answer() {
        // The canonical ChaCha20 (10 double rounds) keystream for the
        // all-zero key/nonce at counter 0 — validates the core the
        // ChaCha12 StdRng shares.
        let mut out = [0u32; 16];
        chacha_block(&[0; 8], 0, 10, &mut out);
        let mut bytes = Vec::new();
        for w in out {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 32] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7,
        ];
        assert_eq!(&bytes[..32], &expected);
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let z = rng.gen_range(b'a'..=b'z');
            assert!((b'a'..=b'z').contains(&z));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn u64_straddles_buffer_boundary() {
        // Drain 63 words then draw a u64: exercises the wrap-around arm
        // of next_u64.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..63 {
            rng.next_u32();
        }
        let _ = rng.next_u64();
        let _ = rng.next_u64();
    }
}
