//! Offline drop-in subset of `serde_derive`.
//!
//! The build container cannot fetch crates, so `syn`/`quote` are
//! unavailable; this macro parses the item's `TokenStream` by hand and
//! emits impl code by string templating. It supports exactly the item
//! shapes this workspace derives on:
//!
//! - structs with named fields (no generics, no tuple/unit structs),
//! - enums with unit / newtype / tuple / struct variants,
//! - the field attributes `#[serde(with = "module")]`,
//!   `#[serde(default)]` (absent field → `Default::default()`) and
//!   `#[serde(skip_serializing_if = "path")]` (field omitted when the
//!   predicate holds), in any comma-separated combination.
//!
//! Enums use serde's externally-tagged representation: unit variants
//! become a string, data variants a single-key object.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------

#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
    skip_if: Option<String>,
}

impl FieldAttrs {
    fn merge(&mut self, other: FieldAttrs) {
        if other.with.is_some() {
            self.with = other.with;
        }
        if other.skip_if.is_some() {
            self.skip_if = other.skip_if;
        }
        self.default |= other.default;
    }
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { toks: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.toks.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips `#[...]` attributes, accumulating whatever `#[serde(...)]`
    /// attributes carried.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while self.peek_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if let Some(a) = parse_serde_attr(&g) {
                        attrs.merge(a);
                    }
                }
                other => panic!("serde_derive shim: malformed attribute near {other:?}"),
            }
        }
        attrs
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consumes a type (everything up to a top-level `,`), eating the
    /// comma too. Tracks angle-bracket depth so commas inside generics
    /// don't terminate early; parens/brackets arrive as whole groups.
    fn skip_type(&mut self) {
        let mut depth: i64 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_attr(bracket: &Group) -> Option<FieldAttrs> {
    let toks: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None, // doc comment or other attribute: ignore
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => panic!("serde_derive shim: unsupported #[serde] attribute shape"),
    };
    let parts: Vec<TokenTree> = inner.into_iter().collect();
    let unsupported = |parts: &[TokenTree]| -> ! {
        panic!(
            "serde_derive shim: only `with = \"module\"`, `default` and \
             `skip_serializing_if = \"path\"` are supported, got #[serde({})]",
            parts.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
        )
    };
    let mut attrs = FieldAttrs::default();
    let mut i = 0;
    while i < parts.len() {
        let key = match &parts[i] {
            TokenTree::Ident(k) => k.to_string(),
            _ => unsupported(&parts),
        };
        let has_value = matches!(parts.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        match (key.as_str(), has_value) {
            ("default", false) => {
                attrs.default = true;
                i += 1;
            }
            ("with" | "skip_serializing_if", true) => {
                let value = match parts.get(i + 2) {
                    Some(TokenTree::Literal(lit)) => {
                        lit.to_string().trim_matches('"').to_string()
                    }
                    _ => unsupported(&parts),
                };
                if key == "with" {
                    attrs.with = Some(value);
                } else {
                    attrs.skip_if = Some(value);
                }
                i += 3;
            }
            _ => unsupported(&parts),
        }
        match parts.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            _ => unsupported(&parts),
        }
    }
    Some(attrs)
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = cur.skip_attrs();
        cur.skip_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, found {other:?}"),
        }
        cur.skip_type();
        fields.push(Field { name, attrs });
    }
    fields
}

/// Counts top-level comma-separated segments inside a tuple variant's
/// parens (trailing comma tolerated).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth: i64 = 0;
    let mut arity = 0usize;
    let mut seen_tok = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if seen_tok {
                    arity += 1;
                }
                seen_tok = false;
                continue;
            }
            _ => {}
        }
        seen_tok = true;
    }
    if seen_tok {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                cur.next();
                if arity == 0 {
                    VariantKind::Unit
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                cur.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if cur.peek_punct(',') {
            cur.next();
        } else if let Some(other) = cur.peek() {
            panic!("serde_derive shim: expected `,` after variant `{name}`, found {other:?}");
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_visibility();
    let kw = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    if cur.peek_punct('<') {
        panic!("serde_derive shim: generic item `{name}` is not supported");
    }
    let body_group = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body (tuple/unit items unsupported), found {other:?}"
        ),
    };
    let body = match kw.as_str() {
        "struct" => Body::Struct(parse_fields(body_group.stream())),
        "enum" => Body::Enum(parse_variants(body_group.stream())),
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

// ---------------------------------------------------------------------
// Codegen (string templates; `%key%` placeholders avoid brace escaping)
// ---------------------------------------------------------------------

fn t(template: &str, subs: &[(&str, &str)]) -> String {
    let mut out = template.to_string();
    for (key, value) in subs {
        out = out.replace(&format!("%{key}%"), value);
    }
    out
}

/// `match <expr> { Ok(v) => v, Err(e) => return Err(<Path>::custom(e)) }`
fn try_custom(expr: &str, err_trait: &str) -> String {
    t(
        "match %expr% { ::std::result::Result::Ok(__v) => __v, \
         ::std::result::Result::Err(__e) => return ::std::result::Result::Err(\
         <%err% as %trait%>::custom(__e)) }",
        &[("expr", expr), ("err", err_path(err_trait)), ("trait", err_trait)],
    )
}

fn err_path(err_trait: &str) -> &'static str {
    if err_trait == SER_TRAIT {
        "S::Error"
    } else {
        "D::Error"
    }
}

const SER_TRAIT: &str = "::serde::ser::Error";
const DE_TRAIT: &str = "::serde::de::Error";

fn field_to_value_expr(field: &Field, place: &str) -> String {
    match &field.attrs.with {
        None => format!("::serde::to_value({place})"),
        Some(with) => format!("{with}::serialize({place}, ::serde::ValueSerializer)"),
    }
}

fn field_from_value_expr(field: &Field, value: &str) -> String {
    match &field.attrs.with {
        None => format!("::serde::from_value({value})"),
        Some(with) => format!("{with}::deserialize(::serde::ValueDeserializer::new({value}))"),
    }
}

/// `name: { let __v = take_field(...)?; convert(__v)? },` lines for a
/// braced constructor, consuming a `__map: Vec<(String, Value)>`.
/// `#[serde(default)]` fields fall back to `Default::default()` when
/// the key is absent instead of erroring.
fn struct_field_inits(type_label: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for field in fields {
        let convert = try_custom(&field_from_value_expr(field, "__v"), DE_TRAIT);
        if field.attrs.default {
            out.push_str(&t(
                "%name%: match ::serde::take_field_opt(&mut __map, \"%name%\") {\n\
                 ::std::option::Option::Some(__v) => %convert%,\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n\
                 },\n",
                &[("name", field.name.as_str()), ("convert", convert.as_str())],
            ));
        } else {
            let take = try_custom(
                &format!("::serde::take_field(&mut __map, \"{}\", \"{type_label}\")", field.name),
                DE_TRAIT,
            );
            out.push_str(&t(
                "%name%: { let __v = %take%; %convert% },\n",
                &[
                    ("name", field.name.as_str()),
                    ("take", take.as_str()),
                    ("convert", convert.as_str()),
                ],
            ));
        }
    }
    out
}

/// `__fields.push(("name", to_value(<place>)?));` lines. Fields with
/// `#[serde(skip_serializing_if = "path")]` are pushed only when the
/// predicate rejects skipping.
fn struct_field_pushes(fields: &[Field], place_prefix: &str) -> String {
    let mut out = String::new();
    for field in fields {
        let place = format!("{place_prefix}{}", field.name);
        let value = try_custom(&field_to_value_expr(field, &place), SER_TRAIT);
        let line = t(
            "__fields.push((::std::string::String::from(\"%name%\"), %value%));\n",
            &[("name", field.name.as_str()), ("value", value.as_str())],
        );
        match &field.attrs.skip_if {
            None => out.push_str(&line),
            Some(path) => out.push_str(&t(
                "if !%path%(%place%) {\n%line%}\n",
                &[("path", path.as_str()), ("place", place.as_str()), ("line", line.as_str())],
            )),
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = item.name.as_str();
    let body = match &item.body {
        Body::Struct(fields) => t(
            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
             ::std::vec::Vec::new();\n\
             %pushes%\
             ::serde::ser::Serializer::serialize_value(serializer, ::serde::Value::Map(__fields))\n",
            &[("pushes", struct_field_pushes(fields, "&self.").as_str())],
        ),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = variant.name.as_str();
                match &variant.kind {
                    VariantKind::Unit => arms.push_str(&t(
                        "%item%::%v% => ::serde::ser::Serializer::serialize_str(serializer, \"%v%\"),\n",
                        &[("item", name), ("v", vname)],
                    )),
                    VariantKind::Tuple(1) => {
                        let value =
                            try_custom("::serde::to_value(__f0)", SER_TRAIT);
                        arms.push_str(&t(
                            "%item%::%v%(__f0) => {\n\
                             let __inner = %value%;\n\
                             ::serde::ser::Serializer::serialize_value(serializer, \
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\"%v%\"), __inner)]))\n\
                             }\n",
                            &[("item", name), ("v", vname), ("value", value.as_str())],
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let mut pushes = String::new();
                        for binder in &binders {
                            let value = try_custom(
                                &format!("::serde::to_value({binder})"),
                                SER_TRAIT,
                            );
                            pushes.push_str(&format!("__seq.push({value});\n"));
                        }
                        arms.push_str(&t(
                            "%item%::%v%(%binders%) => {\n\
                             let mut __seq: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n\
                             %pushes%\
                             ::serde::ser::Serializer::serialize_value(serializer, \
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\"%v%\"), \
                             ::serde::Value::Seq(__seq))]))\n\
                             }\n",
                            &[
                                ("item", name),
                                ("v", vname),
                                ("binders", binders.join(", ").as_str()),
                                ("pushes", pushes.as_str()),
                            ],
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&t(
                            "%item%::%v% { %binders% } => {\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                             %pushes%\
                             ::serde::ser::Serializer::serialize_value(serializer, \
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\"%v%\"), \
                             ::serde::Value::Map(__fields))]))\n\
                             }\n",
                            &[
                                ("item", name),
                                ("v", vname),
                                ("binders", binders.join(", ").as_str()),
                                ("pushes", struct_field_pushes(fields, "").as_str()),
                            ],
                        ));
                    }
                }
            }
            t("match self {\n%arms%}\n", &[("arms", arms.as_str())])
        }
    };
    t(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for %item% {\n\
         fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S) \
         -> ::std::result::Result<S::Ok, S::Error> {\n\
         %body%\
         }\n}\n",
        &[("item", name), ("body", body.as_str())],
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = item.name.as_str();
    let body = match &item.body {
        Body::Struct(fields) => t(
            "let __value = ::serde::de::Deserializer::into_value(deserializer)?;\n\
             let mut __map = %expect%;\n\
             let _ = &mut __map;\n\
             ::std::result::Result::Ok(%item% {\n%inits%})\n",
            &[
                (
                    "expect",
                    try_custom(
                        &format!("::serde::expect_map(__value, \"{name}\")"),
                        DE_TRAIT,
                    )
                    .as_str(),
                ),
                ("item", name),
                ("inits", struct_field_inits(name, fields).as_str()),
            ],
        ),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for variant in variants {
                let vname = variant.name.as_str();
                let label = format!("{name}::{vname}");
                match &variant.kind {
                    VariantKind::Unit => unit_arms.push_str(&t(
                        "\"%v%\" => ::std::result::Result::Ok(%item%::%v%),\n",
                        &[("item", name), ("v", vname)],
                    )),
                    VariantKind::Tuple(1) => {
                        let convert = try_custom("::serde::from_value(__inner)", DE_TRAIT);
                        data_arms.push_str(&t(
                            "\"%v%\" => ::std::result::Result::Ok(%item%::%v%(%convert%)),\n",
                            &[("item", name), ("v", vname), ("convert", convert.as_str())],
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let expect = try_custom(
                            &format!("::serde::expect_seq(__inner, {arity}, \"{label}\")"),
                            DE_TRAIT,
                        );
                        let elems: Vec<String> = (0..*arity)
                            .map(|_| {
                                try_custom(
                                    "::serde::from_value(__it.next().expect(\"length checked\"))",
                                    DE_TRAIT,
                                )
                            })
                            .collect();
                        data_arms.push_str(&t(
                            "\"%v%\" => {\n\
                             let __items = %expect%;\n\
                             let mut __it = __items.into_iter();\n\
                             ::std::result::Result::Ok(%item%::%v%(%elems%))\n\
                             }\n",
                            &[
                                ("item", name),
                                ("v", vname),
                                ("expect", expect.as_str()),
                                ("elems", elems.join(", ").as_str()),
                            ],
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let expect = try_custom(
                            &format!("::serde::expect_map(__inner, \"{label}\")"),
                            DE_TRAIT,
                        );
                        data_arms.push_str(&t(
                            "\"%v%\" => {\n\
                             let mut __map = %expect%;\n\
                             let _ = &mut __map;\n\
                             ::std::result::Result::Ok(%item%::%v% {\n%inits%})\n\
                             }\n",
                            &[
                                ("item", name),
                                ("v", vname),
                                ("expect", expect.as_str()),
                                ("inits", struct_field_inits(&label, fields).as_str()),
                            ],
                        ));
                    }
                }
            }
            t(
                "let __value = ::serde::de::Deserializer::into_value(deserializer)?;\n\
                 match __value {\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {\n\
                 %unit_arms%\
                 __other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{}` for %item%\", __other))),\n\
                 },\n\
                 ::serde::Value::Map(mut __entries) => {\n\
                 if __entries.len() != 1 {\n\
                 return ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 \"expected single-key object for enum %item%\"));\n\
                 }\n\
                 let (__tag, __inner) = __entries.remove(0);\n\
                 let _ = &__inner;\n\
                 match __tag.as_str() {\n\
                 %data_arms%\
                 __other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{}` for %item%\", __other))),\n\
                 }\n\
                 }\n\
                 _ => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 \"expected string or single-key object for enum %item%\")),\n\
                 }\n",
                &[("unit_arms", unit_arms.as_str()), ("data_arms", data_arms.as_str()), ("item", name)],
            )
        }
    };
    t(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for %item% {\n\
         fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D) \
         -> ::std::result::Result<Self, D::Error> {\n\
         %body%\
         }\n}\n",
        &[("item", name), ("body", body.as_str())],
    )
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Derives `serde::Serialize` for the supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive shim: generated invalid Serialize tokens")
}

/// Derives `serde::Deserialize` for the supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive shim: generated invalid Deserialize tokens")
}
