//! Family forensics: cluster the discovered dataset into DaaS families
//! (§7) and compare the dominant ones — membership, profits, contract
//! implementation style, and rotation cadence.
//!
//! ```sh
//! cargo run --release --example family_forensics
//! ```

use daas_lab::cluster::{cluster, family_forensics, ClusterConfig};
use daas_lab::detector::{build_dataset, SnowballConfig};
use daas_lab::measure::{dominant_share, family_table, MeasureCtx};
use daas_lab::world::{collection_end, World, WorldConfig};

fn main() {
    let world = World::build(&WorldConfig::small(42)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let clustering = cluster(&world.chain, &world.labels, &dataset);
    println!("clustered {} families from {} operator accounts\n", clustering.families.len(), dataset.operators.len());

    // Table 2-style overview, ordered by victim count.
    let ctx = MeasureCtx::new(&world.chain, &dataset, &world.oracle);
    let rows = family_table(&ctx, &clustering, collection_end());
    println!("{:<18} {:>9} {:>9} {:>10} {:>8} {:>10}  active", "family", "contracts", "operators", "affiliates", "victims", "profits");
    for row in &rows {
        println!(
            "{:<18} {:>9} {:>9} {:>10} {:>8} {:>9.0}k  {} – {}",
            row.name,
            row.contracts,
            row.operators,
            row.affiliates,
            row.victims,
            row.profits_usd / 1e3,
            row.active_start,
            row.active_end
        );
    }
    println!("\ndominant three hold {:.1}% of profits (paper: 93.9%)", dominant_share(&rows, 3));

    // Table 3 + §7.2 in one pass: profiles and lifecycles for every
    // family, fanned across the worker pool over a shared feature cache.
    let forensics = family_forensics(
        &world.chain,
        &dataset,
        &clustering,
        5,
        30 * 86_400,
        collection_end(),
        &ClusterConfig::default(),
    );

    println!("\ncontract implementation (recovered from call metadata):");
    for name in ["Angel Drainer", "Inferno Drainer", "Pink Drainer"] {
        let Some((profile, _)) = forensics.by_name(name) else { continue };
        println!(
            "  {:<17} ETH via {:<42} tokens via {}",
            name,
            profile.eth_entry.as_deref().unwrap_or("-"),
            profile.token_entry.as_deref().unwrap_or("-")
        );
    }

    // §7.2: rotation cadence of the primary contracts.
    println!("\nprimary-contract lifecycles (>5 txs at this scale, retired a month):");
    for name in ["Angel Drainer", "Inferno Drainer", "Pink Drainer"] {
        let Some((_, stats)) = forensics.by_name(name) else { continue };
        println!(
            "  {:<17} {} primaries, mean {:.1} days",
            name,
            stats.contracts.len(),
            stats.mean_days
        );
    }
}
