//! Wallet guard: the paper's §9 countermeasures in action against a
//! generated world — domain check, pre-signing simulation, and the
//! multi-account drain-intent test.
//!
//! ```sh
//! cargo run --release --example wallet_guard
//! ```

use daas_lab::detector::{build_dataset, SnowballConfig};
use daas_lab::types::units::ether;
use daas_lab::wallet_guard::{
    multi_account_test, DrainerBehavior, HonestCheckout, Holding, MultiAccountVerdict,
    SignRequest, SimulationVerdict, WalletGuard,
};
use daas_lab::webscan::FingerprintDb;
use daas_lab::world::{World, WorldConfig};

fn main() {
    let mut world = World::build(&WorldConfig::small(42)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());

    // Arm the guard with what the community knows: the reported dataset
    // and the toolkit fingerprint database.
    let mut db = FingerprintDb::new();
    for fp in &world.sites.seed_fingerprints {
        db.add(fp.clone());
    }
    for &idx in &world.sites.reported {
        db.expand_from_reported(&world.sites.sites[idx].files);
    }
    let guard = WalletGuard::new()
        .with_blocklist(
            dataset
                .contracts
                .iter()
                .chain(dataset.operators.iter())
                .chain(dataset.affiliates.iter())
                .copied(),
        )
        .with_fingerprints(db);
    println!("guard armed: {} blocklisted accounts\n", guard.blocklist_len());

    // --- Defense 1: domain check at connect time. ---
    let crawler = world.crawler();
    let (phish_site, _) = world
        .sites
        .sites
        .iter()
        .zip(&world.sites.truth)
        .find(|(s, t)| t.family.is_some() && !world.sites.down.contains(&s.domain))
        .expect("a live drainer site");
    use daas_lab::webscan::Crawler;
    let fetched = crawler.fetch(&phish_site.domain);
    println!(
        "domain check on {:<40} -> {:?}",
        phish_site.domain,
        guard.check_domain(&phish_site.domain, fetched)
    );
    println!(
        "domain check on {:<40} -> {:?}\n",
        "rust-lang.org",
        guard.check_domain("rust-lang.org", None)
    );

    // --- Defense 2: simulate before signing. ---
    let user = world.chain.create_eoa_funded(b"example/guarded-user", ether(50)).unwrap();
    let contract = *dataset.contracts.iter().next().expect("a drainer contract");
    let affiliate = *dataset.affiliates.iter().next().expect("an affiliate");
    let phishing_request = SignRequest {
        to: contract,
        value: ether(10),
        erc20_approvals: vec![],
        nft_approvals: vec![],
        affiliate_hint: Some(affiliate),
    };
    match guard.simulate(&world.chain, user, &phishing_request) {
        SimulationVerdict::Blocked { account } => {
            println!("signing 10 ETH to {} -> BLOCKED (pays reported account {})", contract.short(), account.short())
        }
        other => println!("signing 10 ETH to drainer -> {other:?}"),
    }
    let friend = world.chain.create_eoa(b"example/friend").unwrap();
    let honest_request = SignRequest {
        to: friend,
        value: ether(1),
        erc20_approvals: vec![],
        nft_approvals: vec![],
        affiliate_hint: None,
    };
    println!(
        "signing 1 ETH to a friend          -> {:?}\n",
        guard.simulate(&world.chain, user, &honest_request)
    );

    // --- Defense 3: multi-account probing. ---
    let usdc = world.infra.erc20_tokens[0].0;
    let nft = world.infra.nft_collections[0];
    let probes = vec![
        (user, vec![Holding::eth(ether(5))]),
        (friend, vec![Holding::erc20(usdc, ether(3)), Holding::nft(nft, 999)]),
    ];
    let drainer = DrainerBehavior { contract, affiliate };
    let checkout = HonestCheckout { merchant: friend, price: ether(1), token: None };
    for (name, verdict) in [
        ("drainer site", multi_account_test(&drainer, &probes, 0.9)),
        ("honest checkout", multi_account_test(&checkout, &probes, 0.9)),
    ] {
        match verdict {
            MultiAccountVerdict::DrainIntent { coverage } => {
                println!("multi-account probe of {name:<16} -> DRAIN INTENT ({:.0}% of holdings targeted)", coverage * 100.0)
            }
            MultiAccountVerdict::Bounded { coverage } => {
                println!("multi-account probe of {name:<16} -> bounded ({:.0}% of holdings targeted)", coverage * 100.0)
            }
        }
    }
}
