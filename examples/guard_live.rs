//! Wallet-guard against the live intelligence daemon.
//!
//! Boots a `daas-serve` engine on a tiny world, serves it on a Unix
//! socket from a background thread, ingests the whole chain via the
//! control protocol, then runs wallet-side pre-signing checks through
//! `wallet_guard::LiveGuardClient` — the §9 countermeasure backed by a
//! *live* dataset instead of a static blocklist.
//!
//! Run with: `cargo run --release --example guard_live`

use std::path::PathBuf;
use std::thread;

use daas_detector::SnowballConfig;
use daas_serve::{serve, Engine, ServeOptions};
use daas_world::WorldConfig;
use eth_types::Address;
use wallet_guard::LiveGuardClient;

fn main() -> Result<(), String> {
    let config = WorldConfig::tiny(42);
    let snowball = SnowballConfig::default();
    let engine = Engine::new(&config, &snowball, 0)?;
    // Keep a handle on the publication cell: the example reads the
    // final snapshot directly to pick real addresses to query.
    let cell = engine.snapshot_cell();

    let socket = PathBuf::from(format!(
        "{}/guard_live_{}.sock",
        std::env::temp_dir().display(),
        std::process::id()
    ));
    let opts = ServeOptions { socket: Some(socket.clone()), readers: 2, ..Default::default() };
    let daemon = thread::spawn(move || serve(engine, opts));
    while !socket.exists() {
        thread::sleep(std::time::Duration::from_millis(10));
    }

    let mut client = LiveGuardClient::connect(&socket)?;
    let status = client.status()?;
    println!(
        "connected: epoch {} | {}/{} blocks | {} known contracts",
        status.epoch, status.blocks_ingested, status.total_blocks, status.contracts
    );

    // Stream the whole chain through the engine (a real deployment
    // would ingest sealed blocks as they arrive).
    client.command("{\"cmd\":\"run\",\"window\":64}")?;
    let status = client.status()?;
    println!(
        "ingested: epoch {} | watermark {} | {} families | {} known contracts",
        status.epoch, status.watermark, status.families, status.contracts
    );

    // Pre-signing checks: one known drainer contract from the live
    // snapshot, one innocent address.
    let snap = cell.load();
    let drainer = snap.contracts.iter().next().copied();
    let innocent = Address::from_key_seed(b"innocent-checkout");
    for (label, addr) in [("drainer contract", drainer), ("innocent", Some(innocent))] {
        let Some(addr) = addr else { continue };
        let (safe, risk) = client.check_recipient(addr)?;
        println!(
            "{label:>16} {addr}: {} (roles {:?}, family {:?}, epoch {})",
            if safe { "SAFE TO SIGN" } else { "BLOCKED" },
            risk.roles,
            risk.family_name,
            risk.epoch,
        );
        assert_eq!(safe, label == "innocent");
    }

    client.command("{\"cmd\":\"shutdown\"}")?;
    daemon.join().map_err(|_| "daemon thread panicked".to_string())??;
    Ok(())
}
