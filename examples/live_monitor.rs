//! Live monitor: the streaming detector consuming the chain in daily
//! batches, like a deployed pipeline tailing new blocks — printing
//! admissions as they happen and proving the final state matches the
//! batch snowball.
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use daas_lab::chain::format_date;
use daas_lab::detector::{build_dataset, DetectorEvent, OnlineDetector, SnowballConfig};
use daas_lab::world::{World, WorldConfig};

fn main() {
    let world = World::build(&WorldConfig::small(42)).expect("world");
    let txs = world.chain.transactions();
    println!("replaying {} transactions through the streaming detector…\n", txs.len());

    let mut detector = OnlineDetector::new(SnowballConfig::default());
    let mut admissions = 0usize;
    let mut ps_txs = 0usize;

    // Deliver in ~30-day batches, like a collector polling an archive
    // node; print a digest per batch that found something.
    let mut cursor_ts = txs.timestamps().first().copied().unwrap_or_default();
    let mut idx = 0u32;
    while (idx as usize) < txs.len() {
        cursor_ts += 30 * 86_400;
        let upto = txs.timestamps().partition_point(|&t| t < cursor_ts) as u32;
        if upto == idx {
            continue;
        }
        idx = upto;
        let events = detector.poll_until(&world.chain, &world.labels, idx);
        if events.is_empty() {
            continue;
        }
        let new_contracts: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                DetectorEvent::ContractAdmitted { contract, via } => {
                    admissions += 1;
                    Some(format!("{} ({via:?})", contract.short()))
                }
                DetectorEvent::PsTransaction { .. } => {
                    ps_txs += 1;
                    None
                }
                _ => None,
            })
            .collect();
        if !new_contracts.is_empty() {
            println!(
                "{}: +{} contracts, dataset now {} contracts / {} txs",
                format_date(cursor_ts),
                new_contracts.len(),
                detector.dataset().counts().contracts,
                detector.dataset().counts().ps_txs,
            );
            for c in new_contracts.iter().take(3) {
                println!("    admitted {c}");
            }
        }
    }
    // Drain any tail.
    detector.poll(&world.chain, &world.labels);

    println!(
        "\nstream complete: {admissions} contract admissions, {ps_txs} profit-sharing txs observed live"
    );

    // The streaming state equals the batch result — same dataset, no
    // re-scan needed.
    let batch = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    assert_eq!(detector.dataset().contracts, batch.contracts);
    assert_eq!(detector.dataset().ps_txs, batch.ps_txs);
    println!(
        "equivalence check: streaming == batch ({} contracts, {} txs) ✓",
        batch.counts().contracts,
        batch.counts().ps_txs
    );
}
