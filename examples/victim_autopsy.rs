//! Victim autopsy: follow one victim end to end — the phishing approval,
//! the drain, the profit split (Figures 1 and 4), and what a reporting-
//! fed wallet blocklist would have prevented (§8.1).
//!
//! ```sh
//! cargo run --release --example victim_autopsy
//! ```

use daas_lab::chain::format_date;
use daas_lab::detector::{build_dataset, SnowballConfig};
use daas_lab::measure::MeasureCtx;
use daas_lab::reporting::Blocklist;
use daas_lab::types::units::format_ether;
use daas_lab::world::{World, WorldConfig};

fn main() {
    let world = World::build(&WorldConfig::small(42)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let ctx = MeasureCtx::new(&world.chain, &dataset, &world.oracle);

    // Find the repeat victim with the largest total loss.
    let losses = ctx.loss_per_victim();
    let mut by_victim: std::collections::HashMap<_, Vec<_>> = Default::default();
    for inc in ctx.incidents() {
        by_victim.entry(inc.victim).or_default().push(inc);
    }
    let (victim, incidents) = by_victim
        .iter()
        .filter(|(_, incs)| incs.len() > 1)
        .max_by(|a, b| {
            losses[a.0].partial_cmp(&losses[b.0]).expect("finite")
        })
        .expect("repeat victims exist");

    println!("victim {} — {} incidents, ${:.0} total loss\n", victim, incidents.len(), losses[victim]);

    for inc in incidents {
        let tx = world.chain.tx(inc.tx);
        println!("incident on {} (tx {}):", format_date(tx.timestamp()), tx.hash());
        for approval in tx.approvals() {
            println!(
                "  approval: {} granted {} spending rights on token {}",
                approval.owner.short(),
                approval.spender.short(),
                approval.token.short()
            );
        }
        for transfer in tx.transfers() {
            let amount = match transfer.asset {
                daas_lab::chain::Asset::Eth => format!("{} ETH", format_ether(transfer.amount, 4)),
                daas_lab::chain::Asset::Erc20(token) => {
                    let sym = world
                        .chain
                        .token_meta(token)
                        .map(|meta| meta.symbol.clone())
                        .unwrap_or_else(|| "?".into());
                    format!("{} units of {sym}", transfer.amount)
                }
                daas_lab::chain::Asset::Erc721 { token, id } => {
                    format!("NFT {}#{id}", token.short())
                }
            };
            println!("  transfer: {} -> {}  {}", transfer.from.short(), transfer.to.short(), amount);
        }
        println!(
            "  split: operator {} took ${:.0} ({} bps), affiliate {} took ${:.0}\n",
            inc.operator.short(),
            inc.operator_usd,
            inc.ratio_bps,
            inc.affiliate.short(),
            inc.affiliate_usd
        );
    }

    // The §8.1 counterfactual: had the dataset been reported and wallets
    // enforced it halfway through the window, how much would have been
    // refused?
    let midpoint = daas_lab::world::collection_start()
        + (daas_lab::world::collection_end() - daas_lab::world::collection_start()) / 2;
    let blocklist = Blocklist::from_dataset(&dataset, midpoint);
    let (prevented, total_after) = blocklist.prevented(&world.chain, &dataset);
    println!(
        "blocklist counterfactual: enforcing {} reported accounts from {} would have refused {}/{} later profit-sharing txs ({:.1}%)",
        blocklist.len(),
        format_date(midpoint),
        prevented,
        total_after,
        100.0 * prevented as f64 / total_after.max(1) as f64
    );
}
