//! Quickstart: build a small DaaS world, run the snowball sampler, and
//! print what it found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use daas_lab::detector::{build_dataset, evaluate, SnowballConfig};
use daas_lab::world::{World, WorldConfig};

fn main() {
    // 1. Simulate the ecosystem: nine drainer families, benign traffic,
    //    public labels — everything §5.1's pipeline would see on mainnet,
    //    at 5% of the paper's scale so this runs in about a second.
    let config = WorldConfig::small(42);
    let world = World::build(&config).expect("world generation is infallible for presets");
    let stats = world.chain.stats();
    println!(
        "world: {} accounts, {} transactions, {} blocks, {} labels",
        stats.accounts,
        stats.transactions,
        stats.blocks,
        world.labels.len()
    );

    // 2. Run the paper's detection pipeline: seed profit-sharing
    //    contracts from public labels, expand by snowball sampling.
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    println!(
        "seed dataset:     {} contracts, {} operators, {} affiliates, {} profit-sharing txs",
        dataset.seed.contracts, dataset.seed.operators, dataset.seed.affiliates, dataset.seed.ps_txs
    );
    let counts = dataset.counts();
    println!(
        "expanded dataset: {} contracts, {} operators, {} affiliates, {} profit-sharing txs ({} rounds)",
        counts.contracts, counts.operators, counts.affiliates, counts.ps_txs, dataset.rounds
    );

    // 3. Because the world carries ground truth, we can score the result
    //    — the paper needed 584 hours of manual review for this.
    let eval = evaluate(
        &dataset,
        &world.truth.all_contracts(),
        &world.truth.all_operators(),
        &world.truth.all_affiliates(),
        &world.truth.ps_tx_ids(),
    );
    println!(
        "contracts: precision {:.3} recall {:.3} | transactions: precision {:.3} recall {:.3}",
        eval.contracts.precision(),
        eval.contracts.recall(),
        eval.transactions.precision(),
        eval.transactions.recall(),
    );

    // 4. Peek at one discovered observation.
    let obs = dataset.observations.first().expect("dataset is never empty here");
    println!(
        "example: tx {} splits {} / {} between operator {} and affiliate {} ({} bps)",
        obs.tx,
        obs.operator_amount,
        obs.affiliate_amount,
        obs.operator.short(),
        obs.affiliate.short(),
        obs.ratio_bps
    );
}
