//! Certificate-transparency hunting (§8.2): watch the CT stream, triage
//! suspicious domains with the 63-keyword list plus Levenshtein fuzz,
//! crawl the survivors and match drainer-toolkit fingerprints.
//!
//! ```sh
//! cargo run --release --example ct_hunting
//! ```

use daas_lab::ct_watch::{CtStream, DomainTriage, MatchKind};
use daas_lab::webscan::{scan_domains, FingerprintDb, Verdict};
use daas_lab::world::{detection_start, World, WorldConfig};

fn main() {
    let world = World::build(&WorldConfig::small(42)).expect("world");

    // The fingerprint database starts from toolkits acquired in Telegram
    // groups and grows by folding in files from community-reported sites.
    let mut db = FingerprintDb::new();
    for fp in &world.sites.seed_fingerprints {
        db.add(fp.clone());
    }
    let seeds = db.len();
    for &idx in &world.sites.reported {
        db.expand_from_reported(&world.sites.sites[idx].files);
    }
    println!("fingerprints: {seeds} from Telegram toolkits, {} after expansion", db.len());

    // Tail the CT log from the paper's watch start (2023-12-01).
    let mut stream = CtStream::new(world.sites.certs.clone());
    stream.poll_until(detection_start() - 1); // before the watcher existed
    let watched = stream.poll_rest().to_vec();
    println!("certificates watched: {}", watched.len());

    // Keyword triage at the paper's 0.8 similarity threshold.
    let triage = DomainTriage::new(0.8);
    let mut exact = 0;
    let mut fuzzy = 0;
    let suspicious: Vec<&str> = watched
        .iter()
        .filter_map(|cert| {
            let hit = triage.assess(&cert.domain)?;
            match hit.kind {
                MatchKind::Exact => exact += 1,
                MatchKind::Fuzzy(_) => fuzzy += 1,
            }
            Some(cert.domain.as_str())
        })
        .collect();
    println!("triaged {} suspicious domains ({exact} exact keyword, {fuzzy} fuzzy)", suspicious.len());

    // Crawl and verify.
    let crawler = world.crawler();
    let report = scan_domains(&crawler, &db, suspicious);
    println!(
        "verdicts: {} phishing, {} clean, {} unreachable",
        report.confirmed, report.clean, report.unreachable
    );

    // Family attribution from fingerprints, Table 4 from the TLDs.
    println!("\nsites per family:");
    for (family, count) in report.by_family() {
        println!("  {family:<18} {count}");
    }
    println!("\ntop TLDs among confirmed phishing domains:");
    for (tld, share) in report.tld_table().top(10) {
        println!("  .{tld:<9} {share:>5.1}%");
    }

    // A couple of concrete verdicts, for flavour.
    println!("\nsample verdicts:");
    for outcome in report.outcomes.iter().take(5) {
        let verdict = match &outcome.verdict {
            Verdict::Phishing { family } => format!("PHISHING ({family})"),
            Verdict::Clean => "clean".to_owned(),
            Verdict::Unreachable => "unreachable".to_owned(),
        };
        println!("  {:<40} {verdict}", outcome.domain);
    }
}
