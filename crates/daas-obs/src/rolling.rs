//! Rolling-window views over interval metric snapshots.
//!
//! The registry's counters and histograms are cumulative, which is the
//! right shape for Prometheus scrapes but useless for "what happened in
//! the last N seconds" questions asked of a long-running daemon. A
//! [`RollingWindow`] keeps a short ring of timestamped
//! [`MetricsSnapshot`]s (produced by [`snapshot`](crate::snapshot) on an
//! interval) and derives a [`WindowView`]: per-counter deltas and rates,
//! and per-histogram *window* distributions (bucket-wise difference
//! between the newest sample and the window baseline), over which the
//! usual quantile estimates apply.
//!
//! The window never feeds back into the registry — it is pure
//! arithmetic over snapshots, so taking views cannot perturb `drain()`
//! semantics any more than the snapshots themselves (which are
//! non-destructive by contract).

use std::collections::{BTreeMap, VecDeque};

use crate::metrics::{HistogramSnapshot, MetricsSnapshot, MS_BUCKETS};

/// A bounded ring of timestamped cumulative snapshots covering roughly
/// the last `window_ms` milliseconds.
#[derive(Debug, Default)]
pub struct RollingWindow {
    window_ms: u64,
    samples: VecDeque<(u64, MetricsSnapshot)>,
}

impl RollingWindow {
    /// A window covering the last `window_ms` milliseconds (minimum 1).
    pub fn new(window_ms: u64) -> Self {
        RollingWindow { window_ms: window_ms.max(1), samples: VecDeque::new() }
    }

    /// The configured horizon in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.window_ms
    }

    /// Retained samples (baseline included).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no sample has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends one interval sample. Timestamps must be monotonic
    /// (samples older than the newest are ignored). The oldest samples
    /// are evicted, but one sample at or before the window start is
    /// always retained as the delta baseline.
    pub fn push(&mut self, t_ms: u64, snapshot: MetricsSnapshot) {
        if let Some(&(last, _)) = self.samples.back() {
            if t_ms < last {
                return;
            }
        }
        self.samples.push_back((t_ms, snapshot));
        let start = t_ms.saturating_sub(self.window_ms);
        while self.samples.len() > 2 && self.samples[1].0 <= start {
            self.samples.pop_front();
        }
    }

    /// The delta view between the window baseline and the newest
    /// sample; `None` until two samples exist.
    pub fn view(&self) -> Option<WindowView> {
        let (from_ms, baseline) = self.samples.front()?;
        let (to_ms, newest) = self.samples.back()?;
        if self.samples.len() < 2 {
            return None;
        }
        let span_ms = to_ms.saturating_sub(*from_ms).max(1);
        let mut counter_deltas = BTreeMap::new();
        let mut rates_per_s = BTreeMap::new();
        for (key, &value) in &newest.counters {
            let delta = value.saturating_sub(baseline.counter(key));
            counter_deltas.insert(key.clone(), delta);
            rates_per_s.insert(key.clone(), delta as f64 * 1e3 / span_ms as f64);
        }
        let mut histograms = BTreeMap::new();
        for (key, hist) in &newest.histograms {
            let delta = match baseline.histograms.get(key) {
                Some(base) => delta_histogram(base, hist),
                None => hist.clone(),
            };
            if delta.count > 0 {
                histograms.insert(key.clone(), delta);
            }
        }
        Some(WindowView {
            from_ms: *from_ms,
            to_ms: *to_ms,
            counter_deltas,
            rates_per_s,
            gauges: newest.gauges.clone(),
            histograms,
        })
    }
}

/// What happened between the window baseline and the newest sample.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowView {
    /// Baseline sample timestamp (ms, caller's clock).
    pub from_ms: u64,
    /// Newest sample timestamp (ms).
    pub to_ms: u64,
    /// Counter increments over the window.
    pub counter_deltas: BTreeMap<String, u64>,
    /// Counter increments per second over the window.
    pub rates_per_s: BTreeMap<String, f64>,
    /// Newest gauge values (gauges are point-in-time, not deltas).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram distributions of the window's observations only
    /// (cumulative newest minus baseline, bucket by bucket). Quantile
    /// estimates via [`HistogramSnapshot::quantile_ms`] describe the
    /// window, not the whole run.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Bucket-wise `newest - baseline`. Min/max are not recoverable from
/// cumulative extremes, so they are re-derived from the window's
/// occupied buckets (lower bound of the first, upper bound of the last;
/// the observed-run max when the overflow bucket grew) — which keeps
/// the quantile estimator's clamping semantics sound for window views.
fn delta_histogram(base: &HistogramSnapshot, newest: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets = Vec::with_capacity(newest.buckets.len());
    for (i, &(le, count)) in newest.buckets.iter().enumerate() {
        let base_count = base.buckets.get(i).map(|&(_, n)| n).unwrap_or(0);
        buckets.push((le, count.saturating_sub(base_count)));
    }
    let overflow = newest.overflow.saturating_sub(base.overflow);
    let count = newest.count.saturating_sub(base.count);
    let sum_ms = (newest.sum_ms - base.sum_ms).max(0.0);
    let mut min_ms = 0.0;
    let mut max_ms = 0.0;
    let mut lower = 0.0;
    for &(le, n) in &buckets {
        if n > 0 {
            if max_ms == 0.0 && min_ms == 0.0 && lower > 0.0 {
                min_ms = lower;
            }
            max_ms = le;
        }
        lower = le;
    }
    if overflow > 0 {
        max_ms = newest.max_ms;
        if count == overflow {
            min_ms = MS_BUCKETS[MS_BUCKETS.len() - 1];
        }
    }
    HistogramSnapshot { count, sum_ms, min_ms, max_ms, buckets, overflow }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)], hist: &[(&str, &[f64])]) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for &(key, value) in counters {
            out.counters.insert(key.to_string(), value);
        }
        for &(key, values) in hist {
            let mut buckets: Vec<(f64, u64)> = MS_BUCKETS.iter().map(|&b| (b, 0)).collect();
            let mut overflow = 0;
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for &v in values {
                match MS_BUCKETS.iter().position(|&b| v <= b) {
                    Some(i) => buckets[i].1 += 1,
                    None => overflow += 1,
                }
                sum += v;
                min = min.min(v);
                max = max.max(v);
            }
            out.histograms.insert(
                key.to_string(),
                HistogramSnapshot {
                    count: values.len() as u64,
                    sum_ms: sum,
                    min_ms: if values.is_empty() { 0.0 } else { min },
                    max_ms: if values.is_empty() { 0.0 } else { max },
                    buckets,
                    overflow,
                },
            );
        }
        out
    }

    #[test]
    fn rates_and_deltas_over_the_window() {
        let mut window = RollingWindow::new(10_000);
        window.push(0, snap(&[("c", 10)], &[]));
        assert!(window.view().is_none(), "one sample has no delta");
        window.push(2_000, snap(&[("c", 30)], &[]));
        let view = window.view().unwrap();
        assert_eq!(view.counter_deltas["c"], 20);
        assert_eq!(view.rates_per_s["c"], 10.0);
        assert_eq!((view.from_ms, view.to_ms), (0, 2_000));
    }

    #[test]
    fn old_samples_are_evicted_but_baseline_survives() {
        let mut window = RollingWindow::new(1_000);
        for i in 0..10u64 {
            window.push(i * 500, snap(&[("c", i * 2)], &[]));
        }
        // Horizon is 1s = 2 intervals; the baseline sits at the window
        // start, so the view spans ~the configured horizon.
        let view = window.view().unwrap();
        assert!(window.len() <= 4, "ring stays bounded, kept {}", window.len());
        assert!(view.to_ms - view.from_ms >= 1_000);
        assert_eq!(view.counter_deltas["c"], (view.to_ms - view.from_ms) / 250);
        // Non-monotonic pushes are ignored.
        window.push(100, snap(&[("c", 0)], &[]));
        assert_eq!(window.view().unwrap().to_ms, 4_500);
    }

    #[test]
    fn histogram_window_delta_quantiles() {
        let mut window = RollingWindow::new(60_000);
        window.push(0, snap(&[], &[("lat_ms", &[0.3, 0.3, 0.3])]));
        window.push(
            1_000,
            snap(&[], &[("lat_ms", &[0.3, 0.3, 0.3, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0])]),
        );
        let view = window.view().unwrap();
        let hist = &view.histograms["lat_ms"];
        // Only the window's six 2.0ms observations remain.
        assert_eq!(hist.count, 6);
        assert_eq!(hist.min_ms, 1.0, "lower bound of the occupied bucket");
        assert_eq!(hist.max_ms, 2.5);
        let p50 = hist.quantile_ms(0.5).unwrap();
        assert!(p50 > 1.0 && p50 <= 2.5, "window median in the (1.0, 2.5] bucket, got {p50}");
    }

    #[test]
    fn disjoint_keys_fall_back_to_full_values() {
        let mut window = RollingWindow::new(60_000);
        window.push(0, MetricsSnapshot::default());
        window.push(500, snap(&[("fresh", 7)], &[("h_ms", &[0.1])]));
        let view = window.view().unwrap();
        assert_eq!(view.counter_deltas["fresh"], 7);
        assert_eq!(view.histograms["h_ms"].count, 1);
    }
}
