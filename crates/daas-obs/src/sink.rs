//! Sinks: JSONL trace log, Prometheus text exposition, JSON run summary
//! and the human-readable `--timings` digest.
//!
//! Every sink walks sorted snapshots, so output is deterministic given
//! the recorded data. The JSONL and summary-JSON schemas are stable
//! interfaces — `schemas/metrics_summary.schema.json` is checked in and
//! validated in CI (`obs_validate`), and the JSONL keys are pinned by
//! `tests/` in this crate.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::json::{escape_into, fmt_num};
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use crate::ObsReport;

/// Writes the trace as JSON Lines: one `meta` record, then one `span`
/// record per completed span (sorted by start time).
///
/// Schema (all keys always present):
/// * meta — `{"type":"meta","version":1,"spans":N,"dropped_spans":M}`
/// * span — `{"type":"span","id":u64,"parent":u64|null,"thread":u64,
///   "name":str,"labels":str,"start_ns":u64,"dur_ns":u64}`
pub fn write_trace_jsonl(report: &ObsReport, out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "{{\"type\":\"meta\",\"version\":1,\"spans\":{},\"dropped_spans\":{}}}",
        report.spans.len(),
        report.dropped_spans
    )?;
    let mut line = String::new();
    for span in &report.spans {
        line.clear();
        span_jsonl(&mut line, span);
        writeln!(out, "{line}")?;
    }
    Ok(())
}

fn span_jsonl(out: &mut String, span: &SpanRecord) {
    out.push_str("{\"type\":\"span\",\"id\":");
    let _ = write!(out, "{}", span.id);
    out.push_str(",\"parent\":");
    match span.parent {
        Some(parent) => {
            let _ = write!(out, "{parent}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"thread\":{}", span.thread);
    out.push_str(",\"name\":");
    escape_into(out, span.name);
    out.push_str(",\"labels\":");
    escape_into(out, &span.labels);
    let _ = write!(out, ",\"start_ns\":{},\"dur_ns\":{}}}", span.start_ns, span.dur_ns);
}

/// Renders the run summary as one JSON document (the `--metrics-out`
/// artifact; CI validates it against
/// `schemas/metrics_summary.schema.json`).
pub fn summary_json(report: &ObsReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"version\": 1,\n");
    let _ = write!(
        out,
        "  \"spans\": {{\"recorded\": {}, \"dropped\": {}, \"evicted_total\": {}, \"thread_slots\": {}}},\n",
        report.spans.len(),
        report.dropped_spans,
        report.evicted_total,
        report.thread_slots
    );

    out.push_str("  \"counters\": {");
    let mut first = true;
    for (key, value) in &report.metrics.counters {
        sep(&mut out, &mut first);
        escape_into(&mut out, key);
        let _ = write!(out, ": {value}");
    }
    out.push_str(close_brace(first));

    out.push_str("  \"gauges\": {");
    let mut first = true;
    for (key, value) in &report.metrics.gauges {
        sep(&mut out, &mut first);
        escape_into(&mut out, key);
        out.push_str(": ");
        fmt_num(&mut out, *value);
    }
    out.push_str(close_brace(first));

    out.push_str("  \"histograms\": {");
    let mut first = true;
    for (key, hist) in &report.metrics.histograms {
        sep(&mut out, &mut first);
        escape_into(&mut out, key);
        let _ = write!(out, ": {{\"count\": {}, \"sum_ms\": ", hist.count);
        fmt_num(&mut out, hist.sum_ms);
        out.push_str(", \"min_ms\": ");
        fmt_num(&mut out, hist.min_ms);
        out.push_str(", \"max_ms\": ");
        fmt_num(&mut out, hist.max_ms);
        out.push_str(", \"p50_ms\": ");
        fmt_num(&mut out, hist.quantile_ms(0.5).unwrap_or(0.0));
        out.push_str(", \"p95_ms\": ");
        fmt_num(&mut out, hist.quantile_ms(0.95).unwrap_or(0.0));
        let _ = write!(out, ", \"overflow\": {}, \"buckets\": [", hist.overflow);
        for (i, (le, count)) in hist.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"le\": ");
            fmt_num(&mut out, *le);
            let _ = write!(out, ", \"count\": {count}}}");
        }
        out.push_str("]}");
    }
    if first {
        out.push_str("}\n");
    } else {
        out.push_str("\n  }\n");
    }
    out.push('}');
    out.push('\n');
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        out.push_str("\n    ");
        *first = false;
    } else {
        out.push_str(",\n    ");
    }
}

fn close_brace(first: bool) -> &'static str {
    if first {
        "},\n"
    } else {
        "\n  },\n"
    }
}

/// Renders a live [`MetricsSnapshot`] as one compact JSON object —
/// the body of the daemon's `obs` query. Unlike [`summary_json`] this
/// is single-line (JSONL-embeddable) and omits per-bucket arrays:
/// histograms carry count / sum / min / max, the p50/p95/p99 estimates
/// and the overflow count (the full bucket layout is available from
/// `GET /metrics`).
pub fn metrics_json(metrics: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"counters\":{");
    let mut first = true;
    for (key, value) in &metrics.counters {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(&mut out, key);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"gauges\":{");
    let mut first = true;
    for (key, value) in &metrics.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(&mut out, key);
        out.push(':');
        fmt_num(&mut out, *value);
    }
    out.push_str("},\"histograms\":{");
    let mut first = true;
    for (key, hist) in &metrics.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        escape_into(&mut out, key);
        let _ = write!(out, ":{{\"count\":{},\"sum_ms\":", hist.count);
        fmt_num(&mut out, hist.sum_ms);
        out.push_str(",\"min_ms\":");
        fmt_num(&mut out, hist.min_ms);
        out.push_str(",\"max_ms\":");
        fmt_num(&mut out, hist.max_ms);
        out.push_str(",\"p50_ms\":");
        fmt_num(&mut out, hist.quantile_ms(0.5).unwrap_or(0.0));
        out.push_str(",\"p95_ms\":");
        fmt_num(&mut out, hist.quantile_ms(0.95).unwrap_or(0.0));
        out.push_str(",\"p99_ms\":");
        fmt_num(&mut out, hist.quantile_ms(0.99).unwrap_or(0.0));
        let _ = write!(out, ",\"overflow\":{}}}", hist.overflow);
    }
    out.push_str("}}");
    out
}

/// Renders the metrics in the Prometheus text exposition format. Metric
/// names are prefixed `daas_` with `.`/`-` mapped to `_`; the single
/// `key=value` label becomes a Prometheus label. Histograms emit the
/// conventional cumulative `_bucket{le=...}`, `_sum` and `_count`
/// series.
pub fn prometheus_text(metrics: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut last_type_for: Option<String> = None;
    for (key, value) in &metrics.counters {
        let (name, label) = prom_name(key);
        type_line(&mut out, &mut last_type_for, &name, "counter");
        let _ = writeln!(out, "{name}{label} {value}");
    }
    last_type_for = None;
    for (key, value) in &metrics.gauges {
        let (name, label) = prom_name(key);
        type_line(&mut out, &mut last_type_for, &name, "gauge");
        let mut rendered = String::new();
        fmt_num(&mut rendered, *value);
        let _ = writeln!(out, "{name}{label} {rendered}");
    }
    last_type_for = None;
    for (key, hist) in &metrics.histograms {
        let (name, label) = prom_name(key);
        type_line(&mut out, &mut last_type_for, &name, "histogram");
        let base_label = label.strip_prefix('{').and_then(|l| l.strip_suffix('}'));
        let mut cumulative = 0u64;
        for (le, count) in &hist.buckets {
            cumulative += count;
            let mut bound = String::new();
            fmt_num(&mut bound, *le);
            match base_label {
                Some(inner) => {
                    let _ = writeln!(out, "{name}_bucket{{{inner},le=\"{bound}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
            }
        }
        cumulative += hist.overflow;
        match base_label {
            Some(inner) => {
                let _ = writeln!(out, "{name}_bucket{{{inner},le=\"+Inf\"}} {cumulative}");
            }
            None => {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
        let mut sum = String::new();
        fmt_num(&mut sum, hist.sum_ms);
        let _ = writeln!(out, "{name}_sum{label} {sum}");
        let _ = writeln!(out, "{name}_count{label} {}", hist.count);
    }
    out
}

/// Splits a snapshot key (`name` or `name{k=v}`) into the sanitized
/// Prometheus metric name and a rendered `{k="v"}` label clause.
fn prom_name(key: &str) -> (String, String) {
    let (raw_name, raw_label) = match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}').unwrap_or(rest)),
        None => (key, ""),
    };
    let mut name = String::with_capacity(raw_name.len() + 5);
    name.push_str("daas_");
    for c in raw_name.chars() {
        name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    let label = match raw_label.split_once('=') {
        Some((k, v)) => format!("{{{k}=\"{v}\"}}", k = k, v = prom_label_value(v)),
        None => String::new(),
    };
    (name, label)
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and line feed — backslash first, or the
/// other escapes' own backslashes would be doubled.
fn prom_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn type_line(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_string());
    }
}

/// A compact human digest for `--timings`: every counter and gauge, and
/// each histogram's count/mean/max. Deterministically sorted; intended
/// for stderr.
pub fn human_summary(report: &ObsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs: {} spans ({} dropped) | {} counters | {} gauges | {} histograms",
        report.spans.len(),
        report.dropped_spans,
        report.metrics.counters.len(),
        report.metrics.gauges.len(),
        report.metrics.histograms.len(),
    );
    for (key, value) in &report.metrics.counters {
        let _ = writeln!(out, "  counter {key} = {value}");
    }
    for (key, value) in &report.metrics.gauges {
        let _ = writeln!(out, "  gauge   {key} = {value:.3}");
    }
    for (key, hist) in &report.metrics.histograms {
        let mean = if hist.count == 0 { 0.0 } else { hist.sum_ms / hist.count as f64 };
        let _ = writeln!(
            out,
            "  hist    {key}: count {} | mean {:.3}ms | min {:.3}ms | max {:.3}ms",
            hist.count, mean, hist.min_ms, hist.max_ms,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample_report() -> ObsReport {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::drain();
        {
            let _root = crate::span!("sink.root");
            let _child = crate::span!("sink.child", idx = 1);
            crate::add("sink.counter", 3);
            crate::add_l("sink.labeled", "shard", "2", 1);
            crate::gauge("sink.gauge", 1.5);
            crate::observe_ms_l("sink.lat_ms", "report", "victims", 0.7);
            crate::observe_ms_l("sink.lat_ms", "report", "victims", 2000.0);
        }
        crate::set_enabled(false);
        crate::drain()
    }

    #[test]
    fn jsonl_lines_parse_with_stable_keys() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_trace_jsonl(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + report.spans.len());

        let meta = parse(lines[0]).unwrap();
        let meta = meta.as_obj().unwrap();
        assert_eq!(meta["type"].as_str(), Some("meta"));
        assert_eq!(meta["version"].as_num(), Some(1.0));
        assert_eq!(meta["spans"].as_num(), Some(report.spans.len() as f64));
        assert_eq!(meta["dropped_spans"].as_num(), Some(0.0));

        for line in &lines[1..] {
            let span = parse(line).unwrap();
            let span = span.as_obj().unwrap();
            // The pinned JSONL span schema: exactly these keys.
            let keys: Vec<&str> = span.keys().map(String::as_str).collect();
            assert_eq!(
                keys,
                ["dur_ns", "id", "labels", "name", "parent", "start_ns", "thread", "type"],
            );
            assert_eq!(span["type"].as_str(), Some("span"));
            assert!(matches!(span["parent"], Value::Num(_) | Value::Null));
            assert!(span["dur_ns"].as_num().is_some());
        }
    }

    #[test]
    fn summary_json_is_valid_and_complete() {
        let report = sample_report();
        let doc = parse(&summary_json(&report)).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["version"].as_num(), Some(1.0));
        assert_eq!(obj["counters"].as_obj().unwrap()["sink.counter"].as_num(), Some(3.0));
        assert_eq!(
            obj["counters"].as_obj().unwrap()["sink.labeled{shard=2}"].as_num(),
            Some(1.0)
        );
        assert_eq!(obj["gauges"].as_obj().unwrap()["sink.gauge"].as_num(), Some(1.5));
        let hist =
            obj["histograms"].as_obj().unwrap()["sink.lat_ms{report=victims}"].as_obj().unwrap();
        assert_eq!(hist["count"].as_num(), Some(2.0));
        assert_eq!(hist["overflow"].as_num(), Some(1.0));
        assert_eq!(
            hist["buckets"].as_arr().unwrap().len(),
            crate::MS_BUCKETS.len(),
            "every fixed bucket is always present"
        );
        // Percentile estimates: 0.7ms lands in the (0.5, 1.0] bucket, so
        // the interpolated median is the bucket's upper bound; the
        // overflowing 2000ms observation saturates p95 at max_ms.
        assert_eq!(hist["p50_ms"].as_num(), Some(1.0));
        assert_eq!(hist["p95_ms"].as_num(), Some(2000.0));
    }

    #[test]
    fn summary_json_reports_slot_and_eviction_accounting() {
        let mut report = sample_report();
        report.evicted_total = 17;
        report.thread_slots = 3;
        let doc = parse(&summary_json(&report)).unwrap();
        let spans = doc.as_obj().unwrap()["spans"].as_obj().unwrap();
        assert_eq!(spans["recorded"].as_num(), Some(report.spans.len() as f64));
        assert_eq!(spans["dropped"].as_num(), Some(0.0));
        assert_eq!(spans["evicted_total"].as_num(), Some(17.0));
        assert_eq!(spans["thread_slots"].as_num(), Some(3.0));
    }

    #[test]
    fn metrics_json_is_single_line_and_parses(){
        let report = sample_report();
        let rendered = metrics_json(&report.metrics);
        assert!(!rendered.contains('\n'), "JSONL-embeddable");
        let doc = parse(&rendered).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["counters"].as_obj().unwrap()["sink.counter"].as_num(), Some(3.0));
        assert_eq!(obj["gauges"].as_obj().unwrap()["sink.gauge"].as_num(), Some(1.5));
        let hist =
            obj["histograms"].as_obj().unwrap()["sink.lat_ms{report=victims}"].as_obj().unwrap();
        assert_eq!(hist["count"].as_num(), Some(2.0));
        assert_eq!(hist["overflow"].as_num(), Some(1.0));
        assert!(hist["p99_ms"].as_num().is_some());
        assert!(!hist.contains_key("buckets"), "compact: no bucket array");
        let empty = parse(&metrics_json(&MetricsSnapshot::default())).unwrap();
        assert_eq!(empty.as_obj().unwrap()["counters"], Value::Obj(Default::default()));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("sink.weird{path=a\\b\"c\nd}".into(), 1);
        let text = prometheus_text(&metrics);
        assert!(
            text.contains(r#"daas_sink_weird{path="a\\b\"c\nd"} 1"#),
            "backslash, quote and newline escaped, got: {text}"
        );
        assert!(!text.contains('\n') || text.lines().count() == 2, "no raw newline in the value");
    }

    #[test]
    fn empty_report_summary_is_still_valid() {
        let report = ObsReport::default();
        let doc = parse(&summary_json(&report)).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["counters"], Value::Obj(Default::default()));
        assert_eq!(obj["histograms"], Value::Obj(Default::default()));
    }

    #[test]
    fn prometheus_text_shape() {
        let report = sample_report();
        let text = prometheus_text(&report.metrics);
        assert!(text.contains("# TYPE daas_sink_counter counter"));
        assert!(text.contains("daas_sink_counter 3"));
        assert!(text.contains("daas_sink_labeled{shard=\"2\"} 1"));
        assert!(text.contains("# TYPE daas_sink_gauge gauge"));
        assert!(text.contains("# TYPE daas_sink_lat_ms histogram"));
        assert!(text.contains("daas_sink_lat_ms_bucket{report=\"victims\",le=\"+Inf\"} 2"));
        assert!(text.contains("daas_sink_lat_ms_count{report=\"victims\"} 2"));
    }

    #[test]
    fn human_summary_lists_everything() {
        let report = sample_report();
        let digest = human_summary(&report);
        assert!(digest.contains("counter sink.counter = 3"));
        assert!(digest.contains("gauge   sink.gauge = 1.500"));
        assert!(digest.contains("hist    sink.lat_ms{report=victims}: count 2"));
    }
}
