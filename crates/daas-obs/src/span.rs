//! Lightweight spans on a sharded ring buffer.
//!
//! A span is opened with the [`span!`](crate::span!) macro and closed by
//! dropping its [`SpanGuard`]; the completed [`SpanRecord`] lands in one
//! of [`RING_SHARDS`] bounded ring buffers selected by the recording
//! thread's id, so concurrent workers almost never contend on a lock.
//! Each shard evicts its oldest record past [`RING_CAPACITY`] entries
//! (the eviction count is reported at drain, never silently).
//!
//! Parent linkage is a thread-local stack: the innermost open span on
//! the current thread is the parent of the next one opened there. Spans
//! therefore nest per thread; a worker's root spans have no parent (the
//! fork point is visible through the shared thread/start ordering).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::now_ns;

/// Ring-buffer shards; threads pick `thread_id % RING_SHARDS`.
pub const RING_SHARDS: usize = 16;

/// Maximum retained spans per shard before the oldest are evicted.
pub const RING_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (allocation order).
    pub id: u64,
    /// Id of the innermost span open on the same thread at begin time.
    pub parent: Option<u64>,
    /// Dense observability thread id (allocation order, not the OS id).
    pub thread: u64,
    /// Span name (`stage.object` by convention).
    pub name: &'static str,
    /// Pre-formatted `key=value` label pairs, comma-separated ("" if none).
    pub labels: String,
    /// Nanoseconds from the recorder epoch to span begin.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

struct RingShard {
    buf: VecDeque<SpanRecord>,
    dropped: u64,
}

static RINGS: [Mutex<Option<RingShard>>; RING_SHARDS] =
    [const { Mutex::new(None) }; RING_SHARDS];

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Spans evicted over the whole process lifetime. Unlike the per-drain
/// `dropped` count this is **never reset** — the run summary reports it
/// so eviction pressure stays visible even across interval snapshots
/// and multiple drains.
static EVICTED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Cumulative ring-buffer evictions since process start (never reset).
pub fn evicted_total() -> u64 {
    EVICTED_TOTAL.load(Ordering::Relaxed)
}

thread_local! {
    /// Dense per-thread id, assigned on first use.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread (parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Open-span state carried by an enabled guard.
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    thread: u64,
    name: &'static str,
    labels: String,
    start_ns: u64,
    begun: Instant,
}

/// RAII span handle. Created by the [`span!`](crate::span!) macro:
/// either a live span (recorder enabled at open) or an inert no-op.
#[must_use = "a span measures the scope it is bound to; bind it to a local"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// An inert guard: dropping it does nothing.
    #[inline]
    pub fn disabled() -> Self {
        SpanGuard(None)
    }

    /// Opens a live span (the macro calls this only when the recorder is
    /// enabled). `labels` is a pre-formatted `k=v,k=v` string.
    pub fn begin(name: &'static str, labels: String) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let thread = THREAD_ID.with(|t| *t);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        SpanGuard(Some(ActiveSpan {
            id,
            parent,
            thread,
            name,
            labels,
            start_ns: now_ns(),
            begun: Instant::now(),
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.0.take() else { return };
        let dur_ns = span.begun.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are scoped values, so drops nest; truncate rather
            // than pop defensively in case a guard was leaked.
            if let Some(pos) = stack.iter().rposition(|&id| id == span.id) {
                stack.truncate(pos);
            }
        });
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            thread: span.thread,
            name: span.name,
            labels: span.labels,
            start_ns: span.start_ns,
            dur_ns,
        };
        let shard = &RINGS[(span.thread as usize) % RING_SHARDS];
        let mut guard = shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let ring = guard.get_or_insert_with(|| RingShard {
            buf: VecDeque::with_capacity(256),
            dropped: 0,
        });
        if ring.buf.len() >= RING_CAPACITY {
            ring.buf.pop_front();
            ring.dropped += 1;
            EVICTED_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(record);
    }
}

/// Takes every recorded span (sorted by `(start_ns, id)`) plus the
/// total number evicted, clearing the ring buffers.
pub(crate) fn drain_spans() -> (Vec<SpanRecord>, u64) {
    let mut spans = Vec::new();
    let mut dropped = 0;
    for shard in &RINGS {
        let mut guard = shard.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(ring) = guard.as_mut() {
            spans.extend(ring.buf.drain(..));
            dropped += ring.dropped;
            ring.dropped = 0;
        }
    }
    spans.sort_by_key(|s| (s.start_ns, s.id));
    (spans, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_spans_share_a_parent() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::drain();
        {
            let _root = crate::span!("test.root");
            {
                let _a = crate::span!("test.child", which = "a");
            }
            {
                let _b = crate::span!("test.child", which = "b");
            }
        }
        crate::set_enabled(false);
        let (spans, dropped) = drain_spans();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "test.root").unwrap();
        let children: Vec<_> = spans.iter().filter(|s| s.name == "test.child").collect();
        assert_eq!(children.len(), 2);
        for child in &children {
            assert_eq!(child.parent, Some(root.id));
        }
        assert_ne!(children[0].labels, children[1].labels);
    }

    #[test]
    fn cross_thread_spans_carry_distinct_thread_ids() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::drain();
        let main_thread = THREAD_ID.with(|t| *t);
        std::thread::scope(|scope| {
            for i in 0..4 {
                scope.spawn(move || {
                    let _span = crate::span!("test.worker", worker = i);
                });
            }
        });
        crate::set_enabled(false);
        let (spans, _) = drain_spans();
        assert_eq!(spans.len(), 4);
        let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4, "each worker records under its own thread id");
        assert!(spans.iter().all(|s| s.thread != main_thread));
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn ring_eviction_is_counted_not_silent() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::drain();
        // All spans from one thread land in one shard: overflow it.
        for i in 0..(RING_CAPACITY + 10) {
            let _span = crate::span!("test.flood", i = i);
        }
        crate::set_enabled(false);
        let (spans, dropped) = drain_spans();
        assert_eq!(spans.len(), RING_CAPACITY);
        assert_eq!(dropped, 10);
        // The *oldest* were evicted: the retained window is the tail.
        assert_eq!(spans[0].labels, "i=10");
    }
}
