//! A minimal JSON value model: enough to emit the sinks' output by hand
//! (string escaping, float formatting) and to parse it back for schema
//! validation and the JSONL-stability tests — without pulling a serde
//! `Value` the shimmed `serde_json` does not provide.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep sorted keys (`BTreeMap`), which is
/// exactly what the deterministic sinks emit anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The JSON type name (`object`, `array`, `string`, `number`,
    /// `boolean`, `null`) — the vocabulary the metrics schema uses.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats `v` as a JSON number: integral values without a fraction,
/// everything else via `{:?}` (shortest round-trip), non-finite as
/// `null` (JSON has no NaN/Inf).
pub fn fmt_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:?}");
    }
}

/// Parses one JSON document. Returns the value and errors on trailing
/// garbage (other than whitespace).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched:
                // find the char boundary via the original str.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let value = parse(doc).unwrap();
        let obj = value.as_obj().unwrap();
        let a = obj["a"].as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[2].as_num(), Some(-300.0));
        let b = obj["b"].as_obj().unwrap();
        assert_eq!(b["c"].as_str(), Some("x\ny"));
        assert_eq!(b["d"], Value::Bool(true));
        assert_eq!(b["e"], Value::Null);
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let mut doc = String::new();
        escape_into(&mut doc, nasty);
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn number_formatting() {
        let mut out = String::new();
        fmt_num(&mut out, 3.0);
        out.push(' ');
        fmt_num(&mut out, 0.25);
        out.push(' ');
        fmt_num(&mut out, f64::NAN);
        assert_eq!(out, "3 0.25 null");
    }
}
