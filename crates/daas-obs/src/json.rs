//! A minimal JSON value model: enough to emit the sinks' output by hand
//! (string escaping, float formatting) and to parse it back for schema
//! validation and the JSONL-stability tests — without pulling a serde
//! `Value` the shimmed `serde_json` does not provide.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep sorted keys (`BTreeMap`), which is
/// exactly what the deterministic sinks emit anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The JSON type name (`object`, `array`, `string`, `number`,
    /// `boolean`, `null`) — the vocabulary the metrics schema uses.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes) into `out`.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats `v` as a JSON number: integral values without a fraction,
/// everything else via `{:?}` (shortest round-trip), non-finite as
/// `null` (JSON has no NaN/Inf).
pub fn fmt_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v:?}");
    }
}

/// Parses one JSON document. Returns the value and errors on trailing
/// garbage (other than whitespace).
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched:
                // find the char boundary via the original str.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

/// Validates `doc` against `schema`, returning human-readable errors
/// with their JSON paths (empty = conforms). The schema dialect is the
/// JSON-Schema subset the repo's checked-in schemas use: `type`,
/// `required`, `properties`, `additionalProperties`, `items` and
/// `minItems` — enough to pin key presence and value types without an
/// external validator crate. An empty schema object `{}` matches any
/// value (used for union-typed fields). Shared by the `obs_validate`
/// and `scenario_validate` CI gates.
pub fn validate_schema(schema: &Value, doc: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(schema, doc, "$", &mut errors);
    errors
}

/// Recursively checks `doc` against `schema`, appending errors.
fn validate_at(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    let Some(schema) = schema.as_obj() else {
        errors.push(format!("{path}: schema node is not an object"));
        return;
    };
    if let Some(expected) = schema.get("type").and_then(Value::as_str) {
        let actual = doc.type_name();
        let matches = match expected {
            "integer" => doc.as_num().is_some_and(|n| n == n.trunc()),
            other => actual == other,
        };
        if !matches {
            errors.push(format!("{path}: expected {expected}, got {actual}"));
            return;
        }
    }
    if let Some(required) = schema.get("required").and_then(Value::as_arr) {
        if let Some(obj) = doc.as_obj() {
            for key in required.iter().filter_map(Value::as_str) {
                if !obj.contains_key(key) {
                    errors.push(format!("{path}: missing required key \"{key}\""));
                }
            }
        }
    }
    if let (Some(properties), Some(obj)) =
        (schema.get("properties").and_then(Value::as_obj), doc.as_obj())
    {
        for (key, sub_schema) in properties {
            if let Some(sub_doc) = obj.get(key) {
                validate_at(sub_schema, sub_doc, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let (Some(additional), Some(obj)) = (schema.get("additionalProperties"), doc.as_obj()) {
        if additional.as_obj().is_some() {
            let declared: Vec<&str> = schema
                .get("properties")
                .and_then(Value::as_obj)
                .map(|p| p.keys().map(String::as_str).collect())
                .unwrap_or_default();
            for (key, sub_doc) in obj {
                if !declared.contains(&key.as_str()) {
                    validate_at(additional, sub_doc, &format!("{path}.{key}"), errors);
                }
            }
        }
    }
    if let (Some(items), Some(arr)) = (schema.get("items"), doc.as_arr()) {
        for (i, item) in arr.iter().enumerate() {
            validate_at(items, item, &format!("{path}[{i}]"), errors);
        }
    }
    if let (Some(min), Some(arr)) = (schema.get("minItems").and_then(Value::as_num), doc.as_arr())
    {
        if (arr.len() as f64) < min {
            errors.push(format!("{path}: fewer than {min} items ({})", arr.len()));
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let value = parse(doc).unwrap();
        let obj = value.as_obj().unwrap();
        let a = obj["a"].as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[2].as_num(), Some(-300.0));
        let b = obj["b"].as_obj().unwrap();
        assert_eq!(b["c"].as_str(), Some("x\ny"));
        assert_eq!(b["d"], Value::Bool(true));
        assert_eq!(b["e"], Value::Null);
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f→g";
        let mut doc = String::new();
        escape_into(&mut doc, nasty);
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn schema_validation_subset() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["name", "count"],
                "properties": {
                    "name": {"type": "string"},
                    "count": {"type": "integer"},
                    "tags": {"type": "array", "minItems": 1, "items": {"type": "string"}},
                    "anything": {}
                }
            }"#,
        )
        .unwrap();
        let good =
            parse(r#"{"name": "x", "count": 3, "tags": ["a"], "anything": [1, {"k": null}]}"#)
                .unwrap();
        assert!(validate_schema(&schema, &good).is_empty());

        let bad = parse(r#"{"name": 5, "tags": []}"#).unwrap();
        let errors = validate_schema(&schema, &bad);
        assert!(errors.iter().any(|e| e.contains("missing required key \"count\"")));
        assert!(errors.iter().any(|e| e.contains("$.name: expected string")));
        assert!(errors.iter().any(|e| e.contains("$.tags: fewer than 1")));
    }

    #[test]
    fn schema_additional_properties() {
        let schema = parse(
            r#"{"type": "object", "additionalProperties": {"type": "number"}}"#,
        )
        .unwrap();
        assert!(validate_schema(&schema, &parse(r#"{"a": 1, "b": 2.5}"#).unwrap()).is_empty());
        let errors = validate_schema(&schema, &parse(r#"{"a": "no"}"#).unwrap());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].starts_with("$.a"));
    }

    #[test]
    fn number_formatting() {
        let mut out = String::new();
        fmt_num(&mut out, 3.0);
        out.push(' ');
        fmt_num(&mut out, 0.25);
        out.push(' ');
        fmt_num(&mut out, f64::NAN);
        assert_eq!(out, "3 0.25 null");
    }
}
