//! Zero-cost-when-off observability for the daas-lab pipeline.
//!
//! The layer is compiled into every hot-path crate but **disabled by
//! default**: each instrumentation site performs exactly one relaxed
//! atomic load ([`enabled`]) and bails out, so the pipeline's artifacts
//! and schedules are untouched — equivalence suites pass with the
//! recorder on or off, and `cargo bench -p daas-bench --bench
//! obs_overhead` tracks the residual cost of the disabled path.
//!
//! Three pieces (DESIGN.md §11):
//!
//! * **Spans** ([`span!`]) — named regions with monotonic start/duration
//!   timing, thread id and parent linkage, recorded into a lock-cheap
//!   sharded ring buffer ([`span`] module). Drained as JSONL.
//! * **Metrics** ([`metrics`]) — typed counters, gauges and fixed-bucket
//!   histograms, aggregated per thread and merged at drain (merging is
//!   commutative, so the drained snapshot is independent of the thread
//!   schedule).
//! * **Sinks** ([`sink`]) — a JSONL trace log, a Prometheus text
//!   exposition, a JSON run summary (validated in CI against
//!   `schemas/metrics_summary.schema.json`) and the human-readable
//!   `--timings` digest.
//!
//! Naming convention: `stage.object.event{label}` — e.g.
//! `cache.classify.hit`, `live.window.update_ms{stage=detect}`,
//! `measure.report_ms{report=victims}`. `_ms` suffixes mark duration
//! histograms on the shared [`metrics::MS_BUCKETS`] bounds.
//!
//! The recorder is process-global. [`drain`] flushes the calling
//! thread's local aggregates plus everything worker threads flushed on
//! exit (crossbeam-scoped workers always exit — and therefore flush —
//! before their scope returns), then clears all state. Instrumentation
//! never feeds back into the pipeline: enabling it cannot change any
//! artifact, only record what happened.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod rolling;
pub mod sink;
pub mod slo;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use metrics::{
    add, add_l, gauge, gauge_l, inc, observe_ms, observe_ms_l, HistogramSnapshot,
    MetricsSnapshot, MS_BUCKETS,
};
pub use rolling::{RollingWindow, WindowView};
pub use sink::{human_summary, metrics_json, prometheus_text, summary_json, write_trace_jsonl};
pub use slo::{SloEvaluation, SloOutcome, SloRule, SloSpec, SloStat, SloVerdict};
pub use span::{SpanGuard, SpanRecord};

/// Global recorder switch. Default off: every instrumentation site costs
/// one relaxed load of this flag.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic epoch all span timestamps are relative to, fixed at the
/// first call (i.e. when the recorder is first enabled).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether the recorder is on. The single hot-path check: one relaxed
/// atomic load; everything else is behind it.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on or off. Enabling pins the monotonic epoch on
/// first use. Disabling stops new recording; already-recorded state
/// stays until [`drain`].
pub fn set_enabled(on: bool) {
    if on {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Nanoseconds since the recorder epoch.
#[inline]
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Everything recorded since the last drain: the span log (sorted by
/// start time) and the merged metrics snapshot.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Completed spans, sorted by `(start_ns, id)`.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring buffer before this drain.
    pub dropped_spans: u64,
    /// Spans evicted over the whole process lifetime (never reset).
    pub evicted_total: u64,
    /// Per-thread metric slots registered at drain time.
    pub thread_slots: usize,
    /// Merged counters, gauges and histograms.
    pub metrics: MetricsSnapshot,
}

/// Drains and clears all recorded state: the span ring buffer and the
/// metric aggregates (the calling thread's locals are flushed first;
/// worker threads flush on exit, so drain after joining them).
pub fn drain() -> ObsReport {
    let (spans, dropped_spans) = span::drain_spans();
    let (metrics, thread_slots) = metrics::drain_metrics();
    ObsReport { spans, dropped_spans, evicted_total: span::evicted_total(), thread_slots, metrics }
}

/// A **non-destructive** interval snapshot of the merged metrics: every
/// per-thread slot is merged without being reset, so `drain()`'s
/// end-of-run semantics are untouched no matter how many snapshots were
/// taken or on what schedule. This is the live-scrape path (`daas-serve`
/// renders it as Prometheus text); per-slot locking guarantees no
/// histogram is ever torn (`count` == Σ buckets + overflow).
pub fn snapshot() -> MetricsSnapshot {
    metrics::snapshot_metrics().0
}

/// [`snapshot`] plus the number of per-thread metric slots swept.
pub fn snapshot_with_slots() -> (MetricsSnapshot, usize) {
    metrics::snapshot_metrics()
}

/// Starts a span when the recorder is enabled; a no-op guard otherwise.
///
/// ```
/// let _span = daas_obs::span!("snowball.round", round = 3);
/// ```
///
/// Labels are formatted only when the recorder is on, so arbitrary
/// `Display` expressions are free in the disabled case.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            #[allow(unused_mut)]
            let mut __labels = ::std::string::String::new();
            $(
                if !__labels.is_empty() {
                    __labels.push(',');
                }
                __labels.push_str(::std::stringify!($key));
                __labels.push('=');
                __labels.push_str(&::std::string::ToString::to_string(&$value));
            )*
            $crate::SpanGuard::begin($name, __labels)
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Times `f` into the duration histogram `name{label_key=label_val}`
/// when the recorder is enabled; calls `f` directly (no clock read)
/// otherwise.
#[inline]
pub fn timed<T>(name: &'static str, label_key: &'static str, label_val: &str, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    observe_ms_l(name, label_key, label_val, t0.elapsed().as_secs_f64() * 1e3);
    out
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    // The recorder is process-global; unit tests that enable/drain it
    // serialize on this lock so the harness schedule cannot interleave
    // their state.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = test_lock();
        set_enabled(false);
        drain();
        let _span = span!("test.noop", idx = 1);
        inc("test.counter");
        gauge("test.gauge", 1.0);
        observe_ms("test.hist_ms", 5.0);
        let report = drain();
        assert!(report.spans.is_empty());
        assert!(report.metrics.counters.is_empty());
        assert!(report.metrics.gauges.is_empty());
        assert!(report.metrics.histograms.is_empty());
    }

    #[test]
    fn enabled_recorder_captures_span_tree_and_metrics() {
        let _guard = test_lock();
        set_enabled(true);
        drain();
        {
            let _outer = span!("test.outer");
            let _inner = span!("test.inner", step = 2);
            inc("test.hits");
            add("test.hits", 2);
        }
        set_enabled(false);
        let report = drain();
        assert_eq!(report.spans.len(), 2);
        let outer = report.spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = report.spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id), "parent linkage");
        assert_eq!(inner.labels, "step=2");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.thread, inner.thread);
        assert!(outer.start_ns <= inner.start_ns);
        assert_eq!(report.metrics.counters.get("test.hits"), Some(&3));
    }

    #[test]
    fn timed_observes_only_when_enabled() {
        let _guard = test_lock();
        set_enabled(false);
        drain();
        assert_eq!(timed("test.t_ms", "k", "v", || 7), 7);
        assert!(drain().metrics.histograms.is_empty());
        set_enabled(true);
        assert_eq!(timed("test.t_ms", "k", "v", || 7), 7);
        set_enabled(false);
        let report = drain();
        let hist = report.metrics.histograms.get("test.t_ms{k=v}").expect("histogram recorded");
        assert_eq!(hist.count, 1);
    }
}
