//! `obs_validate SCHEMA METRICS_JSON` — validates a `--metrics-out`
//! run summary against the checked-in schema
//! (`schemas/metrics_summary.schema.json`). CI runs this after the
//! scale-0.05 pipeline; exit code 0 means the document conforms.
//!
//! The schema dialect is the JSON-Schema subset the summary needs:
//! `type`, `required`, `properties`, `additionalProperties`, `items`,
//! and `minItems` — enough to pin key presence and value types without
//! an external validator crate.

use std::process::ExitCode;

use daas_obs::json::{parse, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [schema_path, doc_path] = args.as_slice() else {
        eprintln!("usage: obs_validate SCHEMA METRICS_JSON");
        return ExitCode::FAILURE;
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_validate: cannot load schema {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match load(doc_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_validate: cannot load document {doc_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut errors = Vec::new();
    validate(&schema, &doc, "$", &mut errors);
    if errors.is_empty() {
        println!("obs_validate: {doc_path} conforms to {schema_path}");
        ExitCode::SUCCESS
    } else {
        for error in &errors {
            eprintln!("obs_validate: {error}");
        }
        eprintln!("obs_validate: {} error(s) in {doc_path}", errors.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}

/// Recursively checks `doc` against `schema`, appending human-readable
/// errors with their JSON path.
fn validate(schema: &Value, doc: &Value, path: &str, errors: &mut Vec<String>) {
    let Some(schema) = schema.as_obj() else {
        errors.push(format!("{path}: schema node is not an object"));
        return;
    };
    if let Some(expected) = schema.get("type").and_then(Value::as_str) {
        let actual = doc.type_name();
        let matches = match expected {
            "integer" => doc.as_num().is_some_and(|n| n == n.trunc()),
            other => actual == other,
        };
        if !matches {
            errors.push(format!("{path}: expected {expected}, got {actual}"));
            return;
        }
    }
    if let Some(required) = schema.get("required").and_then(Value::as_arr) {
        if let Some(obj) = doc.as_obj() {
            for key in required.iter().filter_map(Value::as_str) {
                if !obj.contains_key(key) {
                    errors.push(format!("{path}: missing required key \"{key}\""));
                }
            }
        }
    }
    if let (Some(properties), Some(obj)) =
        (schema.get("properties").and_then(Value::as_obj), doc.as_obj())
    {
        for (key, sub_schema) in properties {
            if let Some(sub_doc) = obj.get(key) {
                validate(sub_schema, sub_doc, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let (Some(additional), Some(obj)) = (schema.get("additionalProperties"), doc.as_obj()) {
        if additional.as_obj().is_some() {
            let declared: Vec<&str> = schema
                .get("properties")
                .and_then(Value::as_obj)
                .map(|p| p.keys().map(String::as_str).collect())
                .unwrap_or_default();
            for (key, sub_doc) in obj {
                if !declared.contains(&key.as_str()) {
                    validate(additional, sub_doc, &format!("{path}.{key}"), errors);
                }
            }
        }
    }
    if let (Some(items), Some(arr)) = (schema.get("items"), doc.as_arr()) {
        for (i, item) in arr.iter().enumerate() {
            validate(items, item, &format!("{path}[{i}]"), errors);
        }
    }
    if let (Some(min), Some(arr)) =
        (schema.get("minItems").and_then(Value::as_num), doc.as_arr())
    {
        if (arr.len() as f64) < min {
            errors.push(format!("{path}: fewer than {min} items ({})", arr.len()));
        }
    }
}
