//! `obs_validate SCHEMA METRICS_JSON` — validates a `--metrics-out`
//! run summary against the checked-in schema
//! (`schemas/metrics_summary.schema.json`). CI runs this after the
//! scale-0.05 pipeline; exit code 0 means the document conforms.
//!
//! The validation itself lives in [`daas_obs::json::validate_schema`],
//! shared with the `scenario_validate` gate.

use std::process::ExitCode;

use daas_obs::json::{parse, validate_schema, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [schema_path, doc_path] = args.as_slice() else {
        eprintln!("usage: obs_validate SCHEMA METRICS_JSON");
        return ExitCode::FAILURE;
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_validate: cannot load schema {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match load(doc_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_validate: cannot load document {doc_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errors = validate_schema(&schema, &doc);
    if errors.is_empty() {
        println!("obs_validate: {doc_path} conforms to {schema_path}");
        ExitCode::SUCCESS
    } else {
        for error in &errors {
            eprintln!("obs_validate: {error}");
        }
        eprintln!("obs_validate: {} error(s) in {doc_path}", errors.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}
