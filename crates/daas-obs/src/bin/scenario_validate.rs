//! `scenario_validate SCHEMA SCENARIO_DIR` — validates every `*.json`
//! file in the scenario directory against the checked-in scenario
//! schema (`schemas/scenario.schema.json`). CI runs this so a malformed
//! scenario fails the gate before any harness tries to build a world
//! from it; exit code 0 means every file conforms.

use std::process::ExitCode;

use daas_obs::json::{parse, validate_schema, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [schema_path, dir] = args.as_slice() else {
        eprintln!("usage: scenario_validate SCHEMA SCENARIO_DIR");
        return ExitCode::FAILURE;
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("scenario_validate: cannot load schema {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("scenario_validate: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("scenario_validate: no *.json files in {dir}");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for path in &paths {
        let shown = path.display();
        let doc = match load(&path.to_string_lossy()) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("scenario_validate: {shown}: parse error: {e}");
                failures += 1;
                continue;
            }
        };
        let errors = validate_schema(&schema, &doc);
        if errors.is_empty() {
            println!("scenario_validate: {shown} ok");
        } else {
            for error in &errors {
                eprintln!("scenario_validate: {shown}: {error}");
            }
            failures += 1;
        }
    }
    if failures == 0 {
        println!("scenario_validate: {} scenario(s) conform to {schema_path}", paths.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("scenario_validate: {failures} of {} scenario(s) failed", paths.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}
