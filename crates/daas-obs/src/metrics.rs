//! Typed metrics: counters, gauges and fixed-bucket histograms.
//!
//! Every recording call lands in a thread-local slot (one uncontended
//! mutex lock; no cross-thread contention on the hot path). Each slot
//! is also registered in a global list the moment its thread first
//! records, and [`drain_metrics`](crate::metrics) merges directly from
//! that list — so a drain sees every recording that happened before it,
//! regardless of whether the recording thread has fully exited.
//! (Flushing from TLS destructors instead is a trap: `thread::scope`
//! unblocks when a worker's closure returns, *before* its TLS
//! destructors run, so a drain right after the scope could miss the
//! worker's flush.) Merging is commutative and associative per metric
//! type (sum, max, bucket-wise add), which makes the drained snapshot a
//! pure function of the multiset of recording calls: the thread
//! schedule can change *who* held a partial aggregate, never the merged
//! result (asserted by the merge-determinism unit test).
//!
//! Gauges merge by **max**: the pipeline uses them for set-once sizes
//! and stage durations, where the maximum is both deterministic and the
//! value of interest. Duration histograms share one fixed bucket layout
//! ([`MS_BUCKETS`]) so every `_ms` series is comparable across runs and
//! stages.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use crate::enabled;

/// Fixed histogram bucket upper bounds, in milliseconds. Observations
/// above the last bound land in the implicit overflow bucket.
pub const MS_BUCKETS: [f64; 14] =
    [0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0];

/// Metric identity: a static name plus an optional pre-formatted
/// `key=value` label ("" when unlabeled).
type Key = (&'static str, String);

/// One histogram's running aggregate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Histogram {
    /// Per-bucket (non-cumulative) counts, parallel to [`MS_BUCKETS`].
    buckets: [u64; MS_BUCKETS.len()],
    /// Observations above the last bucket bound.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; MS_BUCKETS.len()],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        match MS_BUCKETS.iter().position(|&bound| value <= bound) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One thread's (or the global pending) aggregate.
#[derive(Debug, Default)]
struct Aggregate {
    counters: HashMap<Key, u64>,
    gauges: HashMap<Key, f64>,
    histograms: HashMap<Key, Histogram>,
}

impl Aggregate {
    fn merge_from(&mut self, other: Aggregate) {
        for (key, value) in other.counters {
            *self.counters.entry(key).or_insert(0) += value;
        }
        for (key, value) in other.gauges {
            let slot = self.gauges.entry(key).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(value);
        }
        for (key, hist) in other.histograms {
            self.histograms.entry(key).or_insert_with(Histogram::new).merge(&hist);
        }
    }

    /// Non-consuming merge: the source slot keeps its aggregate (the
    /// interval-snapshot path — [`snapshot_metrics`] must leave every
    /// recording in place for the eventual [`drain_metrics`]).
    fn merge_ref(&mut self, other: &Aggregate) {
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, value) in &other.gauges {
            let slot = self.gauges.entry(key.clone()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(*value);
        }
        for (key, hist) in &other.histograms {
            self.histograms.entry(key.clone()).or_insert_with(Histogram::new).merge(hist);
        }
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// One thread's slot: the registry and the owning thread's TLS share it
/// via `Arc`. The mutex is uncontended except while a drain sweeps.
struct Slot(Mutex<Aggregate>);

/// Every slot ever handed to a recording thread. A slot outlives its
/// thread (the registry keeps it alive), so recordings made by a worker
/// that exited before the drain are still merged; drains prune slots
/// whose thread is gone and whose aggregate has been taken.
static REGISTRY: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Slot> = {
        let slot = Arc::new(Slot(Mutex::new(Aggregate::default())));
        REGISTRY
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(Arc::clone(&slot));
        slot
    };
}

fn with_local(f: impl FnOnce(&mut Aggregate)) {
    // If the TLS slot is already destroyed (thread teardown), the
    // recording is dropped — no pipeline code records there.
    let _ = LOCAL
        .try_with(|slot| f(&mut slot.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())));
}

/// Increments counter `name` by 1. No-op while the recorder is off.
#[inline]
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Adds `n` to counter `name`. No-op while the recorder is off.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|agg| *agg.counters.entry((name, String::new())).or_insert(0) += n);
}

/// Adds `n` to counter `name{label_key=label_val}`.
#[inline]
pub fn add_l(name: &'static str, label_key: &'static str, label_val: &str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    with_local(|agg| {
        *agg.counters.entry((name, format!("{label_key}={label_val}"))).or_insert(0) += n;
    });
}

/// Sets gauge `name` (thread-merge: max). No-op while the recorder is off.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|agg| {
        agg.gauges.insert((name, String::new()), value);
    });
}

/// Sets gauge `name{label_key=label_val}` (thread-merge: max).
#[inline]
pub fn gauge_l(name: &'static str, label_key: &'static str, label_val: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|agg| {
        agg.gauges.insert((name, format!("{label_key}={label_val}")), value);
    });
}

/// Records `value` (milliseconds) into histogram `name`. No-op while
/// the recorder is off.
#[inline]
pub fn observe_ms(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|agg| {
        agg.histograms.entry((name, String::new())).or_insert_with(Histogram::new).observe(value)
    });
}

/// Records `value` (milliseconds) into `name{label_key=label_val}`.
#[inline]
pub fn observe_ms_l(name: &'static str, label_key: &'static str, label_val: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|agg| {
        agg.histograms
            .entry((name, format!("{label_key}={label_val}")))
            .or_insert_with(Histogram::new)
            .observe(value)
    });
}

/// A drained histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (ms).
    pub sum_ms: f64,
    /// Smallest observation (ms).
    pub min_ms: f64,
    /// Largest observation (ms).
    pub max_ms: f64,
    /// `(upper bound ms, non-cumulative count)` per [`MS_BUCKETS`] bucket.
    pub buckets: Vec<(f64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (`0.0..=1.0`) in milliseconds, by linear
    /// interpolation inside the fixed [`MS_BUCKETS`]; `None` when the
    /// histogram is empty. Estimates are clamped to the observed
    /// `[min_ms, max_ms]` range, and ranks falling past the last bound
    /// (the overflow region) saturate at `max_ms` — the same
    /// convention Prometheus' `histogram_quantile` applies to an
    /// upper-bounded histogram.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        let mut lower = 0.0f64;
        for &(bound, n) in &self.buckets {
            if n > 0 {
                if (seen + n) as f64 >= rank {
                    let within = (rank - seen as f64) / n as f64;
                    let est = lower + (bound - lower) * within;
                    return Some(est.clamp(self.min_ms, self.max_ms));
                }
                seen += n;
            }
            lower = bound;
        }
        Some(self.max_ms)
    }
}

/// The merged result of every metric recorded since the last drain.
/// Keys render the naming convention: `name` or `name{key=value}`.
/// `BTreeMap` so iteration — and every sink — is deterministically
/// sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket duration histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when never recorded.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value, if recorded.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }
}

fn render_key((name, label): &Key) -> String {
    if label.is_empty() {
        (*name).to_string()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// Renders a merged aggregate as the sorted public snapshot.
fn to_snapshot(aggregate: &Aggregate) -> MetricsSnapshot {
    if aggregate.is_empty() {
        return MetricsSnapshot::default();
    }
    let mut snapshot = MetricsSnapshot::default();
    for (key, value) in &aggregate.counters {
        snapshot.counters.insert(render_key(key), *value);
    }
    for (key, value) in &aggregate.gauges {
        snapshot.gauges.insert(render_key(key), *value);
    }
    for (key, hist) in &aggregate.histograms {
        snapshot.histograms.insert(
            render_key(key),
            HistogramSnapshot {
                count: hist.count,
                sum_ms: hist.sum,
                min_ms: if hist.count == 0 { 0.0 } else { hist.min },
                max_ms: if hist.count == 0 { 0.0 } else { hist.max },
                buckets: MS_BUCKETS.iter().copied().zip(hist.buckets.iter().copied()).collect(),
                overflow: hist.overflow,
            },
        );
    }
    snapshot
}

/// Takes every registered thread's aggregate and renders the sorted
/// snapshot, plus the slot count swept. Clears everything; slots of
/// exited threads are pruned.
pub(crate) fn drain_metrics() -> (MetricsSnapshot, usize) {
    let mut aggregate = Aggregate::default();
    let slots;
    {
        let mut registry = REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        slots = registry.len();
        registry.retain(|slot| {
            let taken =
                std::mem::take(&mut *slot.0.lock().unwrap_or_else(|p| p.into_inner()));
            aggregate.merge_from(taken);
            // strong_count == 1 means the owning thread's TLS handle is
            // gone; its (now empty) slot can be dropped.
            Arc::strong_count(slot) > 1
        });
    }
    (to_snapshot(&aggregate), slots)
}

/// Merges every registered thread's aggregate **without resetting
/// anything** — the interval-snapshot path behind
/// [`snapshot`](crate::snapshot). A later [`drain_metrics`] still sees
/// every recording, so end-of-run `drain()` summaries are independent
/// of how many snapshots were taken in between.
///
/// Consistency: each per-thread slot is cloned under its own lock, so a
/// histogram can never be torn (its `count` always equals the sum of
/// its bucket counts plus overflow). Across slots the merge is a
/// point-in-time sweep — recordings that land on an unswept slot while
/// the sweep runs appear in the next snapshot.
pub(crate) fn snapshot_metrics() -> (MetricsSnapshot, usize) {
    // Clone the Arc list first so recording threads never wait on the
    // registry lock while slots are being merged.
    let slots: Vec<Arc<Slot>> = REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    let mut aggregate = Aggregate::default();
    for slot in &slots {
        let guard = slot.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        aggregate.merge_ref(&guard);
    }
    (to_snapshot(&aggregate), slots.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn reset() {
        crate::set_enabled(false);
        crate::drain();
    }

    #[test]
    fn histogram_bucketing_boundaries() {
        let mut hist = Histogram::new();
        // On-boundary values land in the bucket they bound (`<=`).
        hist.observe(0.05);
        hist.observe(0.050001);
        hist.observe(1000.0);
        hist.observe(1000.1); // overflow
        hist.observe(0.0); // first bucket
        assert_eq!(hist.buckets[0], 2, "0.0 and 0.05 in the first bucket");
        assert_eq!(hist.buckets[1], 1, "just above a bound falls to the next bucket");
        assert_eq!(hist.buckets[MS_BUCKETS.len() - 1], 1);
        assert_eq!(hist.overflow, 1);
        assert_eq!(hist.count, 5);
        assert_eq!(hist.min, 0.0);
        assert_eq!(hist.max, 1000.1);
    }

    #[test]
    fn quantile_interpolates_clamps_and_saturates() {
        let snap = |values: &[f64]| {
            let mut hist = Histogram::new();
            for &v in values {
                hist.observe(v);
            }
            HistogramSnapshot {
                count: hist.count,
                sum_ms: hist.sum,
                min_ms: hist.min,
                max_ms: hist.max,
                buckets: MS_BUCKETS.iter().copied().zip(hist.buckets.iter().copied()).collect(),
                overflow: hist.overflow,
            }
        };

        let empty = HistogramSnapshot {
            count: 0,
            sum_ms: 0.0,
            min_ms: 0.0,
            max_ms: 0.0,
            buckets: MS_BUCKETS.iter().map(|&b| (b, 0)).collect(),
            overflow: 0,
        };
        assert_eq!(empty.quantile_ms(0.5), None);

        // A single observation: every quantile collapses to it (the
        // interpolated bucket estimate is clamped to [min, max]).
        let one = snap(&[0.7]);
        assert_eq!(one.quantile_ms(0.5), Some(0.7));
        assert_eq!(one.quantile_ms(0.95), Some(0.7));

        // Two buckets of 50: quantile ranks interpolate linearly inside
        // the bucket they land in.
        let mut values = vec![0.3; 50];
        values.extend(std::iter::repeat(2.0).take(50));
        let spread = snap(&values);
        assert_eq!(spread.quantile_ms(0.25), Some(0.375), "mid-bucket interpolation");
        assert_eq!(spread.quantile_ms(0.5), Some(0.5), "bucket upper bound at full rank");

        // Observations past the last bound saturate high quantiles at
        // the observed max.
        let over = snap(&[0.2, 5000.0, 6000.0]);
        assert_eq!(over.quantile_ms(0.99), Some(6000.0));
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0.01, 3.0, 700.0] {
            a.observe(v);
        }
        for v in [0.2, 2000.0] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.overflow, 1);
    }

    #[test]
    fn per_thread_merge_is_deterministic() {
        let _guard = crate::test_lock();
        // The same multiset of recordings, under two very different
        // schedules, drains to the same snapshot.
        let run = |threads: usize| {
            reset();
            crate::set_enabled(true);
            let per_thread = 24 / threads;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            inc("merge.count");
                            add_l("merge.labeled", "shard", "3", 2);
                            gauge("merge.gauge", (t * per_thread + i) as f64);
                            observe_ms("merge.hist_ms", ((t * per_thread + i) % 7) as f64);
                        }
                    });
                }
            });
            crate::set_enabled(false);
            crate::drain().metrics
        };
        let sequential = run(1);
        let parallel = run(8);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.counter("merge.count"), 24);
        assert_eq!(sequential.counter("merge.labeled{shard=3}"), 48);
        assert_eq!(sequential.gauge("merge.gauge"), Some(23.0), "gauges merge by max");
        assert_eq!(sequential.histograms["merge.hist_ms"].count, 24);
    }

    #[test]
    fn drain_right_after_scope_sees_worker_recordings() {
        let _guard = crate::test_lock();
        // `thread::scope` unblocks when a worker's closure returns,
        // which may be before the worker thread has fully exited — a
        // drain on the very next line must still see its recordings.
        for _ in 0..50 {
            reset();
            crate::set_enabled(true);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| inc("scope.count"));
                }
            });
            crate::set_enabled(false);
            assert_eq!(crate::drain().metrics.counter("scope.count"), 4);
        }
    }

    #[test]
    fn drain_clears_state() {
        let _guard = crate::test_lock();
        reset();
        crate::set_enabled(true);
        inc("drain.once");
        crate::set_enabled(false);
        assert_eq!(crate::drain().metrics.counter("drain.once"), 1);
        assert!(crate::drain().metrics.counters.is_empty(), "second drain is empty");
    }

    #[test]
    fn snapshot_is_non_destructive_and_preserves_drain() {
        let _guard = crate::test_lock();
        reset();
        crate::set_enabled(true);
        add("snap.c", 3);
        gauge("snap.g", 2.0);
        observe_ms("snap.h_ms", 1.5);

        // Two consecutive snapshots see the same merged state.
        let (first, slots) = snapshot_metrics();
        assert!(slots >= 1);
        assert_eq!(first.counter("snap.c"), 3);
        assert_eq!(first.gauge("snap.g"), Some(2.0));
        assert_eq!(first.histograms["snap.h_ms"].count, 1);
        let (second, _) = snapshot_metrics();
        assert_eq!(first, second, "snapshot must not consume slot state");

        // Recording continues to accumulate on top.
        add("snap.c", 4);
        let (third, _) = snapshot_metrics();
        assert_eq!(third.counter("snap.c"), 7);

        // The eventual drain sees everything, exactly as if no snapshot
        // had ever been taken.
        crate::set_enabled(false);
        let drained = crate::drain().metrics;
        assert_eq!(drained.counter("snap.c"), 7);
        assert_eq!(drained.histograms["snap.h_ms"].count, 1);
        assert!(crate::drain().metrics.counters.is_empty(), "drain still clears");
    }

    #[test]
    fn drain_after_snapshots_matches_drain_without() {
        let _guard = crate::test_lock();
        // The same deterministic multiset of recordings drains to the
        // same snapshot whether or not interval snapshots were taken —
        // the end-of-run summary is schedule- and scrape-independent.
        let run = |snapshots: bool| {
            reset();
            crate::set_enabled(true);
            std::thread::scope(|scope| {
                for t in 0..4 {
                    scope.spawn(move || {
                        for i in 0..8 {
                            add("purity.count", t + 1);
                            observe_ms("purity.h_ms", ((t * 8 + i) % 5) as f64);
                            if snapshots && i % 3 == 0 {
                                let _ = snapshot_metrics();
                            }
                        }
                    });
                }
                if snapshots {
                    for _ in 0..16 {
                        let _ = snapshot_metrics();
                    }
                }
            });
            crate::set_enabled(false);
            crate::drain().metrics
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn concurrent_snapshots_never_see_torn_histograms() {
        let _guard = crate::test_lock();
        reset();
        crate::set_enabled(true);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let stop = &stop;
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        observe_ms("torn.h_ms", ((t * 31 + i) % 13) as f64);
                        add("torn.c", 1);
                        i += 1;
                    }
                });
            }
            for _ in 0..200 {
                let (snap, _) = snapshot_metrics();
                if let Some(hist) = snap.histograms.get("torn.h_ms") {
                    let bucket_total: u64 =
                        hist.buckets.iter().map(|&(_, n)| n).sum::<u64>() + hist.overflow;
                    assert_eq!(
                        hist.count, bucket_total,
                        "histogram torn: count {} vs buckets {}",
                        hist.count, bucket_total
                    );
                    assert!(hist.sum_ms >= 0.0);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        crate::set_enabled(false);
        let drained = crate::drain().metrics;
        let hist = &drained.histograms["torn.h_ms"];
        assert_eq!(hist.count, drained.counter("torn.c"), "drain saw every recording");
    }

    #[test]
    fn snapshot_accessors() {
        let _guard = crate::test_lock();
        reset();
        crate::set_enabled(true);
        add("acc.c", 5);
        gauge_l("acc.g", "k", "v", 2.5);
        crate::set_enabled(false);
        let snap = crate::drain().metrics;
        assert_eq!(snap.counter("acc.c"), 5);
        assert_eq!(snap.counter("acc.missing"), 0);
        assert_eq!(snap.gauge("acc.g{k=v}"), Some(2.5));
        assert_eq!(snap.gauge("acc.g"), None);
    }
}
