//! A small SLO evaluator: per-metric threshold rules applied to a
//! [`MetricsSnapshot`], yielding ok / degraded / violated verdicts.
//!
//! A spec is a list of [`SloRule`]s. Each rule names a metric key
//! (exactly as it appears in the snapshot, e.g.
//! `serve.snapshot.age_ms`, or with a single-label wildcard
//! `serve.query_ms{endpoint=*}` that expands to every matching key), a
//! statistic to extract ([`SloStat`]) and two ascending thresholds:
//! above `degraded` the verdict is [`SloVerdict::Degraded`], above
//! `violated` it is [`SloVerdict::Violated`]. A metric absent from the
//! snapshot is vacuously [`SloVerdict::Ok`] — a daemon that has served
//! no queries yet has not missed any latency target.
//!
//! Specs load from JSON (`SloSpec::from_json`, parsed with the crate's
//! own [`json`](crate::json) module — no serde):
//!
//! ```json
//! {"version": 1, "rules": [
//!   {"metric": "serve.query_ms{endpoint=*}", "stat": "p95",
//!    "degraded": 5.0, "violated": 50.0}
//! ]}
//! ```
//!
//! Evaluation is pure arithmetic over an immutable snapshot: it never
//! records anything, so wiring SLOs into a live scrape path cannot
//! perturb drained artifacts.

use std::fmt;

use crate::json::{self, escape_into, fmt_num, Value};
use crate::metrics::MetricsSnapshot;

/// The statistic a rule extracts from its metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloStat {
    /// Median estimate of a histogram (interpolated bucket quantile).
    P50,
    /// 95th-percentile estimate of a histogram.
    P95,
    /// 99th-percentile estimate of a histogram.
    P99,
    /// Maximum observed value of a histogram.
    Max,
    /// Mean (`sum / count`) of a histogram.
    Mean,
    /// Total observation count of a histogram.
    Count,
    /// The raw value of a counter or gauge.
    Value,
}

impl SloStat {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "p50" => SloStat::P50,
            "p95" => SloStat::P95,
            "p99" => SloStat::P99,
            "max" => SloStat::Max,
            "mean" => SloStat::Mean,
            "count" => SloStat::Count,
            "value" => SloStat::Value,
            other => return Err(format!("unknown stat \"{other}\"")),
        })
    }

    /// The spec-file spelling of this statistic.
    pub fn name(self) -> &'static str {
        match self {
            SloStat::P50 => "p50",
            SloStat::P95 => "p95",
            SloStat::P99 => "p99",
            SloStat::Max => "max",
            SloStat::Mean => "mean",
            SloStat::Count => "count",
            SloStat::Value => "value",
        }
    }
}

impl fmt::Display for SloStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Snapshot key, or a `name{key=*}` single-label wildcard.
    pub metric: String,
    /// Statistic to extract.
    pub stat: SloStat,
    /// Above this the verdict is `Degraded`.
    pub degraded: f64,
    /// Above this the verdict is `Violated` (must be ≥ `degraded`).
    pub violated: f64,
}

/// Verdict severity, ordered `Ok < Degraded < Violated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SloVerdict {
    /// Within the degraded threshold (or the metric is absent).
    #[default]
    Ok,
    /// Above the degraded threshold but within the violated one.
    Degraded,
    /// Above the violated threshold.
    Violated,
}

impl SloVerdict {
    /// Lower-case label (`ok` / `degraded` / `violated`).
    pub fn name(self) -> &'static str {
        match self {
            SloVerdict::Ok => "ok",
            SloVerdict::Degraded => "degraded",
            SloVerdict::Violated => "violated",
        }
    }
}

impl fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One evaluated (rule × metric) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SloOutcome {
    /// The concrete snapshot key (wildcards already expanded).
    pub metric: String,
    /// The statistic that was extracted.
    pub stat: SloStat,
    /// The extracted value; `None` when the metric was absent.
    pub value: Option<f64>,
    /// The degraded threshold the rule carried.
    pub degraded: f64,
    /// The violated threshold the rule carried.
    pub violated: f64,
    /// The verdict for this pair.
    pub verdict: SloVerdict,
}

/// The result of evaluating a spec against one snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloEvaluation {
    /// One outcome per (rule × matched metric), spec order then key
    /// order within a wildcard.
    pub outcomes: Vec<SloOutcome>,
}

impl SloEvaluation {
    /// The most severe verdict across all outcomes (`Ok` when empty).
    pub fn worst(&self) -> SloVerdict {
        self.outcomes.iter().map(|o| o.verdict).max().unwrap_or_default()
    }

    /// Renders the evaluation as a JSON array of outcome objects
    /// (deterministic; used by the daemon's health endpoint).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.outcomes.len() * 96);
        out.push('[');
        for (i, outcome) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"metric\":");
            escape_into(&mut out, &outcome.metric);
            out.push_str(",\"stat\":\"");
            out.push_str(outcome.stat.name());
            out.push_str("\",\"value\":");
            match outcome.value {
                Some(v) => fmt_num(&mut out, v),
                None => out.push_str("null"),
            }
            out.push_str(",\"degraded\":");
            fmt_num(&mut out, outcome.degraded);
            out.push_str(",\"violated\":");
            fmt_num(&mut out, outcome.violated);
            out.push_str(",\"verdict\":\"");
            out.push_str(outcome.verdict.name());
            out.push_str("\"}");
        }
        out.push(']');
        out
    }
}

/// A parsed SLO spec: an ordered list of rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloSpec {
    /// The rules, applied in order.
    pub rules: Vec<SloRule>,
}

impl SloSpec {
    /// Parses the JSON spec format shown in the module docs.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let obj = doc.as_obj().ok_or("spec root must be an object")?;
        match obj.get("version").and_then(Value::as_num) {
            Some(v) if v == 1.0 => {}
            Some(v) => return Err(format!("unsupported spec version {v}")),
            None => return Err("spec missing \"version\"".into()),
        }
        let rules_json = obj
            .get("rules")
            .and_then(Value::as_arr)
            .ok_or("spec missing \"rules\" array")?;
        let mut rules = Vec::with_capacity(rules_json.len());
        for (i, rule) in rules_json.iter().enumerate() {
            let rule = rule.as_obj().ok_or_else(|| format!("rules[{i}] is not an object"))?;
            let metric = rule
                .get("metric")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("rules[{i}] missing \"metric\""))?
                .to_string();
            let stat = SloStat::parse(
                rule.get("stat")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("rules[{i}] missing \"stat\""))?,
            )
            .map_err(|e| format!("rules[{i}]: {e}"))?;
            let degraded = rule
                .get("degraded")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("rules[{i}] missing \"degraded\""))?;
            let violated = rule
                .get("violated")
                .and_then(Value::as_num)
                .ok_or_else(|| format!("rules[{i}] missing \"violated\""))?;
            if violated < degraded {
                return Err(format!(
                    "rules[{i}]: violated ({violated}) below degraded ({degraded})"
                ));
            }
            rules.push(SloRule { metric, stat, degraded, violated });
        }
        Ok(SloSpec { rules })
    }

    /// The built-in defaults `daas-serve` uses when no `--slo` file is
    /// given: snapshot staleness, ingest lag and per-endpoint query
    /// latency (the three metrics the daemon is contracted to expose).
    pub fn serve_defaults() -> Self {
        SloSpec {
            rules: vec![
                SloRule {
                    metric: "serve.snapshot.age_ms".into(),
                    stat: SloStat::Value,
                    degraded: 30_000.0,
                    violated: 120_000.0,
                },
                SloRule {
                    metric: "serve.ingest.lag_windows".into(),
                    stat: SloStat::Value,
                    degraded: 4.0,
                    violated: 32.0,
                },
                SloRule {
                    metric: "serve.query_ms{endpoint=*}".into(),
                    stat: SloStat::P95,
                    degraded: 25.0,
                    violated: 250.0,
                },
            ],
        }
    }

    /// Evaluates every rule against `metrics`. Wildcard rules expand to
    /// one outcome per matching key; non-matching wildcards and absent
    /// exact keys produce a single vacuous `Ok` outcome so the rule's
    /// presence stays visible.
    pub fn evaluate(&self, metrics: &MetricsSnapshot) -> SloEvaluation {
        let mut outcomes = Vec::with_capacity(self.rules.len());
        for rule in &self.rules {
            let mut matched = false;
            if let Some(prefix) = wildcard_prefix(&rule.metric) {
                for key in metric_keys(metrics, rule.stat) {
                    if key.starts_with(prefix) && key.ends_with('}') {
                        outcomes.push(judge(rule, key.clone(), extract(metrics, key, rule.stat)));
                        matched = true;
                    }
                }
            } else if let Some(value) = extract(metrics, &rule.metric, rule.stat) {
                outcomes.push(judge(rule, rule.metric.clone(), Some(value)));
                matched = true;
            }
            if !matched {
                outcomes.push(judge(rule, rule.metric.clone(), None));
            }
        }
        SloEvaluation { outcomes }
    }
}

/// `name{key=*}` → `name{key=`; anything else is an exact key.
fn wildcard_prefix(metric: &str) -> Option<&str> {
    metric.strip_suffix("*}").filter(|p| p.contains('{') && p.ends_with('='))
}

/// The snapshot key families a stat can apply to, in deterministic
/// (sorted-map) order.
fn metric_keys(metrics: &MetricsSnapshot, stat: SloStat) -> Box<dyn Iterator<Item = &String> + '_> {
    match stat {
        SloStat::Value => Box::new(metrics.counters.keys().chain(metrics.gauges.keys())),
        _ => Box::new(metrics.histograms.keys()),
    }
}

/// Extracts `stat` for `key`, if the metric exists in the right family.
fn extract(metrics: &MetricsSnapshot, key: &str, stat: SloStat) -> Option<f64> {
    match stat {
        SloStat::Value => metrics
            .counters
            .get(key)
            .map(|&v| v as f64)
            .or_else(|| metrics.gauges.get(key).copied()),
        _ => {
            let hist = metrics.histograms.get(key)?;
            match stat {
                SloStat::P50 => hist.quantile_ms(0.5),
                SloStat::P95 => hist.quantile_ms(0.95),
                SloStat::P99 => hist.quantile_ms(0.99),
                SloStat::Max => Some(hist.max_ms),
                SloStat::Mean => {
                    (hist.count > 0).then(|| hist.sum_ms / hist.count as f64)
                }
                SloStat::Count => Some(hist.count as f64),
                SloStat::Value => unreachable!(),
            }
        }
    }
}

fn judge(rule: &SloRule, metric: String, value: Option<f64>) -> SloOutcome {
    let verdict = match value {
        Some(v) if v > rule.violated => SloVerdict::Violated,
        Some(v) if v > rule.degraded => SloVerdict::Degraded,
        _ => SloVerdict::Ok,
    };
    SloOutcome {
        metric,
        stat: rule.stat,
        value,
        degraded: rule.degraded,
        violated: rule.violated,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MS_BUCKETS};

    fn snapshot() -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        out.counters.insert("serve.queries".into(), 12);
        out.gauges.insert("serve.snapshot.age_ms".into(), 45_000.0);
        out.gauges.insert("serve.ingest.lag_windows".into(), 1.0);
        for (endpoint, value_ms, n) in [("status", 0.4, 20u64), ("stats", 900.0, 20)] {
            let mut buckets: Vec<(f64, u64)> = MS_BUCKETS.iter().map(|&b| (b, 0)).collect();
            let idx = MS_BUCKETS.iter().position(|&b| value_ms <= b).unwrap();
            buckets[idx].1 = n;
            out.histograms.insert(
                format!("serve.query_ms{{endpoint={endpoint}}}"),
                HistogramSnapshot {
                    count: n,
                    sum_ms: value_ms * n as f64,
                    min_ms: value_ms,
                    max_ms: value_ms,
                    buckets,
                    overflow: 0,
                },
            );
        }
        out
    }

    #[test]
    fn defaults_judge_the_serve_metrics() {
        let eval = SloSpec::serve_defaults().evaluate(&snapshot());
        // age 45s: between degraded (30s) and violated (120s).
        let age = eval.outcomes.iter().find(|o| o.metric == "serve.snapshot.age_ms").unwrap();
        assert_eq!(age.verdict, SloVerdict::Degraded);
        assert_eq!(age.value, Some(45_000.0));
        // lag 1 window: fine.
        let lag = eval.outcomes.iter().find(|o| o.metric == "serve.ingest.lag_windows").unwrap();
        assert_eq!(lag.verdict, SloVerdict::Ok);
        // The wildcard expanded per endpoint; the slow one violates.
        let status =
            eval.outcomes.iter().find(|o| o.metric.contains("endpoint=status")).unwrap();
        let stats = eval.outcomes.iter().find(|o| o.metric.contains("endpoint=stats")).unwrap();
        assert_eq!(status.verdict, SloVerdict::Ok);
        assert_eq!(stats.verdict, SloVerdict::Violated);
        assert_eq!(eval.worst(), SloVerdict::Violated);
    }

    #[test]
    fn absent_metrics_are_vacuously_ok() {
        let eval = SloSpec::serve_defaults().evaluate(&MetricsSnapshot::default());
        assert_eq!(eval.outcomes.len(), 3, "every rule stays visible");
        assert!(eval.outcomes.iter().all(|o| o.value.is_none()));
        assert_eq!(eval.worst(), SloVerdict::Ok);
    }

    #[test]
    fn spec_round_trips_from_json() {
        let spec = SloSpec::from_json(
            r#"{"version": 1, "rules": [
                {"metric": "serve.query_ms{endpoint=*}", "stat": "p95",
                 "degraded": 5, "violated": 50},
                {"metric": "ingest.blocks", "stat": "value",
                 "degraded": 1e6, "violated": 2e6}
            ]}"#,
        )
        .unwrap();
        assert_eq!(spec.rules.len(), 2);
        assert_eq!(spec.rules[0].stat, SloStat::P95);
        assert_eq!(spec.rules[1].stat, SloStat::Value);
        assert_eq!(spec.rules[1].violated, 2e6);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        assert!(SloSpec::from_json("[]").is_err(), "root must be an object");
        assert!(SloSpec::from_json(r#"{"rules": []}"#).is_err(), "version required");
        assert!(
            SloSpec::from_json(r#"{"version": 2, "rules": []}"#).is_err(),
            "unknown version"
        );
        assert!(
            SloSpec::from_json(
                r#"{"version": 1, "rules": [{"metric": "m", "stat": "p42",
                    "degraded": 1, "violated": 2}]}"#
            )
            .is_err(),
            "unknown stat"
        );
        assert!(
            SloSpec::from_json(
                r#"{"version": 1, "rules": [{"metric": "m", "stat": "p95",
                    "degraded": 10, "violated": 2}]}"#
            )
            .is_err(),
            "inverted thresholds"
        );
    }

    #[test]
    fn evaluation_renders_deterministic_json() {
        let eval = SloSpec::serve_defaults().evaluate(&snapshot());
        let rendered = eval.to_json();
        let parsed = crate::json::parse(&rendered).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), eval.outcomes.len());
        let first = arr[0].as_obj().unwrap();
        assert_eq!(first["metric"].as_str(), Some("serve.snapshot.age_ms"));
        assert_eq!(first["verdict"].as_str(), Some("degraded"));
        assert_eq!(rendered, eval.to_json(), "stable across renders");
    }
}
