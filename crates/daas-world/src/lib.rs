//! The DaaS ecosystem simulator.
//!
//! This crate substitutes for the thing the paper could observe but we
//! cannot: the real Ethereum DaaS economy between 2023-03 and 2025-04.
//! [`World::build`] generates, from a single seed, a complete world whose
//! marginals are calibrated to the paper's published numbers:
//!
//! * nine families with Table 2's exact contract / operator / affiliate /
//!   victim counts and profit totals,
//! * 87,077 profit-sharing transactions over 76,582 victims (Table 1),
//! * Figure 6's loss distribution and Figure 7's affiliate-profit tail,
//! * the §4.3 ratio mix, §6 concentration/association statistics, §7.2
//!   contract rotation lifecycles,
//! * public label coverage matching the seed-dataset ratios, and
//! * a website + CT-certificate population for the §8.2 pipeline.
//!
//! Everything the detection pipeline consumes is *observable* data
//! (chain, labels, certs, crawls); everything it must rediscover is kept
//! separately as [`GroundTruth`], enabling precision/recall scoring the
//! paper could only approximate by manual validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod gen;
mod sampler;
mod sites;
mod truth;

use std::collections::HashMap;

pub use config::{
    collection_end, collection_start, table2_families, AdversarialConfig, EntryCfg, FamilyConfig,
    WorldConfig, KIND_MIX, LOSS_BUCKETS, RATIO_TABLE,
};
pub use gen::Infra;
pub use sampler::{chance, exponential, log_uniform, uniform_time, zipf_weights, Weighted};
pub use sites::{detection_start, SitePopulation, SiteTruth};
pub use truth::{ContractTruth, FamilyTruth, GroundTruth, IncidentKind, IncidentTruth};

use daas_chain::{Chain, LabelStore};
use daas_pricing::Oracle;
use webscan::{Crawler, Site};

/// A fully generated world: the observable surfaces plus ground truth.
#[derive(Debug, Clone)]
pub struct World {
    /// The ledger (what an archive node / explorer exposes).
    pub chain: Chain,
    /// The USD price oracle.
    pub oracle: Oracle,
    /// Public address labels (Etherscan, Chainabuse, academic datasets).
    pub labels: LabelStore,
    /// What the pipeline must rediscover.
    pub truth: GroundTruth,
    /// Websites, CT certificates, toolkit fingerprints.
    pub sites: SitePopulation,
    /// Shared on-chain infrastructure addresses.
    pub infra: Infra,
}

impl World {
    /// Builds a world from a configuration. See [`WorldConfig`] for
    /// presets.
    pub fn build(config: &WorldConfig) -> Result<World, String> {
        gen::build(config)
    }

    /// [`World::build`] with an explicit planner thread count (`0` = all
    /// cores, `1` = the sequential oracle). The thread count is a
    /// schedule, never data: the world is byte-identical at every
    /// setting.
    pub fn build_with(config: &WorldConfig, threads: usize) -> Result<World, String> {
        gen::build_with(config, threads)
    }

    /// [`World::build_with`] plus an explicit chain shard count (`0` =
    /// the default, otherwise a power of two). Shards are memory layout,
    /// never data.
    pub fn build_opts(config: &WorldConfig, threads: usize, shards: usize) -> Result<World, String> {
        gen::build_opts(config, threads, shards)
    }

    /// A crawler over this world's website population (the urlscan.io
    /// stand-in), honouring taken-down sites.
    pub fn crawler(&self) -> WorldCrawler<'_> {
        let by_domain = self
            .sites
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.domain.clone(), i))
            .collect();
        WorldCrawler { world: self, by_domain }
    }
}

/// Crawler implementation over a generated [`World`].
#[derive(Debug)]
pub struct WorldCrawler<'w> {
    world: &'w World,
    by_domain: HashMap<String, usize>,
}

impl Crawler for WorldCrawler<'_> {
    fn fetch(&self, domain: &str) -> Option<&Site> {
        let idx = *self.by_domain.get(domain)?;
        if self.world.sites.down.contains(domain) {
            return None;
        }
        Some(&self.world.sites.sites[idx])
    }
}
