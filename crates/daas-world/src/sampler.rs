//! Deterministic sampling helpers built on `rand` only (no `rand_distr`
//! dependency): weighted choice, Zipf rank weights, log-uniform and
//! exponential draws.

use rand::Rng;

/// A discrete distribution over `0..n` given arbitrary non-negative
/// weights, sampled by binary search over the cumulative table.
#[derive(Debug, Clone)]
pub struct Weighted {
    cumulative: Vec<f64>,
}

impl Weighted {
    /// Builds from weights. At least one weight must be positive.
    ///
    /// # Panics
    /// Panics on empty or all-zero/negative weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Weighted: empty weights");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "Weighted: bad weight {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "Weighted: all weights zero");
        Weighted { cumulative }
    }

    /// Samples an index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction requires at least one weight).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Zipf rank weights: `w_i = 1 / (i+1)^s` for `i = 0..n`. The standard
/// model for "few accounts dominate" concentration (operator profits,
/// affiliate traffic — §6.2/§6.3).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Standard normal draw (Box–Muller).
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal weights `exp(sigma · z_i)` — the affiliate-traffic model:
/// a long tail of tiny promoters and a few who reach thousands of
/// victims (§6.3). The scale factor is irrelevant after normalisation.
pub fn lognormal_weights<R: Rng>(rng: &mut R, n: usize, sigma: f64) -> Vec<f64> {
    (0..n).map(|_| (sigma * normal(rng)).exp()).collect()
}

/// Log-uniform draw from `[lo, hi)`: uniform in log-space, the standard
/// heavy-ish within-bucket model for monetary amounts.
pub fn log_uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "log_uniform: bad range [{lo}, {hi})");
    let u = rng.gen::<f64>();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

/// Exponential draw with the given mean, via inverse CDF.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential: non-positive mean");
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() * mean
}

/// Uniform integer timestamp in `[lo, hi]`.
pub fn uniform_time<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "uniform_time: inverted range");
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

/// Bernoulli draw.
pub fn chance<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn weighted_respects_weights() {
        let w = Weighted::new(&[1.0, 0.0, 3.0]);
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_single_category() {
        let w = Weighted::new(&[0.5]);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(w.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn weighted_rejects_zero() {
        let _ = Weighted::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_shape() {
        let w = zipf_weights(4, 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!((w[3] - 0.25).abs() < 1e-12);
        // s = 0 degenerates to uniform.
        assert!(zipf_weights(3, 0.0).iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn log_uniform_in_range_and_log_spread() {
        let mut r = rng();
        let mut below_mid = 0;
        for _ in 0..10_000 {
            let x = log_uniform(&mut r, 10.0, 1_000.0);
            assert!((10.0..1_000.0).contains(&x));
            if x < 100.0 {
                below_mid += 1;
            }
        }
        // Median of a log-uniform on [10, 1000] is 100.
        assert!((below_mid as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let mean: f64 = (0..20_000).map(|_| exponential(&mut r, 7.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 7.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_weights_positive_and_skewed() {
        let mut r = rng();
        let w = lognormal_weights(&mut r, 10_000, 1.9);
        assert!(w.iter().all(|&x| x > 0.0));
        let total: f64 = w.iter().sum();
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top1pct: f64 = sorted.iter().take(100).sum();
        // At sigma 1.9, the top 1% hold a large share.
        assert!(top1pct / total > 0.25, "top1% share {}", top1pct / total);
    }

    #[test]
    fn uniform_time_degenerate() {
        let mut r = rng();
        assert_eq!(uniform_time(&mut r, 5, 5), 5);
        for _ in 0..100 {
            let t = uniform_time(&mut r, 10, 20);
            assert!((10..=20).contains(&t));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let w = Weighted::new(&[1.0, 2.0, 3.0]);
        let seq1: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| w.sample(&mut r)).collect()
        };
        let seq2: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| w.sample(&mut r)).collect()
        };
        assert_eq!(seq1, seq2);
    }
}
