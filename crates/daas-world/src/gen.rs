//! The world generator: plans the nine-family DaaS economy, benign
//! background traffic and label coverage, then executes everything on the
//! ledger in timestamp order.

use daas_chain::{
    Chain, ContractKind, Label, LabelCategory, LabelSource, LabelStore,
    ProfitSharingSpec, Timestamp, TokenKind, TxId,
};
use daas_pricing::{Oracle, Quote};
use eth_types::units::{ether, ether_f64};
use eth_types::{Address, U256};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{collection_end, collection_start, WorldConfig, KIND_MIX, LOSS_BUCKETS, RATIO_TABLE};
use crate::sampler::{chance, exponential, log_uniform, lognormal_weights, uniform_time, zipf_weights, Weighted};
use crate::sites::generate_sites;
use crate::truth::{ContractTruth, FamilyTruth, GroundTruth, IncidentKind, IncidentTruth};
use crate::World;

/// Shared on-chain infrastructure (tokens, venues, sinks) deployed at
/// genesis.
#[derive(Debug, Clone)]
pub struct Infra {
    /// NFT marketplace (Blur/OpenSea stand-in).
    pub marketplace: Address,
    /// Mixing service (laundering sink, §8.1).
    pub mixer: Address,
    /// DEX pool used by benign swap traffic.
    pub dex: Address,
    /// Centralised-exchange hot wallets (benign funding flows).
    pub cex: Vec<Address>,
    /// Stablecoins and majors: (address, symbol).
    pub erc20_tokens: Vec<(Address, &'static str)>,
    /// NFT collections.
    pub nft_collections: Vec<Address>,
    /// Benign payment splitters (the hard-negative contracts).
    pub splitters: Vec<Address>,
    /// The 70/30 splitter used by ablation A3 (ratio-matching benign
    /// contract), present only when `operator_splitter_noise` is set.
    pub noisy_splitter: Option<Address>,
}

// ---------------------------------------------------------------------
// Planning structures.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ContractPlan {
    operator_idx: usize,
    bps: u32,
    window: (Timestamp, Timestamp),
    primary: bool,
    /// Selection weight for incidents.
    weight: f64,
    /// Filled after deployment.
    address: Option<Address>,
    /// Incidents routed to this contract (for label weighting).
    tx_count: u32,
    /// Adversarial multi-hop payout chain: the deployed spec pays the
    /// first wallet here instead of the operator, and each hop forwards
    /// to the next (the operator last). Empty = direct payout.
    payout_hops: Vec<Address>,
}

#[derive(Debug, Clone)]
struct FamilyPlan {
    operators: Vec<Address>,
    /// Active window (era) of each operator: drainer crews rotate
    /// payout accounts, so most operators retire well before the family
    /// does (§6.2's 48 inactive operators).
    op_eras: Vec<(Timestamp, Timestamp)>,
    /// The family's rotation-era grid.
    eras: Vec<(Timestamp, Timestamp)>,
    /// Home era of each affiliate (campaigns are short-lived: an
    /// affiliate promotes during one rotation).
    affiliate_era: Vec<usize>,
    affiliates: Vec<Address>,
    /// Operator indices each affiliate works with.
    affiliate_ops: Vec<Vec<usize>>,
    affiliate_weights: Vec<f64>,
    contracts: Vec<ContractPlan>,
    /// Contract indices per operator.
    op_contracts: Vec<Vec<usize>>,
    victims: Vec<Address>,
}

/// How an ERC-20 drain is authorised.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Erc20Mode {
    /// On-chain `approve` (MAX), allowance outlives the drain.
    Approve,
    /// Off-chain EIP-2612 permit, consumed within the drain tx.
    Permit,
    /// Reuse of an earlier unrevoked approval (no new grant).
    Reuse,
}

/// How an NFT drain is authorised.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NftMode {
    /// `setApprovalForAll` to the contract, then a Multicall sweep.
    ApprovalSweep,
    /// A signed zero-value marketplace order fulfilled by the drainer
    /// (§7.2's "NFT Zero-order purchase").
    ZeroOrder,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PlanKind {
    Eth,
    Erc20 { token: usize, mode: Erc20Mode },
    Nft { collection: usize, mode: NftMode },
}

#[derive(Debug, Clone)]
struct IncidentPlan {
    fam: usize,
    victim: Address,
    affiliate: Address,
    contract: usize,
    kind: PlanKind,
    loss_usd: f64,
    simultaneous_with_first: bool,
    reused_approval: bool,
}

#[derive(Debug, Clone)]
enum Ev {
    Deploy { fam: usize, contract: usize },
    Incident(IncidentPlan),
    Revoke { victim: Address, kind: PlanKind, contract_of: (usize, usize) },
    OpTransfer { fam: usize, from: usize, to: usize },
    OpSharedPhish { fam: usize, a: usize, b: usize, link: usize },
    Launder { fam: usize, op: usize },
    Benign(BenignKind),
    SplitterNoise { fam: usize, op: usize, shared: bool },
    RewardRound { fam: usize, era: usize },
    /// Adversarial payout-hop drain: intermediary `hop` of a contract's
    /// chain forwards its balance to the next hop (or the operator).
    HopForward { fam: usize, contract: usize, hop: usize },
    /// Adversarial pyramid referral payment: `payer` routes a fee
    /// through a pyramid splitter to two upline participants at a
    /// table-shaped ratio.
    PyramidPay { contract: usize, payer: usize, upline_hi: usize, upline_lo: usize, bps: u32, milli_eth: u64 },
}

#[derive(Debug, Clone)]
enum BenignKind {
    P2p { from: usize, to: usize, milli_eth: u64 },
    CexOut { cex: usize, to: usize, milli_eth: u64 },
    CexIn { from: usize, cex: usize },
    Swap { trader: usize, token: usize, milli_eth: u64 },
    Airdrop { from: usize, recipients: Vec<usize>, milli_eth: u64 },
    Split { payer: usize, splitter: usize, milli_eth: u64 },
}

/// Builds a complete world from the configuration. Panics only on
/// internal invariant violations; configuration problems are returned as
/// `Err`.
pub fn build(config: &WorldConfig) -> Result<World, String> {
    build_opts(config, 0, 0)
}

/// Builds a world with an explicit planner thread count (`0` = all
/// cores, `1` = the sequential oracle). The thread count is a schedule,
/// never data: every phase that fans out draws its per-task RNG streams
/// from the master stream in a fixed order and merges results in task
/// order, so the built world is byte-identical for every `threads`.
pub fn build_with(config: &WorldConfig, threads: usize) -> Result<World, String> {
    build_opts(config, threads, 0)
}

/// [`build_with`] plus an explicit chain shard count (`0` = the default,
/// otherwise a power of two). The chain ingests under that shard layout
/// from the first transaction; shards are memory layout, never data, so
/// the world is byte-identical for every setting.
pub fn build_opts(config: &WorldConfig, threads: usize, shards: usize) -> Result<World, String> {
    config.validate()?;
    let threads = effective_threads(threads);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut chain = Chain::new();
    if shards != 0 {
        chain.set_shards(shards);
    }
    let mut labels = LabelStore::new();
    let mut oracle = Oracle::new();

    let _build_span = daas_obs::span!("world.build", threads = threads);

    // Phase 1 (sequential): infrastructure and family account creation
    // both mutate the chain, so they stay on the master stream.
    let infra = {
        let _s = daas_obs::span!("world.deploy_infra");
        deploy_infra(&mut chain, &mut oracle, &mut labels)?
    };
    let mut plans = {
        let _s = daas_obs::span!("world.plan_families");
        plan_families(&mut rng, config, &mut chain)?
    };
    // Adversarial pyramid background (a no-op that touches neither the
    // chain nor the RNG unless the knob is on).
    let pyramid = plan_pyramid(config, &mut chain)?;

    // Phase 2 (parallel plan): event synthesis touches only its own
    // family plan (or the benign index space), so it fans out across
    // the pool on RNG streams derived from the master stream.
    let (mut events, incident_count) = {
        let _s = daas_obs::span!("world.plan_events", threads = threads);
        plan_events(&mut rng, config, &mut plans, &infra, &pyramid, threads)
    };
    daas_obs::add("world.events.planned", events.len() as u64);
    daas_obs::add("world.incidents.planned", incident_count as u64);

    // Order by (time, kind priority): deployments first at a given
    // timestamp so incident execution always finds its contract. The
    // planning sequence number makes the key total, so the faster
    // unstable sort yields the same order a stable (t, prio) sort would.
    events.sort_unstable_by_key(|(t, prio, seq, _)| (*t, *prio, *seq));

    // Phase 3 (sequential apply): replay the merged timeline into the
    // ledger, then derive labels and the website population.
    let truth = {
        let _s = daas_obs::span!("world.execute");
        execute(
            &mut rng,
            config,
            &mut chain,
            &oracle,
            &infra,
            &mut plans,
            &pyramid,
            events,
            incident_count,
        )?
    };
    let sites = {
        let _s = daas_obs::span!("world.derive");
        assign_labels(&mut rng, config, &mut labels, &plans, &truth);
        generate_sites(&mut rng, config, &truth)
    };

    Ok(World { chain, oracle, labels, truth, sites, infra })
}

/// Resolves a thread-count knob: `0` means every available core.
fn effective_threads(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

// ---------------------------------------------------------------------
// Infrastructure.
// ---------------------------------------------------------------------

fn deploy_infra(
    chain: &mut Chain,
    oracle: &mut Oracle,
    labels: &mut LabelStore,
) -> Result<Infra, String> {
    let err = |e: daas_chain::ChainError| format!("infra: {e}");
    let deployer = chain.create_eoa_funded(b"infra/deployer", ether(1_000)).map_err(err)?;

    let usdc = chain.deploy_token(deployer, "USDC", 6, TokenKind::Erc20).map_err(err)?;
    let usdt = chain.deploy_token(deployer, "USDT", 6, TokenKind::Erc20).map_err(err)?;
    let dai = chain.deploy_token(deployer, "DAI", 18, TokenKind::Erc20).map_err(err)?;
    let steth = chain.deploy_token(deployer, "stETH", 18, TokenKind::Erc20).map_err(err)?;
    oracle.set_quote(usdc, Quote::Stable { units_per_usd: 1_000_000 });
    oracle.set_quote(usdt, Quote::Stable { units_per_usd: 1_000_000 });
    oracle.set_quote(dai, Quote::Stable { units_per_usd: 1_000_000_000_000_000_000 });
    oracle.set_quote(steth, Quote::EthRatio { eth_ratio: 1.0 });

    let mut nft_collections = Vec::new();
    for symbol in ["AZUKI", "BAYC", "PPG"] {
        nft_collections.push(chain.deploy_token(deployer, symbol, 0, TokenKind::Erc721).map_err(err)?);
    }

    let marketplace = chain.deploy_contract(deployer, ContractKind::Marketplace).map_err(err)?;
    chain.mint_eth(marketplace, ether(10_000_000)).map_err(err)?;
    let mixer = chain.deploy_contract(deployer, ContractKind::Mixer).map_err(err)?;
    let dex = chain.deploy_contract(deployer, ContractKind::Dex).map_err(err)?;
    chain.mint_eth(dex, ether(1_000_000)).map_err(err)?;
    for (token, _) in [(usdc, ()), (usdt, ()), (dai, ()), (steth, ())] {
        chain.mint_erc20(token, dex, U256::from_u128(10u128.pow(30))).map_err(err)?;
    }

    let mut cex = Vec::new();
    for (i, name) in ["Binance 14", "Coinbase 10", "Kraken 4", "OKX 2", "Bybit 7"].iter().enumerate() {
        let hot = chain
            .create_eoa_funded(format!("infra/cex/{i}").as_bytes(), ether(5_000_000))
            .map_err(err)?;
        labels.add(Label {
            address: hot,
            source: LabelSource::Etherscan,
            category: LabelCategory::Benign,
            text: (*name).to_owned(),
        });
        cex.push(hot);
    }

    let mut splitters = Vec::new();
    for _ in 0..4 {
        splitters.push(chain.deploy_contract(deployer, ContractKind::Benign).map_err(err)?);
    }

    Ok(Infra {
        marketplace,
        mixer,
        dex,
        cex,
        erc20_tokens: vec![(usdc, "USDC"), (usdt, "USDT"), (dai, "DAI"), (steth, "stETH")],
        nft_collections,
        splitters,
        noisy_splitter: None,
    })
}

// ---------------------------------------------------------------------
// Adversarial pyramid background.
// ---------------------------------------------------------------------

/// Forsage-style pyramid population: referral splitter contracts and
/// participant accounts, deployed only when the knob is on.
#[derive(Debug, Clone, Default)]
struct PyramidPlan {
    contracts: Vec<Address>,
    users: Vec<Address>,
}

fn plan_pyramid(config: &WorldConfig, chain: &mut Chain) -> Result<PyramidPlan, String> {
    let adv = &config.adversarial;
    if !adv.pyramid_on() {
        return Ok(PyramidPlan::default());
    }
    let err = |e: daas_chain::ChainError| format!("pyramid: {e}");
    let deployer = chain.create_eoa_funded(b"pyramid/deployer", ether(10)).map_err(err)?;
    let n_contracts = config.scaled(adv.pyramid_contracts) as usize;
    let n_users = (config.scaled(adv.pyramid_users) as usize).max(2);
    let mut contracts = Vec::with_capacity(n_contracts);
    for _ in 0..n_contracts {
        // Referral matrices are payment splitters — the same benign
        // contract kind the §4.3 hard negatives use.
        contracts.push(chain.deploy_contract(deployer, ContractKind::Benign).map_err(err)?);
    }
    let mut users = Vec::with_capacity(n_users);
    for i in 0..n_users {
        users.push(
            chain
                .create_eoa_funded(format!("pyramid/user/{i}").as_bytes(), ether(50))
                .map_err(err)?,
        );
    }
    Ok(PyramidPlan { contracts, users })
}

/// Synthesises the pyramid's referral payments on a dedicated RNG
/// stream. Referral fees split between two upline participants at a
/// §4.3 table ratio — exactly the two-transfer shape the exact-ratio
/// rule keys on, which is what makes a mislabelled pyramid contract a
/// poisoned snowball seed.
fn plan_pyramid_events(
    rng: &mut StdRng,
    config: &WorldConfig,
    pyramid: &PyramidPlan,
) -> Vec<TimedEv> {
    let n_txs = config.scaled(config.adversarial.pyramid_txs) as usize;
    let n_users = pyramid.users.len();
    let n_contracts = pyramid.contracts.len();
    let ratio_picker = Weighted::new(&RATIO_TABLE.map(|(_, p)| p));
    let mut events: Vec<TimedEv> = Vec::with_capacity(n_txs);
    for i in 0..n_txs {
        let t = uniform_time(rng, collection_start(), collection_end());
        let payer = rng.gen_range(0..n_users);
        // Uplines distinct from the payer and each other (mod-shift
        // remap keeps the draw count fixed).
        let upline_hi = (payer + 1 + rng.gen_range(0..n_users - 1)) % n_users;
        let mut upline_lo = (payer + 1 + rng.gen_range(0..n_users - 1)) % n_users;
        if upline_lo == upline_hi {
            upline_lo = if upline_hi + 1 == n_users || upline_hi + 1 == payer {
                (upline_hi + 2) % n_users
            } else {
                upline_hi + 1
            };
        }
        let bps = RATIO_TABLE[ratio_picker.sample(rng)].0;
        let contract = rng.gen_range(0..n_contracts);
        let milli_eth = rng.gen_range(100..3_000);
        events.push((
            t,
            1,
            i as u64,
            Ev::PyramidPay { contract, payer, upline_hi, upline_lo, bps, milli_eth },
        ));
    }
    events
}

// ---------------------------------------------------------------------
// Family planning.
// ---------------------------------------------------------------------

fn plan_families(
    rng: &mut StdRng,
    config: &WorldConfig,
    chain: &mut Chain,
) -> Result<Vec<FamilyPlan>, String> {
    let ratio_picker = Weighted::new(&RATIO_TABLE.map(|(_, p)| p));
    let mut plans = Vec::with_capacity(config.families.len());

    for (fi, fam) in config.families.iter().enumerate() {
        // Model-drift override: this family's contracts all use the
        // novel ratio (outside the detector's table) when configured.
        let forced_bps = config.novel_ratio.and_then(|(f, bps)| (f == fi).then_some(bps));
        let n_ops = config.scaled(fam.operators) as usize;
        let n_contracts = config.scaled(fam.contracts) as usize;
        let n_affs = config.scaled(fam.affiliates) as usize;
        let n_victims = (config.scaled(fam.victims) as usize).max(n_contracts);

        let mut operators = Vec::with_capacity(n_ops);
        for i in 0..n_ops {
            let seed = format!("op/{}/{i}", fam.slug);
            operators.push(
                chain
                    .create_eoa_funded(seed.as_bytes(), ether(10))
                    .map_err(|e| format!("operator: {e}"))?,
            );
        }

        // Operator eras: the family window is divided into rotation
        // epochs; each operator is active in one of them, so operators
        // retire as the crew rotates payout accounts.
        let window_secs = fam.end - fam.start;
        let l_secs = match fam.primary_lifecycle_days {
            Some(d) => (d * 86_400.0) as u64,
            None => {
                // Families without a documented rotation cadence get one
                // era per ~90 days, capped by their operator count.
                let n = ((window_secs / (90 * 86_400)) as usize).clamp(1, n_ops);
                window_secs / n as u64
            }
        };
        let n_eras = ((window_secs as f64 / l_secs as f64).round() as usize).max(1);
        let era_bounds = move |e: usize| -> (Timestamp, Timestamp) {
            let start = fam.start + e as u64 * l_secs;
            // The final era absorbs the residual so the whole family
            // window is covered.
            let end = if e + 1 == n_eras { fam.end } else { (start + l_secs).min(fam.end) };
            (start, end)
        };
        let era_of_op: Vec<usize> = (0..n_ops).map(|i| i * n_eras / n_ops).collect();
        let mut ops_in_era: Vec<Vec<usize>> = vec![Vec::new(); n_eras];
        for (i, &e) in era_of_op.iter().enumerate() {
            ops_in_era[e].push(i);
        }
        let op_eras: Vec<(Timestamp, Timestamp)> =
            era_of_op.iter().map(|&e| era_bounds(e)).collect();
        // Weighted pick among an era's operators (nearest populated era
        // as fallback).
        let pick_op_in_era = |rng: &mut StdRng, e: usize| -> usize {
            let era = (0..n_eras)
                .min_by_key(|&cand| {
                    let populated = !ops_in_era[cand].is_empty();
                    (usize::from(!populated), cand.abs_diff(e))
                })
                .expect("at least one era");
            let ops = &ops_in_era[era];
            // Each era has its own lead operator: weight by local rank.
            let weights = zipf_weights(ops.len(), 1.8);
            ops[Weighted::new(&weights).sample(rng)]
        };

        // Contracts: primaries on a rotation schedule, throwaways short.
        let mut contracts: Vec<ContractPlan> = Vec::with_capacity(n_contracts);
        if fam.primary_lifecycle_days.is_some() {
            // Each rotation epoch runs several primaries concurrently —
            // one per active operator at minimum, so no operator's
            // traffic is forced through short-lived throwaways.
            let concurrent = ops_in_era.iter().map(Vec::len).max().unwrap_or(1).max(3);
            let epochs = n_eras;
            let n_primary = (epochs * concurrent).min(n_contracts);
            // Expected volume share of each primary slot: era volume is
            // front-loaded (zipf 0.8 over epochs) and each era's volume
            // splits across its operators by local rank (zipf 1.8), then
            // evenly across an operator's slots. Ratios are allocated by
            // largest remaining deficit against the §4.3 distribution so
            // the *transaction-weighted* mix tracks the paper even
            // though volume per slot is very uneven.
            let era_vols = zipf_weights(epochs, 0.8);
            let slot_volume: Vec<f64> = (0..n_primary)
                .map(|p| {
                    let epoch = p / concurrent;
                    let slot = p % concurrent;
                    let len = ops_in_era[epoch].len().max(1);
                    let rank = slot % len;
                    let local = zipf_weights(len, 1.8);
                    let local_total: f64 = local.iter().sum();
                    let slots_of_op = (concurrent + len - 1 - rank) / len;
                    era_vols[epoch] * local[rank] / local_total / slots_of_op as f64
                })
                .collect();
            let slot_bps = allocate_ratios(&slot_volume);
            #[allow(clippy::needless_range_loop)] // p indexes two parallel derivations
            for p in 0..n_primary {
                let epoch = p / concurrent;
                let slot = p % concurrent;
                let (start, end) = era_bounds(epoch);
                // Round-robin across the era's operators: each gets a
                // primary before any gets a second.
                let era_ops = &ops_in_era[epoch];
                let operator_idx = if era_ops.is_empty() {
                    pick_op_in_era(rng, epoch)
                } else {
                    era_ops[slot % era_ops.len()]
                };
                contracts.push(ContractPlan {
                    operator_idx,
                    bps: forced_bps.unwrap_or(slot_bps[p]),
                    window: (start, end),
                    primary: true,
                    weight: 300.0,
                    address: None,
                    tx_count: 0,
                    payout_hops: Vec::new(),
                });
            }
        }
        let mut throwaway_idx = 0usize;
        while contracts.len() < n_contracts {
            // Families with a documented rotation run short-lived
            // throwaways next to their primaries; families without one
            // (Venom's single contract, Ace's six) keep each contract
            // alive for its operator's whole era — that is what makes
            // their Table 2 activity spans match the paper.
            let (start, end, era) = if fam.primary_lifecycle_days.is_some() {
                let dur =
                    (exponential(rng, 14.0 * 86_400.0) as u64).clamp(2 * 86_400, 60 * 86_400);
                let latest_start = fam.end.saturating_sub(dur).max(fam.start);
                let start = uniform_time(rng, fam.start, latest_start);
                let era = (((start - fam.start) / l_secs.max(1)) as usize).min(n_eras - 1);
                (start, (start + dur).min(fam.end), era)
            } else {
                let era = rng.gen_range(0..n_eras);
                let (start, end) = era_bounds(era);
                (start, end, era)
            };
            // The first nine throwaways cover each ratio once, so every
            // §4.3 ratio is observable at any world scale; the rest
            // sample the distribution.
            let bps = if throwaway_idx < RATIO_TABLE.len() {
                RATIO_TABLE[throwaway_idx].0
            } else {
                RATIO_TABLE[ratio_picker.sample(rng)].0
            };
            throwaway_idx += 1;
            contracts.push(ContractPlan {
                operator_idx: pick_op_in_era(rng, era),
                bps: forced_bps.unwrap_or(bps),
                window: (start, end),
                primary: false,
                weight: log_uniform(rng, 0.5, 5.0),
                address: None,
                tx_count: 0,
                payout_hops: Vec::new(),
            });
        }

        let mut op_contracts = vec![Vec::new(); n_ops];
        for (ci, c) in contracts.iter().enumerate() {
            op_contracts[c.operator_idx].push(ci);
        }
        // Every operator must own at least one contract, or it would
        // never appear in a profit-sharing transaction. Reassign spares
        // from the most-loaded operator.
        for oi in 0..n_ops {
            if op_contracts[oi].is_empty() {
                let donor = (0..n_ops).max_by_key(|&o| op_contracts[o].len()).unwrap();
                if op_contracts[donor].len() > 1 {
                    let ci = op_contracts[donor].pop().unwrap();
                    contracts[ci].operator_idx = oi;
                    op_contracts[oi].push(ci);
                }
            }
        }

        // Affiliates and their operator associations (§6.3: 60.4% single
        // operator, 90.2% within three). Each affiliate campaigns during
        // one home era and deals with that era's operators (spilling into
        // the neighbouring era when it needs more partners than the era
        // has).
        let mut affiliates = Vec::with_capacity(n_affs);
        let mut affiliate_ops = Vec::with_capacity(n_affs);
        let mut affiliate_era = Vec::with_capacity(n_affs);
        // Campaign volume peaks early in a family's life (Inferno's 2023
        // heyday): early eras attract more affiliates, which is also
        // what concentrates profits on the early operators (§6.2).
        let era_picker = Weighted::new(&zipf_weights(n_eras, 0.8));
        for i in 0..n_affs {
            let seed = format!("aff/{}/{i}", fam.slug);
            affiliates.push(
                chain
                    .create_eoa(seed.as_bytes())
                    .map_err(|e| format!("affiliate: {e}"))?,
            );
            let home = era_picker.sample(rng);
            affiliate_era.push(home);
            // Calibrated so the *measured* association mix (§6.3) lands
            // at 60.4% single / 90.2% within three: affiliates with few
            // incidents collapse onto fewer operators than they signed
            // up with, so the planned mix leans multi-operator.
            let target = match rng.gen::<f64>() {
                x if x < 0.52 => 1,
                x if x < 0.80 => 2,
                x if x < 0.88 => 3,
                x if x < 0.95 => 4,
                _ => 5,
            }
            .min(n_ops);
            // Candidate partners: the home era's operators, then the
            // neighbours'.
            let mut pool: Vec<usize> = Vec::new();
            for d in 0..n_eras {
                for delta in [home.checked_sub(d), home.checked_add(d).filter(|&e| e < n_eras)]
                    .into_iter()
                    .flatten()
                {
                    for &o in &ops_in_era[delta] {
                        if !pool.contains(&o) {
                            pool.push(o);
                        }
                    }
                }
                if pool.len() >= target {
                    break;
                }
            }
            let mut ops = Vec::with_capacity(target);
            let mut guard = 0;
            // Pool positions are home-era-first: weighting by position
            // makes each era's lead operator dominate its cohort, which
            // is what concentrates profits on a few operators (§6.2).
            let pool_weights = zipf_weights(pool.len(), 1.8);
            while ops.len() < target.min(pool.len()) && guard < 200 {
                let o = pool[Weighted::new(&pool_weights).sample(rng)];
                if !ops.contains(&o) {
                    ops.push(o);
                }
                guard += 1;
            }
            if ops.is_empty() {
                ops.push(pick_op_in_era(rng, home));
            }
            affiliate_ops.push(ops);
        }
        // Log-normal traffic weights: most affiliates barely convert,
        // a few reach thousands of victims (§6.3 / Figure 7's tail).
        let affiliate_weights = lognormal_weights(rng, n_affs, 1.7);

        // Victims.
        let mut victims = Vec::with_capacity(n_victims);
        for i in 0..n_victims {
            let seed = format!("victim/{}/{i}", fam.slug);
            victims.push(
                chain
                    .create_eoa(seed.as_bytes())
                    .map_err(|e| format!("victim: {e}"))?,
            );
        }

        // Adversarial ratio rewrites and payout-hop chains. Both passes
        // draw RNG and create accounts only when their knob is on, so a
        // calibrated config is bit-for-bit unaffected.
        let adv = &config.adversarial;
        if adv.ratio_attack_on() {
            for c in contracts.iter_mut() {
                if adv.off_menu_frac > 0.0 && chance(rng, adv.off_menu_frac) {
                    c.bps = adv.off_menu_bps[rng.gen_range(0..adv.off_menu_bps.len())];
                } else if adv.ratio_drift_frac > 0.0 && chance(rng, adv.ratio_drift_frac) {
                    let half = adv.ratio_drift_bps / 2.0;
                    let magnitude = half + rng.gen::<f64>() * half;
                    let offset = if chance(rng, 0.5) { magnitude } else { -magnitude };
                    c.bps = drift_off_table(c.bps, offset);
                }
            }
        }
        if adv.payout_hops_on() {
            for (ci, c) in contracts.iter_mut().enumerate() {
                if !chance(rng, adv.payout_hop_frac) {
                    continue;
                }
                let mut hops = Vec::with_capacity(adv.payout_hops as usize);
                for h in 0..adv.payout_hops {
                    let seed = format!("hop/{}/{ci}/{h}", fam.slug);
                    hops.push(
                        chain
                            .create_eoa(seed.as_bytes())
                            .map_err(|e| format!("payout hop: {e}"))?,
                    );
                }
                c.payout_hops = hops;
            }
        }

        let _ = fi;
        let eras: Vec<(Timestamp, Timestamp)> = (0..n_eras).map(era_bounds).collect();
        plans.push(FamilyPlan {
            operators,
            op_eras,
            eras,
            affiliate_era,
            affiliates,
            affiliate_ops,
            affiliate_weights,
            contracts,
            op_contracts,
            victims,
        });
    }
    Ok(plans)
}

// ---------------------------------------------------------------------
// Event planning.
// ---------------------------------------------------------------------

type TimedEv = (Timestamp, u8, u64, Ev);

#[allow(clippy::too_many_lines)]
/// Events synthesised per benign-traffic planning chunk. Fixed — never
/// derived from the thread count — so the chunk → RNG-stream mapping,
/// and therefore the planned traffic, is identical for every schedule.
const BENIGN_PLAN_CHUNK: usize = 8_192;

fn plan_events(
    rng: &mut StdRng,
    config: &WorldConfig,
    plans: &mut [FamilyPlan],
    infra: &Infra,
    pyramid: &PyramidPlan,
    threads: usize,
) -> (Vec<TimedEv>, usize) {
    // Split the master stream: one derived seed per family plus one per
    // benign chunk, drawn in a fixed order. Each planning task owns an
    // independent RNG, so the fan-out below cannot observe the thread
    // schedule. The pyramid seed is drawn last and only when the knob
    // is on, so calibrated worlds see an unchanged draw sequence.
    let fam_seeds: Vec<u64> = plans.iter().map(|_| rng.gen()).collect();
    let n_benign_txs = config.scaled(config.benign_txs) as usize;
    let n_chunks = n_benign_txs.div_ceil(BENIGN_PLAN_CHUNK);
    let benign_seeds: Vec<u64> = (0..n_chunks).map(|_| rng.gen()).collect();
    let pyramid_events: Vec<TimedEv> = if config.adversarial.pyramid_on() {
        plan_pyramid_events(&mut StdRng::seed_from_u64(rng.gen()), config, pyramid)
    } else {
        Vec::new()
    };

    // Per-family synthesis: each task reads shared config/infra and
    // mutates only its own plan (contract traffic counters), so the
    // families fan out with disjoint `&mut` chunks.
    let fam_results: Vec<(Vec<TimedEv>, usize)> = if threads <= 1 || plans.len() < 2 {
        plans
            .iter_mut()
            .enumerate()
            .map(|(fi, plan)| {
                plan_family_events(&mut StdRng::seed_from_u64(fam_seeds[fi]), fi, config, plan, infra)
            })
            .collect()
    } else {
        let workers = threads.min(plans.len());
        let chunk = plans.len().div_ceil(workers);
        let fam_seeds = &fam_seeds;
        crossbeam::scope(|scope| {
            let handles: Vec<_> = plans
                .chunks_mut(chunk)
                .enumerate()
                .map(|(wi, part)| {
                    scope.spawn(move |_| {
                        part.iter_mut()
                            .enumerate()
                            .map(|(j, plan)| {
                                let fi = wi * chunk + j;
                                plan_family_events(
                                    &mut StdRng::seed_from_u64(fam_seeds[fi]),
                                    fi,
                                    config,
                                    plan,
                                    infra,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // Joining in spawn order keeps the family order — and the
            // merge below — independent of the thread schedule.
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("family planners do not panic"))
                .collect()
        })
        .expect("family plan scope does not panic")
    };

    // Benign traffic in fixed-size chunks, one derived stream per chunk.
    let n_benign_users = config.scaled(config.benign_users) as usize;
    let chunk_len =
        |ci: usize| (n_benign_txs - ci * BENIGN_PLAN_CHUNK).min(BENIGN_PLAN_CHUNK);
    let benign_results: Vec<Vec<TimedEv>> = if threads <= 1 || n_chunks < 2 {
        (0..n_chunks)
            .map(|ci| {
                plan_benign_chunk(
                    &mut StdRng::seed_from_u64(benign_seeds[ci]),
                    chunk_len(ci),
                    n_benign_users,
                    infra,
                )
            })
            .collect()
    } else {
        let workers = threads.min(n_chunks);
        let stride = n_chunks.div_ceil(workers);
        let chunk_ids: Vec<usize> = (0..n_chunks).collect();
        let benign_seeds = &benign_seeds;
        crossbeam::scope(|scope| {
            let handles: Vec<_> = chunk_ids
                .chunks(stride)
                .map(|part| {
                    scope.spawn(move |_| {
                        part.iter()
                            .map(|&ci| {
                                plan_benign_chunk(
                                    &mut StdRng::seed_from_u64(benign_seeds[ci]),
                                    chunk_len(ci),
                                    n_benign_users,
                                    infra,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("benign planners do not panic"))
                .collect()
        })
        .expect("benign plan scope does not panic")
    };

    // Merge in task order and renumber the planning sequence globally,
    // so the (t, prio, seq) sort key is total and schedule-independent.
    let total = fam_results.iter().map(|(e, _)| e.len()).sum::<usize>()
        + benign_results.iter().map(Vec::len).sum::<usize>();
    let mut events: Vec<TimedEv> = Vec::with_capacity(total);
    let mut incident_count = 0usize;
    for (ev, n) in fam_results {
        incident_count += n;
        events.extend(ev);
    }
    for ev in benign_results {
        events.extend(ev);
    }
    events.extend(pyramid_events);
    for (i, e) in events.iter_mut().enumerate() {
        e.2 = i as u64;
    }
    (events, incident_count)
}

/// Synthesises every planned event for one family on its own RNG
/// stream. Mutates only `plan` (contract traffic counters); sequence
/// numbers are task-local and renumbered by the caller after the merge.
fn plan_family_events(
    rng: &mut StdRng,
    fi: usize,
    config: &WorldConfig,
    plan: &mut FamilyPlan,
    infra: &Infra,
) -> (Vec<TimedEv>, usize) {
    let _task_span = daas_obs::span!("world.plan_family", fam = fi);
    let fam_cfg = &config.families[fi];
    let mut events: Vec<TimedEv> = Vec::new();
    let mut seq: u64 = 0;
    let push = |events: &mut Vec<TimedEv>, t: Timestamp, prio: u8, ev: Ev, seq: &mut u64| {
        events.push((t, prio, *seq, ev));
        *seq += 1;
    };
    let mut incident_count = 0usize;

    // Per-family override of the asset-kind mix (NFT-phishing-heavy
    // adversarial families); `Weighted` normalises, so a `None` keeps
    // the calibrated picker — and the RNG stream — exactly as before.
    let mix = fam_cfg.kind_mix.unwrap_or(KIND_MIX);
    let kind_picker = Weighted::new(&[mix.0, mix.1, mix.2]);
    let token_picker = Weighted::new(&[0.4, 0.3, 0.2, 0.1]);
    let bucket_picker = Weighted::new(&LOSS_BUCKETS.map(|(_, _, p)| p));

    // -- deployments --
    for ci in 0..plan.contracts.len() {
        let t = plan.contracts[ci].window.0.max(collection_start());
        push(&mut events, t, 0, Ev::Deploy { fam: fi, contract: ci }, &mut seq);
    }

    // -- operator linkage (for §7.1 clustering) --
    // Links happen at the successor's onboarding (era start): the
    // retiring account funds or co-transacts with the fresh one.
    let n_ops = plan.operators.len();
    for i in 1..n_ops {
        let era_start = plan.op_eras[i].0;
        let t = (era_start + 86_400).min(fam_cfg.end);
        if chance(rng, 0.7) {
            push(&mut events, t, 1, Ev::OpTransfer { fam: fi, from: i - 1, to: i }, &mut seq);
        } else {
            // Link via a shared Etherscan-labeled phishing EOA.
            push(
                &mut events,
                t,
                1,
                Ev::OpSharedPhish { fam: fi, a: i - 1, b: i, link: i },
                &mut seq,
            );
        }
    }

    // -- affiliate reward rounds (§7.2): families with a leveling
    // policy periodically reward qualifying affiliates --
    if fam_cfg.reward_policy.is_some() {
        let quarter = 90 * 86_400;
        let mut t = fam_cfg.start + quarter;
        while t < fam_cfg.end {
            let era = plan
                .eras
                .iter()
                .position(|e| e.0 <= t && t <= e.1)
                .unwrap_or(n_eras_of(plan) - 1);
            push(&mut events, t, 1, Ev::RewardRound { fam: fi, era }, &mut seq);
            t += quarter;
        }
    }

    // -- laundering sweeps: each operator cashes out shortly after
    // its era ends (this is what retires the account, §6.2) --
    for oi in 0..n_ops {
        let t = (plan.op_eras[oi].1 + 2 * 86_400).min(collection_end());
        push(&mut events, t, 2, Ev::Launder { fam: fi, op: oi }, &mut seq);
    }

    // -- adversarial payout-hop drains: once a contract's window closes,
    // each intermediary forwards its balance one hop onward per day,
    // reaching the true operator last. No RNG: empty chains (the
    // default) plan nothing --
    for ci in 0..plan.contracts.len() {
        for h in 0..plan.contracts[ci].payout_hops.len() {
            let t = (plan.contracts[ci].window.1 + (h as u64 + 1) * 86_400).min(collection_end());
            push(&mut events, t, 2, Ev::HopForward { fam: fi, contract: ci, hop: h }, &mut seq);
        }
    }

    // -- ablation A3 noise --
    if config.operator_splitter_noise && !infra.splitters.is_empty() {
        // One ratio-shaped donation through a family-private benign
        // splitter: a single prior interaction is exactly what the
        // temporal expansion guard screens out (ablation A3).
        let t = uniform_time(rng, fam_cfg.start, fam_cfg.end);
        push(&mut events, t, 1, Ev::SplitterNoise { fam: fi, op: 0, shared: false }, &mut seq);
        // The first two families also donate through one *shared*
        // splitter — the second donation postdates a dataset
        // interaction, which is the guard's honest exposure.
        if fi < 2 {
            let t = uniform_time(rng, fam_cfg.start, fam_cfg.end);
            push(&mut events, t, 1, Ev::SplitterNoise { fam: fi, op: 0, shared: true }, &mut seq);
        }
    }

    // -- incidents --
    let n_victims = plan.victims.len();
    let n_contracts = plan.contracts.len();
    let aff_picker = Weighted::new(&plan.affiliate_weights);
    // Whale victims are routed preferentially through high-traffic
    // affiliates (big promoters reach wealthier audiences): this
    // concentrates *value* on the top affiliates beyond what victim
    // counts alone would (§6.3: 7.4% of affiliates hold 75.6%).
    let whale_weights: Vec<f64> =
        plan.affiliate_weights.iter().map(|w| w.powf(1.3)).collect();
    let aff_picker_whale = Weighted::new(&whale_weights);

    // Per-victim loss sampling, then rescale the whale bucket so the
    // family total hits its Table 2 profit target.
    let mut losses: Vec<f64> = (0..n_victims)
        .map(|_| {
            let (lo, hi, _) = LOSS_BUCKETS[bucket_picker.sample(rng)];
            log_uniform(rng, lo, hi)
        })
        .collect();
    rescale_losses(&mut losses, fam_cfg.profits_usd * config.scale);

    // Repeat-victim flags.
    let n_repeat = ((n_victims as f64) * config.repeat_victim_frac).round() as usize;
    #[derive(Clone, Copy)]
    struct Flags {
        sim: bool,
        rev: bool,
    }
    let mut flags = vec![Flags { sim: false, rev: false }; n_victims];
    for f in flags.iter_mut().take(n_repeat) {
        let x = rng.gen::<f64>();
        if x < config.repeat_sim_only {
            f.sim = true;
        } else if x < config.repeat_sim_only + config.repeat_revoke_only {
            f.rev = true;
        } else if x < config.repeat_sim_only + config.repeat_revoke_only + config.repeat_both {
            f.sim = true;
            f.rev = true;
        }
        // Residual probability: repeat victim with independent
        // second incident (neither flag).
    }

    for vi in 0..n_victims {
        let victim = plan.victims[vi];
        let is_repeat = vi < n_repeat;
        let fl = flags[vi];
        let n_incidents = 1 + usize::from(is_repeat) + usize::from(fl.sim && fl.rev);
        let loss_each = losses[vi] / n_incidents as f64;

        // Choose affiliate → operator → contract; the first
        // `n_contracts` victims are routed to contract `vi` directly
        // so every contract sees at least one transaction.
        let n_affs = plan.affiliates.len();
        let (affiliate_idx, op_idx, contract_idx, t) = if vi < n_contracts {
            let c = vi;
            let op = plan.contracts[c].operator_idx;
            let aff = pick_affiliate_of_op(rng, plan, op, &aff_picker);
            let w = plan.contracts[c].window;
            (aff, op, c, uniform_time(rng, w.0, w.1))
        } else if vi < n_contracts + n_affs {
            // Coverage pass: every affiliate earns from at least one
            // victim, so the discovered affiliate census matches the
            // population (Table 1 counts affiliates *seen in
            // transactions*).
            let aff = vi - n_contracts;
            let ops = &plan.affiliate_ops[aff];
            let op = ops[rng.gen_range(0..ops.len())];
            let era = plan.eras[plan.affiliate_era[aff]];
            let t0 = uniform_time(rng, era.0, era.1);
            let (c, t) = pick_contract(rng, plan, op, t0);
            (aff, op, c, t)
        } else {
            let whale = losses[vi] >= 4_000.0;
            let picker = if whale { &aff_picker_whale } else { &aff_picker };
            let aff = picker.sample(rng);
            let ops = &plan.affiliate_ops[aff];
            let op = ops[rng.gen_range(0..ops.len())];
            let era = plan.eras[plan.affiliate_era[aff]];
            let t0 = uniform_time(rng, era.0, era.1);
            let (c, t) = if whale {
                // High-value campaigns run on negotiated low-ratio
                // deals: the paper's value-weighted operator take
                // ($23.1M of $135M ≈ 17%) sits below the
                // transaction-weighted ratio mix.
                pick_low_ratio_primary(rng, plan, t0)
                    .unwrap_or_else(|| pick_contract(rng, plan, op, t0))
            } else {
                pick_contract(rng, plan, op, t0)
            };
            (aff, op, c, t)
        };
        let _ = op_idx;
        let affiliate = plan.affiliates[affiliate_idx];
        let cwin = plan.contracts[contract_idx].window;

        // Base incident. Victims flagged for approval-reuse must hold
        // an ERC-20 approval, so force that kind.
        let base_kind = if fl.rev {
            PlanKind::Erc20 { token: token_picker.sample(rng), mode: Erc20Mode::Approve }
        } else {
            sample_kind(rng, &kind_picker, &token_picker)
        };
        // Approvals granted along the way, for the revocation pass.
        let mut granted: Vec<(PlanKind, usize, u64)> = Vec::new();
        if matches!(base_kind, PlanKind::Erc20 { .. } | PlanKind::Nft { .. }) {
            granted.push((base_kind, contract_idx, t));
        }
        plan.contracts[contract_idx].tx_count += 1;
        push(
            &mut events,
            t,
            1,
            Ev::Incident(IncidentPlan {
                fam: fi,
                victim,
                affiliate,
                contract: contract_idx,
                kind: base_kind,
                loss_usd: loss_each,
                simultaneous_with_first: false,
                reused_approval: false,
            }),
            &mut seq,
        );
        incident_count += 1;

        if is_repeat {
            if fl.sim {
                // Simultaneous multi-sign: same visit, same contract,
                // another asset.
                let kind = simultaneous_kind(rng, base_kind, &token_picker);
                if matches!(kind, PlanKind::Erc20 { .. } | PlanKind::Nft { .. }) {
                    granted.push((kind, contract_idx, t));
                }
                plan.contracts[contract_idx].tx_count += 1;
                push(
                    &mut events,
                    t,
                    1,
                    Ev::Incident(IncidentPlan {
                        fam: fi,
                        victim,
                        affiliate,
                        contract: contract_idx,
                        kind,
                        loss_usd: loss_each,
                        simultaneous_with_first: true,
                        reused_approval: false,
                    }),
                    &mut seq,
                );
                incident_count += 1;
            }
            if fl.rev {
                // Later re-drain through the unrevoked approval.
                let gap = (exponential(rng, 45.0 * 86_400.0) as u64).max(86_400);
                let t2 = (t + gap).min(cwin.1.max(t + 3_600));
                let PlanKind::Erc20 { token, .. } = base_kind else {
                    unreachable!("rev flag forces ERC-20 base")
                };
                plan.contracts[contract_idx].tx_count += 1;
                push(
                    &mut events,
                    t2,
                    1,
                    Ev::Incident(IncidentPlan {
                        fam: fi,
                        victim,
                        affiliate,
                        contract: contract_idx,
                        kind: PlanKind::Erc20 { token, mode: Erc20Mode::Reuse },
                        loss_usd: loss_each,
                        simultaneous_with_first: false,
                        reused_approval: true,
                    }),
                    &mut seq,
                );
                incident_count += 1;
            }
            if !fl.sim && !fl.rev {
                // Independent second incident, later, any contract of
                // a (possibly different) operator of the same
                // affiliate.
                let ops = &plan.affiliate_ops[affiliate_idx];
                let op2 = ops[rng.gen_range(0..ops.len())];
                let t0 = uniform_time(rng, t, fam_cfg.end.max(t + 1));
                let (c2, t2) = pick_contract(rng, plan, op2, t0);
                let t2 = t2.max(t + 3_600);
                let kind = sample_kind(rng, &kind_picker, &token_picker);
                if matches!(kind, PlanKind::Erc20 { .. } | PlanKind::Nft { .. }) {
                    granted.push((kind, c2, t2));
                }
                plan.contracts[c2].tx_count += 1;
                push(
                    &mut events,
                    t2,
                    1,
                    Ev::Incident(IncidentPlan {
                        fam: fi,
                        victim,
                        affiliate,
                        contract: c2,
                        kind,
                        loss_usd: loss_each,
                        simultaneous_with_first: false,
                        reused_approval: false,
                    }),
                    &mut seq,
                );
                incident_count += 1;
            }

            // Repeat victims WITHOUT the unrevoked flag revoke every
            // approval they granted — base, simultaneous and
            // follow-up alike (that is what makes the §6.1 28.6%
            // statistic identifiable).
            if !fl.rev {
                for (kind, c, granted_at) in granted.drain(..) {
                    let tr = granted_at + (exponential(rng, 5.0 * 86_400.0) as u64).max(3_600);
                    push(
                        &mut events,
                        tr.min(collection_end()),
                        1,
                        Ev::Revoke { victim, kind, contract_of: (fi, c) },
                        &mut seq,
                    );
                }
            }
        } else if !granted.is_empty() && chance(rng, 0.5) {
            // Half of single-hit victims clean up their approvals.
            for (kind, c, granted_at) in granted.drain(..) {
                let tr = granted_at + (exponential(rng, 7.0 * 86_400.0) as u64).max(3_600);
                push(
                    &mut events,
                    tr.min(collection_end()),
                    1,
                    Ev::Revoke { victim, kind, contract_of: (fi, c) },
                    &mut seq,
                );
            }
        }
    }

    (events, incident_count)
}

/// Synthesises `count` benign background transactions on a dedicated
/// RNG stream. Sequence numbers are task-local (renumbered on merge).
fn plan_benign_chunk(
    rng: &mut StdRng,
    count: usize,
    n_benign_users: usize,
    infra: &Infra,
) -> Vec<TimedEv> {
    let _task_span = daas_obs::span!("world.plan_benign", count = count);
    let benign_type = Weighted::new(&[0.40, 0.20, 0.10, 0.15, 0.05, 0.10]);
    let mut events: Vec<TimedEv> = Vec::with_capacity(count);
    for i in 0..count {
        let t = uniform_time(rng, collection_start(), collection_end());
        let kind = match benign_type.sample(rng) {
            0 => BenignKind::P2p {
                from: rng.gen_range(0..n_benign_users),
                to: rng.gen_range(0..n_benign_users),
                milli_eth: rng.gen_range(10..2_000),
            },
            1 => BenignKind::CexOut {
                cex: rng.gen_range(0..infra.cex.len()),
                to: rng.gen_range(0..n_benign_users),
                milli_eth: rng.gen_range(50..20_000),
            },
            2 => BenignKind::CexIn {
                from: rng.gen_range(0..n_benign_users),
                cex: rng.gen_range(0..infra.cex.len()),
            },
            3 => BenignKind::Swap {
                trader: rng.gen_range(0..n_benign_users),
                token: rng.gen_range(0..infra.erc20_tokens.len()),
                milli_eth: rng.gen_range(10..5_000),
            },
            4 => BenignKind::Airdrop {
                from: rng.gen_range(0..n_benign_users),
                recipients: (0..rng.gen_range(4..16))
                    .map(|_| rng.gen_range(0..n_benign_users))
                    .collect(),
                milli_eth: rng.gen_range(1..50),
            },
            _ => BenignKind::Split {
                payer: rng.gen_range(0..n_benign_users),
                splitter: rng.gen_range(0..infra.splitters.len()),
                milli_eth: rng.gen_range(100..5_000),
            },
        };
        events.push((t, 1, i as u64, Ev::Benign(kind)));
    }


    events
}

fn sample_kind(rng: &mut StdRng, kind_picker: &Weighted, token_picker: &Weighted) -> PlanKind {
    match kind_picker.sample(rng) {
        0 => PlanKind::Eth,
        1 => PlanKind::Erc20 {
            token: token_picker.sample(rng),
            // Roughly a third of token drains ride an EIP-2612 permit
            // (§7.2's "ERC20 permit phishing" scheme).
            mode: if chance(rng, 0.3) { Erc20Mode::Permit } else { Erc20Mode::Approve },
        },
        _ => PlanKind::Nft {
            collection: rng.gen_range(0..3),
            // ~40% of NFT thefts ride a signed zero-value order instead
            // of an on-chain approval sweep.
            mode: if chance(rng, 0.4) { NftMode::ZeroOrder } else { NftMode::ApprovalSweep },
        },
    }
}

/// The extra asset signed in the same visit: another token, or ETH.
fn simultaneous_kind(rng: &mut StdRng, base: PlanKind, token_picker: &Weighted) -> PlanKind {
    if chance(rng, 0.5) {
        PlanKind::Eth
    } else {
        let mut token = token_picker.sample(rng);
        if let PlanKind::Erc20 { token: base_token, .. } = base {
            if token == base_token {
                token = (token + 1) % 4;
            }
        }
        PlanKind::Erc20 {
            token,
            mode: if chance(rng, 0.3) { Erc20Mode::Permit } else { Erc20Mode::Approve },
        }
    }
}

/// Picks an affiliate associated with `op`; falls back to extending a
/// random affiliate's association set.
fn pick_affiliate_of_op(
    rng: &mut StdRng,
    plan: &FamilyPlan,
    op: usize,
    picker: &Weighted,
) -> usize {
    for _ in 0..64 {
        let a = picker.sample(rng);
        if plan.affiliate_ops[a].contains(&op) {
            return a;
        }
    }
    // Rare: nobody works with this operator; fall back to any affiliate
    // (the association statistic tolerates a handful of these).
    picker.sample(rng)
}

/// Picks one of `op`'s contracts whose window covers `t`, weighted. If
/// the operator has nothing live at `t` (it may be retired), the victim
/// flows through the family's *current* primary contracts instead — the
/// drainer backend always points phishing sites at the live rotation.
/// Only when nothing at all covers `t` is the timestamp clamped into a
/// contract of `op`.
fn pick_contract(rng: &mut StdRng, plan: &FamilyPlan, op: usize, t: Timestamp) -> (usize, Timestamp) {
    let covering = |c: usize| {
        let w = plan.contracts[c].window;
        w.0 <= t && t <= w.1
    };
    let candidates: Vec<usize> =
        plan.op_contracts[op].iter().copied().filter(|&c| covering(c)).collect();
    if !candidates.is_empty() {
        let weights: Vec<f64> = candidates.iter().map(|&c| plan.contracts[c].weight).collect();
        let c = candidates[Weighted::new(&weights).sample(rng)];
        return (c, t);
    }
    let live_primaries: Vec<usize> = (0..plan.contracts.len())
        .filter(|&c| plan.contracts[c].primary && covering(c))
        .collect();
    if !live_primaries.is_empty() {
        let weights: Vec<f64> =
            live_primaries.iter().map(|&c| plan.contracts[c].weight).collect();
        let c = live_primaries[Weighted::new(&weights).sample(rng)];
        return (c, t);
    }
    let all = &plan.op_contracts[op];
    assert!(!all.is_empty(), "operator without contracts");
    let c = all[rng.gen_range(0..all.len())];
    let w = plan.contracts[c].window;
    (c, uniform_time(rng, w.0, w.1))
}

/// Allocates a ratio to each slot so that the volume-weighted ratio mix
/// tracks the §4.3 distribution: slots are processed in descending
/// expected volume, each taking the ratio with the largest remaining
/// volume deficit (largest-remainder apportionment). Deterministic.
fn allocate_ratios(slot_volume: &[f64]) -> Vec<u32> {
    let total: f64 = slot_volume.iter().sum();
    let mut remaining: Vec<(u32, f64)> =
        RATIO_TABLE.iter().map(|&(bps, share)| (bps, share * total)).collect();
    let mut order: Vec<usize> = (0..slot_volume.len()).collect();
    order.sort_by(|&a, &b| {
        slot_volume[b].partial_cmp(&slot_volume[a]).expect("finite").then(a.cmp(&b))
    });
    let mut out = vec![RATIO_TABLE[0].0; slot_volume.len()];
    for &slot in &order {
        let (bps, deficit) = remaining
            .iter_mut()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("ratio table non-empty");
        out[slot] = *bps;
        *deficit -= slot_volume[slot];
    }
    out
}

fn n_eras_of(plan: &FamilyPlan) -> usize {
    plan.eras.len().max(1)
}

/// Applies a drift offset to a deployed ratio, guaranteeing the result
/// lands outside the classifier's 0.5% relative tolerance of *every*
/// §4.3 table ratio: a drift that happened to land on a neighbouring
/// table entry would still classify and report a phantom "attack" the
/// detector in fact absorbs. Table entries are ≥ 250 bps apart, so one
/// 0.7%-of-ratio nudge cannot enter another entry's window.
fn drift_off_table(bps: u32, offset: f64) -> u32 {
    let mut drifted = (bps as f64 + offset).round().clamp(100.0, 4_900.0) as i64;
    if let Some(&(near, _)) = RATIO_TABLE
        .iter()
        .find(|&&(k, _)| (drifted - k as i64).unsigned_abs() as f64 / k as f64 <= 0.006)
    {
        let nudge = (near as f64 * 0.007).ceil() as i64;
        drifted = near as i64 + if offset >= 0.0 { nudge } else { -nudge };
    }
    drifted.clamp(100, 4_900) as u32
}

/// Whale routing: choose among the family's live primaries with weight
/// biased toward low operator ratios. `None` when no primary covers `t`.
fn pick_low_ratio_primary(
    rng: &mut StdRng,
    plan: &FamilyPlan,
    t: Timestamp,
) -> Option<(usize, Timestamp)> {
    let live: Vec<usize> = (0..plan.contracts.len())
        .filter(|&c| {
            let p = &plan.contracts[c];
            p.primary && p.window.0 <= t && t <= p.window.1
        })
        .collect();
    if live.is_empty() {
        return None;
    }
    // Prefer low ratios (negotiated deals) *and* early slots (the era
    // lead's contract): whale value must land on the dominant operators
    // without inflating the operator take.
    let weights: Vec<f64> = live
        .iter()
        .enumerate()
        .map(|(pos, &c)| {
            (1_500.0 / plan.contracts[c].bps as f64) / (pos + 1) as f64
        })
        .collect();
    Some((live[Weighted::new(&weights).sample(rng)], t))
}

/// Rescales sampled losses so they sum to `target`: whale-bucket losses
/// absorb the variance when possible (preserving the Figure 6 bucket
/// shape), otherwise everything scales.
fn rescale_losses(losses: &mut [f64], target: f64) {
    let small: f64 = losses.iter().filter(|&&l| l < 5_000.0).sum();
    let big: f64 = losses.iter().filter(|&&l| l >= 5_000.0).sum();
    if big > 0.0 && target > small {
        let factor = (target - small) / big;
        // Keep whales above the bucket floor where possible; a factor
        // below 0.4 would push them two buckets down, so fall back to
        // global scaling in that case.
        if factor >= 0.4 {
            for l in losses.iter_mut() {
                if *l >= 5_000.0 {
                    *l *= factor;
                }
            }
            return;
        }
    }
    let total = small + big;
    if total > 0.0 {
        let factor = target / total;
        for l in losses.iter_mut() {
            *l *= factor;
        }
    }
}

// ---------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments, clippy::too_many_lines, clippy::result_large_err)]
fn execute(
    rng: &mut StdRng,
    config: &WorldConfig,
    chain: &mut Chain,
    oracle: &Oracle,
    infra: &Infra,
    plans: &mut [FamilyPlan],
    pyramid: &PyramidPlan,
    events: Vec<TimedEv>,
    incident_count: usize,
) -> Result<GroundTruth, String> {
    let mut incidents: Vec<IncidentTruth> = Vec::with_capacity(incident_count);
    let mut pyramid_txs: Vec<TxId> = Vec::new();
    let mut launder_wallets: Vec<Vec<Address>> = vec![Vec::new(); plans.len()];
    let mut nft_counter: u64 = 0;
    let mut benign_users: Vec<Address> = Vec::new();
    let n_benign_users = config.scaled(config.benign_users) as usize;
    for i in 0..n_benign_users {
        benign_users.push(
            chain
                .create_eoa_funded(format!("benign/user/{i}").as_bytes(), ether(100))
                .map_err(|e| format!("benign user: {e}"))?,
        );
    }
    // Ablation-A3 splitters: one private per family plus one shared.
    let mut noisy_splitters: Vec<Address> = Vec::new();
    let mut shared_splitter: Option<Address> = None;
    if config.operator_splitter_noise {
        let deployer = chain
            .create_eoa_funded(b"benign/noisy-splitter-deployer", ether(1))
            .map_err(|e| e.to_string())?;
        for _ in 0..config.families.len() {
            noisy_splitters
                .push(chain.deploy_contract(deployer, ContractKind::Benign).map_err(|e| e.to_string())?);
        }
        shared_splitter =
            Some(chain.deploy_contract(deployer, ContractKind::Benign).map_err(|e| e.to_string())?);
    }
    // Recipients for benign splitter payouts.
    let split_sinks: Vec<Address> = (0..8)
        .map(|i| chain.create_eoa(format!("benign/sink/{i}").as_bytes()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("sink: {e}"))?;

    let mut benign_failures = 0usize;

    for (t, _prio, _seq, ev) in events {
        let now = chain.now().max(t);
        chain.set_time(now).map_err(|e| format!("clock: {e}"))?;
        match ev {
            Ev::Deploy { fam, contract } => {
                let plan = &mut plans[fam];
                let c = &mut plan.contracts[contract];
                let operator = plan.operators[c.operator_idx];
                // Multi-hop payouts: the deployed spec pays the first
                // intermediary; the true operator only appears at the
                // end of the forwarding chain.
                let payee = c.payout_hops.first().copied().unwrap_or(operator);
                let address = chain
                    .deploy_contract(
                        operator,
                        ContractKind::ProfitSharing(ProfitSharingSpec {
                            operator: payee,
                            operator_bps: c.bps,
                            entry: config.families[fam].entry.to_style(),
                        }),
                    )
                    .map_err(|e| format!("deploy: {e}"))?;
                c.address = Some(address);
            }
            Ev::Incident(plan) => {
                let contract = plans[plan.fam].contracts[plan.contract]
                    .address
                    .expect("incident before deployment");
                let ps_tx = run_incident(chain, oracle, infra, &plan, contract, &mut nft_counter)
                    .map_err(|e| format!("incident: {e}"))?;
                incidents.push(IncidentTruth {
                    family: plan.fam,
                    victim: plan.victim,
                    affiliate: plan.affiliate,
                    contract,
                    time: chain.now(),
                    kind: plan_kind_to_truth(&plan.kind, infra, nft_counter),
                    loss_usd: plan.loss_usd,
                    ps_tx,
                    simultaneous_with_first: plan.simultaneous_with_first,
                    reused_approval: plan.reused_approval,
                });
            }
            Ev::Revoke { victim, kind, contract_of: (fam, ci) } => {
                let Some(contract) = plans[fam].contracts[ci].address else { continue };
                match kind {
                    PlanKind::Erc20 { token, .. } => {
                        let (token, _) = infra.erc20_tokens[token];
                        // Only meaningful if an approval is outstanding.
                        if !chain.erc20_allowance(token, victim, contract).is_zero() {
                            chain
                                .approve_erc20(victim, token, contract, U256::ZERO)
                                .map_err(|e| format!("revoke: {e}"))?;
                        }
                    }
                    PlanKind::Nft { collection, .. } => {
                        let token = infra.nft_collections[collection];
                        if chain.nft_approved_for_all(token, victim, contract) {
                            chain
                                .approve_nft_all(victim, token, contract, false)
                                .map_err(|e| format!("revoke nft: {e}"))?;
                        }
                    }
                    PlanKind::Eth => {}
                }
            }
            Ev::OpTransfer { fam, from, to } => {
                let (a, b) = (plans[fam].operators[from], plans[fam].operators[to]);
                let amount = ether_f64(0.3 + rng.gen::<f64>() * 1.7);
                if chain.eth_balance(a) >= amount {
                    chain.transfer_eth(a, b, amount).map_err(|e| format!("op transfer: {e}"))?;
                }
            }
            Ev::OpSharedPhish { fam, a, b, link } => {
                // An old, already-labeled phishing EOA both operators
                // touch. Registered lazily from its deterministic seed
                // (the label pass derives the same address).
                let seed = format!("oldphish/{}/{link}", config.families[fam].slug);
                let phish = match chain.create_eoa(seed.as_bytes()) {
                    Ok(addr) => addr,
                    Err(daas_chain::ChainError::AccountExists(addr)) => addr,
                    Err(e) => return Err(format!("shared phish: {e}")),
                };
                let (a, b) = (plans[fam].operators[a], plans[fam].operators[b]);
                for op in [a, b] {
                    let amount = ether_f64(0.05 + rng.gen::<f64>() * 0.2);
                    if chain.eth_balance(op) >= amount {
                        chain.transfer_eth(op, phish, amount).map_err(|e| format!("shared: {e}"))?;
                    }
                }
            }
            Ev::Launder { fam, op } => {
                let op_addr = plans[fam].operators[op];
                let balance = chain.eth_balance(op_addr);
                let threshold = ether(2);
                if balance > threshold {
                    let amount = balance.mul_div(U256::from_u64(60), U256::from_u64(100));
                    // Adversarial laundering chains: the cash-out hops
                    // through fresh wallets before the mixer. 0 hops
                    // (the default) is the original direct deposit.
                    let mut from = op_addr;
                    for h in 0..config.adversarial.launder_hops {
                        let seed = format!("launder/{}/{op}/{h}", config.families[fam].slug);
                        let hop = match chain.create_eoa(seed.as_bytes()) {
                            Ok(a) => a,
                            Err(daas_chain::ChainError::AccountExists(a)) => a,
                            Err(e) => return Err(format!("launder hop: {e}")),
                        };
                        chain.transfer_eth(from, hop, amount).map_err(|e| format!("launder: {e}"))?;
                        launder_wallets[fam].push(hop);
                        from = hop;
                    }
                    chain
                        .transfer_eth(from, infra.mixer, amount)
                        .map_err(|e| format!("launder: {e}"))?;
                }
            }
            Ev::SplitterNoise { fam, op, shared } => {
                let splitter = if shared {
                    match shared_splitter {
                        Some(sp) => sp,
                        None => continue,
                    }
                } else {
                    match noisy_splitters.get(fam) {
                        Some(&sp) => sp,
                        None => continue,
                    }
                };
                let op = plans[fam].operators[op];
                let amount = ether_f64(0.5);
                if chain.eth_balance(op) >= amount {
                    // 70/30 — the operator share table contains 30%, so
                    // this benign donation is ratio-shaped.
                    chain
                        .split_payment(op, splitter, amount, &[(split_sinks[0], 7_000), (split_sinks[1], 3_000)])
                        .map_err(|e| format!("noise: {e}"))?;
                }
            }
            Ev::RewardRound { fam, era } => {
                let Some(policy) = config.families[fam].reward_policy else { continue };
                // The era's lead operator pays; qualification is by the
                // affiliate's accumulated ETH balance valued in USD (our
                // affiliates never spend, so balance ≈ ETH-side profit).
                let _ = era;
                let now = chain.now();
                let op_idx = plans[fam]
                    .op_eras
                    .iter()
                    .position(|e| e.0 <= now && now <= e.1 + 90 * 86_400)
                    .unwrap_or(plans[fam].operators.len() - 1);
                let operator = plans[fam].operators[op_idx];
                // Reward the top qualifying affiliates this round.
                let mut paid = 0;
                for &aff in plans[fam].affiliates.iter() {
                    if paid >= 5 {
                        break;
                    }
                    let balance_usd = oracle.wei_to_usd(chain.eth_balance(aff), now);
                    let level = policy
                        .level_thresholds_usd
                        .iter()
                        .rev()
                        .position(|&t| balance_usd >= t)
                        .map(|i| 2 - i);
                    let Some(level) = level else { continue };
                    let reward = eth_types::units::milliether(policy.reward_milli_eth[level]);
                    if chain.eth_balance(operator) > reward {
                        chain
                            .transfer_eth(operator, aff, reward)
                            .map_err(|e| format!("reward: {e}"))?;
                        paid += 1;
                    }
                }
            }
            Ev::Benign(kind) => {
                if run_benign(chain, infra, &benign_users, &split_sinks, kind).is_err() {
                    benign_failures += 1;
                }
            }
            Ev::HopForward { fam, contract, hop } => {
                let plan = &plans[fam];
                let c = &plan.contracts[contract];
                let from = c.payout_hops[hop];
                let to = c
                    .payout_hops
                    .get(hop + 1)
                    .copied()
                    .unwrap_or(plan.operators[c.operator_idx]);
                let balance = chain.eth_balance(from);
                if !balance.is_zero() {
                    chain.transfer_eth(from, to, balance).map_err(|e| format!("hop: {e}"))?;
                }
            }
            Ev::PyramidPay { contract, payer, upline_hi, upline_lo, bps, milli_eth } => {
                let payer = pyramid.users[payer];
                let (hi, lo) = (pyramid.users[upline_hi], pyramid.users[upline_lo]);
                let amount = eth_types::units::milliether(milli_eth);
                if payer != hi && payer != lo && chain.eth_balance(payer) >= amount {
                    let tx = chain
                        .split_payment(
                            payer,
                            pyramid.contracts[contract],
                            amount,
                            &[(hi, 10_000 - bps), (lo, bps)],
                        )
                        .map_err(|e| format!("pyramid pay: {e}"))?;
                    pyramid_txs.push(tx);
                }
            }
        }
    }

    if benign_failures * 50 > config.scaled(config.benign_txs) as usize {
        return Err(format!("too many benign execution failures: {benign_failures}"));
    }

    // Assemble ground truth.
    let mut families = Vec::with_capacity(plans.len());
    for (fi, (plan, cfg)) in plans.iter().zip(&config.families).enumerate() {
        families.push(FamilyTruth {
            id: fi,
            label: cfg.label.clone(),
            slug: cfg.slug.clone(),
            operators: plan.operators.clone(),
            contracts: plan
                .contracts
                .iter()
                .map(|c| ContractTruth {
                    address: c.address.expect("undeployed contract"),
                    operator: plan.operators[c.operator_idx],
                    operator_bps: c.bps,
                    entry: config.families[fi].entry.to_style(),
                    window: c.window,
                    primary: c.primary,
                    payout_hops: c.payout_hops.clone(),
                })
                .collect(),
            affiliates: plan.affiliates.clone(),
            window: (cfg.start, cfg.end),
            launder_wallets: std::mem::take(&mut launder_wallets[fi]),
        });
    }
    Ok(GroundTruth {
        families,
        incidents,
        pyramid_contracts: pyramid.contracts.clone(),
        pyramid_users: pyramid.users.clone(),
        pyramid_txs,
    })
}

fn plan_kind_to_truth(kind: &PlanKind, infra: &Infra, nft_counter: u64) -> IncidentKind {
    match kind {
        PlanKind::Eth => IncidentKind::Eth,
        PlanKind::Erc20 { token, .. } => IncidentKind::Erc20 { token: infra.erc20_tokens[*token].0 },
        PlanKind::Nft { collection, .. } => IncidentKind::Nft {
            token: infra.nft_collections[*collection],
            // The just-minted id (run_incident increments the counter).
            id: nft_counter - 1,
        },
    }
}

/// Executes one incident's transaction sequence; returns the
/// profit-sharing transaction id.
// ChainError carries U256 diagnostics by value; boxing it for these two
// internal helpers would cost more churn than the cold error path saves.
#[allow(clippy::result_large_err)]
fn run_incident(
    chain: &mut Chain,
    oracle: &Oracle,
    infra: &Infra,
    plan: &IncidentPlan,
    contract: Address,
    nft_counter: &mut u64,
) -> Result<TxId, daas_chain::ChainError> {
    let t = chain.now();
    let operator = chain
        .profit_sharing_spec(contract)
        .expect("incident target is a profit-sharing contract")
        .operator;
    match plan.kind {
        PlanKind::Eth => {
            let wei = oracle.usd_to_wei(plan.loss_usd, t);
            chain.mint_eth(plan.victim, wei)?;
            chain.claim_eth(plan.victim, contract, wei, plan.affiliate)
        }
        PlanKind::Erc20 { token, mode } => {
            let (token, _) = infra.erc20_tokens[token];
            let amount = token_amount(oracle, token, plan.loss_usd, t);
            chain.mint_erc20(token, plan.victim, amount)?;
            match mode {
                Erc20Mode::Approve => {
                    chain.approve_erc20(plan.victim, token, contract, U256::MAX)?;
                    chain.drain_erc20(operator, contract, token, plan.victim, amount, plan.affiliate)
                }
                Erc20Mode::Permit => chain.drain_erc20_permit(
                    operator,
                    contract,
                    token,
                    plan.victim,
                    amount,
                    plan.affiliate,
                ),
                Erc20Mode::Reuse => {
                    chain.drain_erc20(operator, contract, token, plan.victim, amount, plan.affiliate)
                }
            }
        }
        PlanKind::Nft { collection, mode } => {
            let token = infra.nft_collections[collection];
            let id = *nft_counter;
            *nft_counter += 1;
            chain.mint_nft(token, plan.victim, id)?;
            match mode {
                NftMode::ApprovalSweep => {
                    chain.approve_nft_all(plan.victim, token, contract, true)?;
                    chain.drain_nft(operator, contract, token, plan.victim, id)?;
                }
                NftMode::ZeroOrder => {
                    chain.zero_value_order(
                        operator,
                        infra.marketplace,
                        token,
                        id,
                        plan.victim,
                        contract,
                    )?;
                }
            }
            // The drainer backend liquidates and distributes within the
            // same block: separate transactions, same timestamp.
            // (Advancing the global clock here would accumulate drift
            // across the whole timeline in dense periods.)
            let price = oracle.usd_to_wei(plan.loss_usd, chain.now());
            chain.sell_nft(operator, infra.marketplace, token, id, contract, price)?;
            chain.distribute_eth(operator, contract, price, plan.affiliate)
        }
    }
}

/// Converts a USD loss to token smallest-units via the oracle.
fn token_amount(oracle: &Oracle, token: Address, usd: f64, t: Timestamp) -> U256 {
    // Invert the oracle's quote. Stable: units = usd * units_per_usd;
    // ratio tokens: usd / (ratio * eth_usd) ether.
    // We probe with 1 whole token to recover the quote scale.
    let one_probe = oracle
        .token_to_usd(token, U256::from_u128(1_000_000_000_000_000_000), t)
        .or_else(|| oracle.token_to_usd(token, U256::from_u64(1_000_000), t).map(|v| v * 1e12));
    match one_probe {
        Some(usd_per_whole) if usd_per_whole > 0.0 => {
            // usd_per_whole is USD per 1e18 units (18-dec view).
            let units = usd / usd_per_whole * 1e18;
            U256::from_u128(units as u128)
        }
        _ => U256::from_u128((usd * 1e6) as u128),
    }
}

#[allow(clippy::result_large_err)]
fn run_benign(
    chain: &mut Chain,
    infra: &Infra,
    users: &[Address],
    sinks: &[Address],
    kind: BenignKind,
) -> Result<(), daas_chain::ChainError> {
    use eth_types::units::milliether;
    match kind {
        BenignKind::P2p { from, to, milli_eth } => {
            if from == to {
                return Ok(());
            }
            chain.transfer_eth(users[from], users[to], milliether(milli_eth))?;
        }
        BenignKind::CexOut { cex, to, milli_eth } => {
            chain.transfer_eth(infra.cex[cex], users[to], milliether(milli_eth))?;
        }
        BenignKind::CexIn { from, cex } => {
            let amount = chain.eth_balance(users[from]).mul_div(U256::from_u64(20), U256::from_u64(100));
            if !amount.is_zero() {
                chain.transfer_eth(users[from], infra.cex[cex], amount)?;
            }
        }
        BenignKind::Swap { trader, token, milli_eth } => {
            let (token, _) = infra.erc20_tokens[token];
            chain.swap_eth_for_token(
                users[trader],
                infra.dex,
                token,
                milliether(milli_eth),
                milliether(milli_eth * 3),
            )?;
        }
        BenignKind::Airdrop { from, recipients, milli_eth } => {
            let outs: Vec<(Address, U256)> = recipients
                .iter()
                .map(|&r| (users[r], milliether(milli_eth)))
                .collect();
            chain.multi_transfer_eth(users[from], &outs)?;
        }
        BenignKind::Split { payer, splitter, milli_eth } => {
            // 50/50 and three-way splits: two-transfer shapes whose
            // ratios are NOT in the §4.3 table.
            let recipients = if splitter % 2 == 0 {
                vec![(sinks[0], 5_000u32), (sinks[1], 5_000u32)]
            } else {
                vec![(sinks[2], 3_400u32), (sinks[3], 3_300u32), (sinks[4], 3_300u32)]
            };
            chain.split_payment(users[payer], infra.splitters[splitter], milliether(milli_eth), &recipients)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Labels.
// ---------------------------------------------------------------------

fn assign_labels(
    rng: &mut StdRng,
    config: &WorldConfig,
    labels: &mut LabelStore,
    plans: &[FamilyPlan],
    truth: &GroundTruth,
) {
    let mut phish_counter = 60_000u32;
    let sources = LabelSource::PUBLIC;

    for (fi, plan) in plans.iter().enumerate() {
        // Labeled contracts, stratified: public incident reports track
        // victim volume, so roughly 60% of each family's high-volume
        // primaries are reported; the remaining quota comes from the
        // throwaway long tail (weighted mildly by traffic). This keeps
        // the seed's transaction coverage near the paper's 57% without
        // run-to-run swings.
        let n = plan.contracts.len();
        let k = ((n as f64) * config.label_contract_frac).round().max(1.0) as usize;
        let primaries: Vec<usize> =
            (0..n).filter(|&i| plan.contracts[i].primary).collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        if !primaries.is_empty() {
            let quota = ((primaries.len() as f64) * 0.45).round() as usize;
            // Uniform over primaries: weighting by volume would always
            // pick the biggest ones and overshoot the coverage target.
            let mut weights: Vec<f64> = vec![1.0; primaries.len()];
            for _ in 0..quota.min(primaries.len()).min(k) {
                let picker = Weighted::new(&weights);
                let idx = picker.sample(rng);
                chosen.push(primaries[idx]);
                weights[idx] = 0.0;
                if weights.iter().all(|&w| w == 0.0) {
                    break;
                }
            }
        }
        let mut weights: Vec<f64> = (0..n)
            .map(|i| {
                if chosen.contains(&i) {
                    0.0
                } else {
                    (plan.contracts[i].tx_count.max(1) as f64)
                        .powf(config.label_weight_exponent)
                }
            })
            .collect();
        while chosen.len() < k.min(n) {
            if weights.iter().all(|&w| w == 0.0) {
                break;
            }
            let picker = Weighted::new(&weights);
            let idx = picker.sample(rng);
            chosen.push(idx);
            weights[idx] = 0.0;
        }
        for ci in chosen {
            let address = plan.contracts[ci].address.expect("deployed");
            phish_counter += 1;
            let n_sources = 1 + rng.gen_range(0..3usize);
            let mut srcs = sources.to_vec();
            // Deterministic partial shuffle.
            for i in 0..n_sources {
                let j = rng.gen_range(i..srcs.len());
                srcs.swap(i, j);
            }
            for src in srcs.into_iter().take(n_sources) {
                labels.add_phishing(address, src, &format!("Fake_Phishing{phish_counter}"));
            }
        }

        // Family label on the top operator and the first primary (or
        // first) contract, for labeled families (§7.1 naming).
        if let Some(name) = truth.families[fi].label.clone() {
            labels.add(Label {
                address: plan.operators[0],
                source: LabelSource::Etherscan,
                category: LabelCategory::DrainerFamily,
                text: name.clone(),
            });
            if let Some(c) = plan.contracts.iter().find(|c| c.primary).or(plan.contracts.first()) {
                labels.add(Label {
                    address: c.address.expect("deployed"),
                    source: LabelSource::Etherscan,
                    category: LabelCategory::DrainerFamily,
                    text: name,
                });
            }
        }

        // Affiliate labels (Fake_Phishing on EOAs).
        for &aff in &plan.affiliates {
            if chance(rng, config.label_affiliate_frac) {
                phish_counter += 1;
                labels.add_phishing(aff, LabelSource::Etherscan, &format!("Fake_Phishing{phish_counter}"));
            }
        }

        // The shared old-phishing EOAs used for operator linkage are
        // labeled by construction (the clustering rule depends on it).
        for i in 1..plan.operators.len() {
            let phish = Address::from_key_seed(
                format!("oldphish/{}/{i}", config.families[fi].slug).as_bytes(),
            );
            phish_counter += 1;
            labels.add_phishing(phish, LabelSource::Etherscan, &format!("Fake_Phishing{phish_counter}"));
        }
    }

    // Adversarial pyramid mislabelling: community feeds widely report
    // pyramid contracts as phishing. A mislabelled splitter whose
    // history is full of table-ratio splits is a poisoned snowball
    // seed. Draws RNG only when the knob is on.
    let adv = &config.adversarial;
    if adv.pyramid_mislabel_frac > 0.0 {
        for &pc in &truth.pyramid_contracts {
            if chance(rng, adv.pyramid_mislabel_frac) {
                phish_counter += 1;
                labels.add_phishing(pc, LabelSource::Chainabuse, &format!("Fake_Phishing{phish_counter}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescale_hits_target_via_whales() {
        let mut losses = vec![50.0, 500.0, 2_000.0, 10_000.0, 20_000.0];
        rescale_losses(&mut losses, 60_000.0);
        let total: f64 = losses.iter().sum();
        assert!((total - 60_000.0).abs() < 1.0);
        // Small losses untouched.
        assert_eq!(&losses[..3], &[50.0, 500.0, 2_000.0]);
    }

    #[test]
    fn rescale_falls_back_to_global_scaling() {
        // Target below the small-loss total: everything shrinks.
        let mut losses = vec![100.0, 200.0, 10_000.0];
        rescale_losses(&mut losses, 1_000.0);
        let total: f64 = losses.iter().sum();
        assert!((total - 1_000.0).abs() < 1.0);
        assert!(losses[0] < 100.0);
    }

    #[test]
    fn rescale_no_whales() {
        let mut losses = vec![100.0, 300.0];
        rescale_losses(&mut losses, 800.0);
        assert!((losses.iter().sum::<f64>() - 800.0).abs() < 1.0);
    }

    #[test]
    fn rescale_empty_is_noop() {
        let mut losses: Vec<f64> = vec![];
        rescale_losses(&mut losses, 100.0);
        assert!(losses.is_empty());
    }
}
