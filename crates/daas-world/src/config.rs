//! World configuration: the nine calibrated families and all generator
//! parameters.

use daas_chain::{month_start, EntryStyle, Timestamp};
use serde::{Deserialize, Serialize};

/// End of the paper's collection window, 2025-04-01 ("Now" in Table 2).
pub fn collection_end() -> Timestamp {
    month_start(2025, 4)
}

/// Start of the paper's collection window, 2023-03-01.
pub fn collection_start() -> Timestamp {
    month_start(2023, 3)
}

/// The paper's observed operator profit-sharing ratios (§4.3) as
/// `(basis points, transaction share)`. 20%, 15% and 17.5% dominate at
/// 46.0%, 19.3% and 9.2%; the remaining six ratios split the rest.
pub const RATIO_TABLE: [(u32, f64); 9] = [
    (2000, 0.460),
    (1500, 0.193),
    (1750, 0.092),
    (1000, 0.060),
    (2500, 0.055),
    (1250, 0.050),
    (3000, 0.040),
    (3300, 0.030),
    (4000, 0.020),
];

/// How a family's contracts receive victim ETH (Table 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryCfg {
    /// Payable function with this name.
    Named(String),
    /// Payable fallback.
    Fallback,
}

impl EntryCfg {
    /// Named-payable constructor.
    pub fn named(name: &str) -> Self {
        EntryCfg::Named(name.to_owned())
    }

    /// Converts to the chain-level entry style.
    pub fn to_style(&self) -> EntryStyle {
        match self {
            EntryCfg::Named(n) => EntryStyle::NamedPayable(n.clone()),
            EntryCfg::Fallback => EntryStyle::PayableFallback,
        }
    }
}

/// Affiliate leveling-and-reward policy (§7.2): tier thresholds on
/// affiliate profits and the ETH rewards periodically paid to
/// qualifying affiliates (Inferno: 0.5 / 1 / 3 ETH by level).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardPolicy {
    /// Profit thresholds (USD) for levels 1, 2, 3.
    pub level_thresholds_usd: [f64; 3],
    /// Reward per level, in milli-ETH.
    pub reward_milli_eth: [u64; 3],
}

/// Configuration of one DaaS family, calibrated to a Table 2 column.
/// Fully serialisable: custom scenarios can be loaded from JSON via
/// `daas-lab --config`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyConfig {
    /// Etherscan family label, if the family is publicly named. `None`
    /// reproduces the paper's fallback naming by operator-address prefix
    /// (the `0x0000b6` family).
    pub label: Option<String>,
    /// Short slug used for seeds and toolkit file content derivation.
    pub slug: String,
    /// Number of profit-sharing contracts.
    pub contracts: u32,
    /// Number of operator accounts.
    pub operators: u32,
    /// Number of affiliate accounts.
    pub affiliates: u32,
    /// Number of distinct victim accounts.
    pub victims: u32,
    /// Total family profits over the window, USD.
    pub profits_usd: f64,
    /// Activity window start.
    pub start: Timestamp,
    /// Activity window end.
    pub end: Timestamp,
    /// ETH entry point style (Table 3).
    pub entry: EntryCfg,
    /// Target primary-contract lifecycle in days (§7.2), for families
    /// whose contracts rotate on a schedule. `None` = no primaries.
    pub primary_lifecycle_days: Option<f64>,
    /// Toolkit file names (the §7.2 fingerprint surface).
    pub toolkit_files: Vec<String>,
    /// Number of toolkit builds (content versions) circulated per file
    /// over the family's lifetime.
    pub toolkit_versions: u32,
    /// Affiliate leveling/reward policy, for the families that run one
    /// (§7.2: Angel and Inferno).
    pub reward_policy: Option<RewardPolicy>,
    /// Per-family override of the global incident asset-kind mix
    /// `(ETH, ERC-20, NFT)`. Lets adversarial scenarios model
    /// NFT-phishing-heavy families ("With Trail to Follow") whose flow
    /// shapes differ from the calibrated 50/35/15 split. `None` keeps
    /// [`KIND_MIX`]. Weights are relative; they need not sum to 1.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kind_mix: Option<(f64, f64, f64)>,
}

/// Adversarial generator knobs (the `exp_robustness` scenario surface).
/// Everything defaults to "off", and the generator draws no RNG and
/// touches no state for disabled knobs, so a config with the default
/// `AdversarialConfig` builds a byte-identical world to one predating
/// this struct. The field is likewise omitted from serialised configs
/// when left at the default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversarialConfig {
    /// Fraction of profit-sharing contracts whose deployed ratio drifts
    /// off the §4.3 menu by a small random offset, modelling toolkit
    /// updates the static ratio list has not caught up with.
    #[serde(default)]
    pub ratio_drift_frac: f64,
    /// Maximum drift magnitude in basis points. Drifted contracts move
    /// by a uniform offset in `[max/2, max]` (either direction), so any
    /// positive setting ≥ 25 bps lands outside the classifier's 0.5%
    /// relative tolerance. Kept as `f64` so validation can reject
    /// negative drift rather than silently wrapping.
    #[serde(default)]
    pub ratio_drift_bps: f64,
    /// Fraction of contracts deployed at an off-menu ratio drawn from
    /// [`Self::off_menu_bps`] instead of the §4.3 table.
    #[serde(default)]
    pub off_menu_frac: f64,
    /// The off-menu operator shares (basis points) those contracts use.
    /// Must not overlap the known table within the classifier tolerance
    /// — overlapping entries would make ground truth ambiguous.
    #[serde(default)]
    pub off_menu_bps: Vec<u32>,
    /// Fraction of contracts whose operator share is paid to a fresh
    /// intermediary wallet chain instead of the operator directly
    /// (multi-hop profit splits). The true operator only appears
    /// `payout_hops` transfers downstream.
    #[serde(default)]
    pub payout_hop_frac: f64,
    /// Length of each intermediary chain (must be ≥ 1 when
    /// `payout_hop_frac > 0`).
    #[serde(default)]
    pub payout_hops: u32,
    /// Mixer-style laundering: operator cash-outs route through this
    /// many fresh wallets before reaching the mixer (0 = direct
    /// deposits, the calibrated behaviour).
    #[serde(default)]
    pub launder_hops: u32,
    /// Forsage-style pyramid contracts running as confusable background
    /// traffic: referral payouts through payment splitters at
    /// table-shaped ratios.
    #[serde(default)]
    pub pyramid_contracts: u32,
    /// Participant accounts in the pyramid scheme.
    #[serde(default)]
    pub pyramid_users: u32,
    /// Pyramid referral payments over the collection window (before
    /// scaling).
    #[serde(default)]
    pub pyramid_txs: u32,
    /// Fraction of pyramid contracts falsely reported as phishing by
    /// public label sources — pyramids are widely mislabelled scams, and
    /// a mislabelled splitter is a poisoned snowball seed.
    #[serde(default)]
    pub pyramid_mislabel_frac: f64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            ratio_drift_frac: 0.0,
            ratio_drift_bps: 0.0,
            off_menu_frac: 0.0,
            off_menu_bps: Vec::new(),
            payout_hop_frac: 0.0,
            payout_hops: 0,
            launder_hops: 0,
            pyramid_contracts: 0,
            pyramid_users: 0,
            pyramid_txs: 0,
            pyramid_mislabel_frac: 0.0,
        }
    }
}

impl AdversarialConfig {
    /// True when every knob is at its default — the generator then
    /// behaves exactly as if the struct did not exist.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// `skip_serializing_if` adapter.
    pub fn is_default_ref(cfg: &AdversarialConfig) -> bool {
        cfg.is_default()
    }

    /// Any knob that rewrites deployed profit-sharing ratios.
    pub fn ratio_attack_on(&self) -> bool {
        self.ratio_drift_frac > 0.0 || self.off_menu_frac > 0.0
    }

    /// Multi-hop payout knob active.
    pub fn payout_hops_on(&self) -> bool {
        self.payout_hop_frac > 0.0
    }

    /// Pyramid background traffic active.
    pub fn pyramid_on(&self) -> bool {
        self.pyramid_txs > 0
    }
}

/// Victim-loss buckets: `(low_usd, high_usd, probability)`, sampled
/// log-uniformly inside each bucket. Calibrated so that the bucket
/// probabilities reproduce Figure 6 (50.9% under $100, 83.5% under
/// $1,000) and the mean lands near total-profits / victims ≈ $1.76k.
pub const LOSS_BUCKETS: [(f64, f64, f64); 4] = [
    (5.0, 100.0, 0.509),
    (100.0, 1_000.0, 0.326),
    (1_000.0, 5_000.0, 0.101),
    (5_000.0, 45_000.0, 0.064),
];

/// Incident asset-kind mix: (ETH, ERC-20, NFT) — Figure 3's three
/// profit-sharing scenarios.
pub const KIND_MIX: (f64, f64, f64) = (0.50, 0.35, 0.15);

/// Full generator configuration. Serialisable end to end: dump the
/// paper preset with `daas-lab --dump-config`, edit, reload with
/// `--config`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master RNG seed; the entire world is a pure function of it.
    pub seed: u64,
    /// Linear scale on all population counts (1.0 = the paper's scale).
    pub scale: f64,
    /// The families (defaults to the nine Table 2 families).
    pub families: Vec<FamilyConfig>,
    /// Benign background transactions (before scaling).
    pub benign_txs: u32,
    /// Benign user population (before scaling).
    pub benign_users: u32,
    /// Drainer website deployments (before scaling). Sized so detected
    /// sites land near the paper's 32,819 after TLS / keyword / crawl
    /// attrition.
    pub drainer_sites: u32,
    /// Benign certificates in the CT stream (before scaling).
    pub benign_certs: u32,
    /// Fraction of victims hit more than once (8,856 / 76,582).
    pub repeat_victim_frac: f64,
    /// Of repeat victims: P(simultaneous multi-sign only) — §6.1's 78.1%
    /// minus the overlap.
    pub repeat_sim_only: f64,
    /// Of repeat victims: P(unrevoked-approval re-drain only).
    pub repeat_revoke_only: f64,
    /// Of repeat victims: P(both), tuned so total profit-sharing
    /// transactions land at 87,077.
    pub repeat_both: f64,
    /// Fraction of contracts exposed by public label sources
    /// (seed 391 / expanded 1,910).
    pub label_contract_frac: f64,
    /// Exponent biasing label selection toward high-traffic contracts
    /// (weight = tx_count^exponent).
    pub label_weight_exponent: f64,
    /// Fraction of affiliate accounts carrying a public phishing label
    /// (tunes §8.1's 10.8% overall coverage).
    pub label_affiliate_frac: f64,
    /// Ablation A3: when true, some operators also use benign payment
    /// splitters, stressing the expansion guard with ratio-matching
    /// benign contracts.
    pub operator_splitter_noise: bool,
    /// Share of phishing sites served over TLS (paper: >70%).
    pub site_tls_rate: f64,
    /// Share of drainer domains containing a triage-visible keyword
    /// (exact or typo).
    pub site_keyword_rate: f64,
    /// Of keyword-bearing drainer domains, share using a leet-typo
    /// spelling instead of the exact keyword.
    pub site_typo_rate: f64,
    /// Share of drainer sites independently reported to the community
    /// (drives fingerprint-database expansion toward 867).
    pub site_reported_rate: f64,
    /// Model-drift knob (§5.2's discussed limitation): when set, the
    /// given family index deploys *all* its contracts at this
    /// basis-point ratio — typically one outside the known §4.3 table —
    /// so harnesses can measure how a static ratio list decays as the
    /// ecosystem evolves.
    pub novel_ratio: Option<(usize, u32)>,
    /// Share of sites already taken down when the crawler arrives.
    pub site_down_rate: f64,
    /// Adversarial knobs (ratio drift, multi-hop payouts, laundering
    /// chains, pyramid background). Off by default and omitted from
    /// serialised configs when off; see [`AdversarialConfig`].
    #[serde(default, skip_serializing_if = "AdversarialConfig::is_default_ref")]
    pub adversarial: AdversarialConfig,
}

impl WorldConfig {
    /// The paper-scale configuration: exact Table 2 counts, 87,077
    /// profit-sharing transactions, 76,582 victims.
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            scale: 1.0,
            families: table2_families(),
            benign_txs: 60_000,
            benign_users: 12_000,
            drainer_sites: 66_000,
            benign_certs: 50_000,
            repeat_victim_frac: 8_856.0 / 76_582.0,
            repeat_sim_only: 0.596,
            repeat_revoke_only: 0.101,
            repeat_both: 0.185,
            label_contract_frac: 391.0 / 1_910.0,
            label_weight_exponent: 0.12,
            label_affiliate_frac: 0.072,
            operator_splitter_noise: false,
            site_tls_rate: 0.88,
            site_keyword_rate: 0.93,
            site_typo_rate: 0.08,
            site_reported_rate: 0.30,
            novel_ratio: None,
            site_down_rate: 0.03,
            adversarial: AdversarialConfig::default(),
        }
    }

    /// A CI-sized world (~5% of paper scale): full pipeline in well under
    /// a second.
    pub fn small(seed: u64) -> Self {
        WorldConfig { scale: 0.05, ..Self::paper_scale(seed) }
    }

    /// A minimal world for unit tests (~1% of paper scale).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig { scale: 0.01, ..Self::paper_scale(seed) }
    }

    /// The smallest useful world (~0.5% of paper scale): every family
    /// degenerates to a handful of accounts. Used by the live-pipeline
    /// equivalence suites, where each window boundary runs a full batch
    /// oracle.
    pub fn micro(seed: u64) -> Self {
        WorldConfig { scale: 0.005, ..Self::paper_scale(seed) }
    }

    /// Applies the configured scale to a population count (at least 1).
    pub fn scaled(&self, n: u32) -> u32 {
        ((n as f64 * self.scale).round() as u32).max(1)
    }

    /// Basic sanity checks; called by the generator before building.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.scale > 0.0 && self.scale <= 10.0) {
            return Err(format!("scale {} out of range (0, 10]", self.scale));
        }
        if self.families.is_empty() {
            return Err("no families configured".into());
        }
        for f in &self.families {
            if f.start >= f.end {
                return Err(format!("family {} has empty window", f.slug));
            }
            if f.victims < f.contracts && (f.victims as f64 * self.scale) >= 1.0 {
                return Err(format!(
                    "family {} has more contracts than victims; every contract needs a transaction",
                    f.slug
                ));
            }
        }
        let probs = [self.repeat_sim_only, self.repeat_revoke_only, self.repeat_both];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) || probs.iter().sum::<f64>() > 1.0 {
            return Err("repeat-victim flag probabilities invalid".into());
        }
        for f in &self.families {
            if let Some((eth, erc20, nft)) = f.kind_mix {
                let weights = [eth, erc20, nft];
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                    return Err(format!("family {} kind_mix has negative weight", f.slug));
                }
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Err(format!("family {} kind_mix sums to zero", f.slug));
                }
            }
        }
        self.validate_adversarial()
    }

    /// Sanity checks on the adversarial knobs.
    fn validate_adversarial(&self) -> Result<(), String> {
        let adv = &self.adversarial;
        for (name, frac) in [
            ("ratio_drift_frac", adv.ratio_drift_frac),
            ("off_menu_frac", adv.off_menu_frac),
            ("payout_hop_frac", adv.payout_hop_frac),
            ("pyramid_mislabel_frac", adv.pyramid_mislabel_frac),
        ] {
            if !(0.0..=1.0).contains(&frac) || frac.is_nan() {
                return Err(format!("adversarial {name} {frac} outside [0, 1]"));
            }
        }
        if adv.ratio_drift_bps < 0.0 || adv.ratio_drift_bps.is_nan() {
            return Err(format!("adversarial ratio_drift_bps {} is negative", adv.ratio_drift_bps));
        }
        if adv.ratio_drift_frac > 0.0 {
            // Anything under 25 bps can sit inside the classifier's 0.5%
            // relative tolerance of a table ratio — the knob would then
            // claim an attack the detector provably shrugs off.
            if !(25.0..=1_000.0).contains(&adv.ratio_drift_bps) {
                return Err(format!(
                    "adversarial ratio_drift_bps {} outside [25, 1000]",
                    adv.ratio_drift_bps
                ));
            }
        }
        if adv.off_menu_frac > 0.0 && adv.off_menu_bps.is_empty() {
            return Err("adversarial off_menu_frac set with empty off_menu_bps".into());
        }
        for &bps in &adv.off_menu_bps {
            if bps == 0 || bps >= 5_000 {
                return Err(format!("adversarial off-menu ratio {bps} outside (0, 5000)"));
            }
            // The off-menu menu must not overlap the §4.3 table within the
            // classifier tolerance, or ground-truth labels turn ambiguous.
            for (known, _) in RATIO_TABLE {
                let rel = (bps as f64 - known as f64).abs() / known as f64;
                if rel <= 0.005 {
                    return Err(format!(
                        "adversarial off-menu ratio {bps} overlaps table ratio {known}"
                    ));
                }
            }
        }
        if adv.payout_hop_frac > 0.0 && adv.payout_hops == 0 {
            return Err("adversarial payout_hop_frac set with empty hop chain".into());
        }
        if adv.payout_hops > 8 {
            return Err(format!("adversarial payout_hops {} exceeds 8", adv.payout_hops));
        }
        if adv.launder_hops > 8 {
            return Err(format!("adversarial launder_hops {} exceeds 8", adv.launder_hops));
        }
        if adv.pyramid_on() && (adv.pyramid_contracts == 0 || adv.pyramid_users < 2) {
            return Err("adversarial pyramid_txs set without contracts and ≥ 2 users".into());
        }
        Ok(())
    }
}

/// The nine Table 2 families. Where the table's OCR is ambiguous about
/// two contract/operator cells, the allocation below is chosen so the
/// published totals hold exactly: Σcontracts = 1,910, Σoperators = 56,
/// Σaffiliates = 6,087, Σvictims = 76,582, Σprofits ≈ $134.9M.
pub fn table2_families() -> Vec<FamilyConfig> {
    let end_now = collection_end();
    vec![
        FamilyConfig {
            label: Some("Angel Drainer".into()),
            slug: "angel".into(),
            contracts: 1_239,
            operators: 29,
            affiliates: 3_338,
            victims: 37_755,
            profits_usd: 53.1e6,
            start: month_start(2023, 4),
            end: end_now,
            entry: EntryCfg::named("Claim"),
            primary_lifecycle_days: Some(102.3),
            toolkit_files: vec!["settings.js".into(), "webchunk.js".into()],
            toolkit_versions: 160,
            reward_policy: Some(RewardPolicy {
                level_thresholds_usd: [100_000.0, 1_000_000.0, 5_000_000.0],
                reward_milli_eth: [500, 1_000, 3_000],
            }),
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Inferno Drainer".into()),
            slug: "inferno".into(),
            contracts: 435,
            operators: 7,
            affiliates: 1_958,
            victims: 32_740,
            profits_usd: 59.0e6,
            start: month_start(2023, 5),
            end: month_start(2024, 11),
            entry: EntryCfg::Fallback,
            primary_lifecycle_days: Some(198.6),
            toolkit_files: vec!["seaport.js".into(), "wallet_connect.js".into()],
            toolkit_versions: 130,
            reward_policy: Some(RewardPolicy {
                level_thresholds_usd: [10_000.0, 100_000.0, 1_000_000.0],
                reward_milli_eth: [500, 1_000, 3_000],
            }),
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Pink Drainer".into()),
            slug: "pink".into(),
            contracts: 94,
            operators: 10,
            affiliates: 279,
            victims: 2_814,
            profits_usd: 14.7e6,
            start: month_start(2023, 4),
            end: month_start(2024, 5),
            entry: EntryCfg::named("Network Merge"),
            primary_lifecycle_days: Some(96.8),
            toolkit_files: vec!["contract.js".into(), "main.js".into(), "vendor.js".into()],
            toolkit_versions: 70,
            reward_policy: None,
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Ace Drainer".into()),
            slug: "ace".into(),
            contracts: 6,
            operators: 2,
            affiliates: 335,
            victims: 1_879,
            profits_usd: 3.1e6,
            start: month_start(2023, 10),
            end: end_now,
            entry: EntryCfg::named("claimRewards"),
            primary_lifecycle_days: None,
            toolkit_files: vec!["ace_connect.js".into(), "payload.js".into()],
            toolkit_versions: 45,
            reward_policy: None,
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Pussy Drainer".into()),
            slug: "pussy".into(),
            contracts: 2,
            operators: 2,
            affiliates: 30,
            victims: 537,
            profits_usd: 1.1e6,
            start: collection_start(),
            end: month_start(2023, 10),
            entry: EntryCfg::named("claim"),
            primary_lifecycle_days: None,
            toolkit_files: vec!["pussy_loader.js".into()],
            toolkit_versions: 25,
            reward_policy: None,
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Venom Drainer".into()),
            slug: "venom".into(),
            contracts: 1,
            operators: 1,
            affiliates: 77,
            victims: 491,
            profits_usd: 1.3e6,
            start: month_start(2023, 4),
            end: month_start(2023, 8),
            entry: EntryCfg::named("mint"),
            primary_lifecycle_days: None,
            toolkit_files: vec!["venom_core.js".into(), "inject.js".into()],
            toolkit_versions: 18,
            reward_policy: None,
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Medusa Drainer".into()),
            slug: "medusa".into(),
            contracts: 130,
            operators: 3,
            affiliates: 56,
            victims: 306,
            profits_usd: 2.5e6,
            start: month_start(2024, 5),
            end: end_now,
            entry: EntryCfg::named("securityUpdate"),
            primary_lifecycle_days: None,
            toolkit_files: vec!["medusa_sdk.js".into(), "guard.js".into()],
            toolkit_versions: 35,
            reward_policy: None,
            kind_mix: None,
        },
        FamilyConfig {
            // The unlabeled family the paper names by operator prefix
            // ("0x0000b6"). Our generated operator address differs, so the
            // reproduced Table 2 shows whatever prefix the seed yields.
            label: None,
            slug: "anon-b6".into(),
            contracts: 2,
            operators: 1,
            affiliates: 8,
            victims: 43,
            profits_usd: 0.1e6,
            start: month_start(2023, 7),
            end: month_start(2023, 8),
            entry: EntryCfg::Fallback,
            primary_lifecycle_days: None,
            toolkit_files: vec!["loader.js".into()],
            toolkit_versions: 10,
            reward_policy: None,
            kind_mix: None,
        },
        FamilyConfig {
            label: Some("Spawn Drainer".into()),
            slug: "spawn".into(),
            contracts: 1,
            operators: 1,
            affiliates: 6,
            victims: 17,
            profits_usd: 0.01e6,
            start: month_start(2023, 5),
            end: month_start(2023, 9),
            entry: EntryCfg::named("claim"),
            primary_lifecycle_days: None,
            toolkit_files: vec!["spawn_kit.js".into()],
            toolkit_versions: 6,
            reward_policy: None,
            kind_mix: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_paper() {
        let fams = table2_families();
        assert_eq!(fams.len(), 9);
        assert_eq!(fams.iter().map(|f| f.contracts).sum::<u32>(), 1_910);
        assert_eq!(fams.iter().map(|f| f.operators).sum::<u32>(), 56);
        assert_eq!(fams.iter().map(|f| f.affiliates).sum::<u32>(), 6_087);
        assert_eq!(fams.iter().map(|f| f.victims).sum::<u32>(), 76_582);
        let profits: f64 = fams.iter().map(|f| f.profits_usd).sum();
        assert!((profits - 134.91e6).abs() < 0.1e6, "profits {profits}");
        // The dominant three hold 93.9% of profits.
        let top3: f64 = fams.iter().take(3).map(|f| f.profits_usd).sum();
        let share = top3 / profits * 100.0;
        assert!((share - 93.9).abs() < 0.3, "dominant share {share}");
    }

    #[test]
    fn ratio_table_sums_to_one() {
        let total: f64 = RATIO_TABLE.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // All operator shares are strictly less than half: operators take
        // the smaller cut (§4.3).
        assert!(RATIO_TABLE.iter().all(|(bps, _)| *bps < 5_000));
    }

    #[test]
    fn loss_buckets_sum_to_one_and_match_fig6() {
        let total: f64 = LOSS_BUCKETS.iter().map(|(_, _, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // 83.5% below $1,000.
        let below_1k: f64 = LOSS_BUCKETS.iter().filter(|(_, hi, _)| *hi <= 1_000.0).map(|(_, _, p)| p).sum();
        assert!((below_1k - 0.835).abs() < 1e-9);
    }

    #[test]
    fn repeat_flags_reconstruct_tx_total() {
        let cfg = WorldConfig::paper_scale(0);
        let repeat = (76_582.0 * cfg.repeat_victim_frac).round();
        assert_eq!(repeat as u64, 8_856);
        // txs = victims + repeats (2nd incident) + both-flag (3rd).
        let txs = 76_582.0 + repeat + (repeat * cfg.repeat_both).round();
        assert!((txs - 87_077.0).abs() < 2.0, "txs {txs}");
    }

    #[test]
    fn presets_validate() {
        assert!(WorldConfig::paper_scale(1).validate().is_ok());
        assert!(WorldConfig::small(1).validate().is_ok());
        assert!(WorldConfig::tiny(1).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = WorldConfig::paper_scale(1);
        cfg.scale = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = WorldConfig::paper_scale(1);
        cfg.families.clear();
        assert!(cfg.validate().is_err());
        let mut cfg = WorldConfig::paper_scale(1);
        cfg.families[0].end = cfg.families[0].start;
        assert!(cfg.validate().is_err());
        let mut cfg = WorldConfig::paper_scale(1);
        cfg.repeat_both = 2.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scaled_floors_at_one() {
        let cfg = WorldConfig::tiny(1);
        assert_eq!(cfg.scaled(1), 1);
        assert_eq!(cfg.scaled(10), 1); // 0.1 rounds to 0, floored to 1
        assert_eq!(cfg.scaled(1_000), 10);
    }

    #[test]
    fn entry_cfg_conversion() {
        assert_eq!(
            EntryCfg::named("Claim").to_style(),
            EntryStyle::NamedPayable("Claim".into())
        );
        assert_eq!(EntryCfg::Fallback.to_style(), EntryStyle::PayableFallback);
    }
}
