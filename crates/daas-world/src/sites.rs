//! Phishing-website and certificate population.
//!
//! Generates the observable surface §8.2 works on: drainer site
//! deployments (domains + served files), benign sites, and the CT
//! certificate stream, plus the ground truth needed to score detection.

use std::collections::HashSet;

use ct_watch::CertRecord;
use daas_chain::Timestamp;
use eth_types::{keccak256, Address};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use webscan::{Fingerprint, Site, SiteFile};

use crate::config::WorldConfig;
use crate::sampler::{chance, uniform_time, Weighted};
use crate::truth::GroundTruth;

/// When the paper's CT watcher started (detections span 2023-12-01 to
/// 2025-04-01).
pub fn detection_start() -> Timestamp {
    daas_chain::month_start(2023, 12)
}

/// Ground truth for one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteTruth {
    /// Family index, `None` for benign sites.
    pub family: Option<usize>,
    /// Deploying affiliate for drainer sites.
    pub affiliate: Option<Address>,
    /// Independently reported to the community (fingerprint-expansion
    /// source).
    pub reported: bool,
    /// Whether the domain carries a triage-visible keyword (exact or
    /// typo).
    pub keyword_visible: bool,
}

/// The generated website world.
#[derive(Debug, Clone, Default)]
pub struct SitePopulation {
    /// All sites, drainer and benign (only benign sites that could ever
    /// be crawled — i.e. keyword-bearing — are materialised).
    pub sites: Vec<Site>,
    /// Parallel ground truth for `sites`.
    pub truth: Vec<SiteTruth>,
    /// The CT stream: one cert per TLS site, sorted by issuance time.
    pub certs: Vec<CertRecord>,
    /// Initial fingerprints ("acquired from Telegram groups"): the first
    /// two builds of every family toolkit file.
    pub seed_fingerprints: Vec<Fingerprint>,
    /// Indices into `sites` of community-reported drainer sites.
    pub reported: Vec<usize>,
    /// Domains already taken down when the crawler arrives.
    pub down: HashSet<String>,
}

/// TLD mix for drainer domains: Table 4's top ten plus a long tail of
/// miscellaneous TLDs, each kept under the table's 10th share so the
/// top-10 ranking is stable.
const PHISH_TLDS: [(&str, f64); 10] = [
    ("com", 30.0),
    ("dev", 13.6),
    ("app", 11.6),
    ("xyz", 7.5),
    ("net", 5.6),
    ("org", 3.8),
    ("network", 2.4),
    ("io", 2.0),
    ("top", 1.6),
    ("online", 1.4),
];

const MISC_TLDS: [&str; 25] = [
    "site", "live", "info", "pro", "cc", "me", "club", "space", "store", "fun", "run", "lol",
    "vip", "life", "world", "today", "digital", "finance", "zone", "cloud", "tech", "link",
    "click", "wiki", "monster",
];

/// Keywords the *generator* uses to brand drainer domains. A subset of
/// the detector's list (scammers and defenders converge on the same
/// vocabulary) — drawn only from words of length ≥ 4 so typo variants
/// can clear the 0.8 similarity bar.
const DOMAIN_KEYWORDS: [&str; 18] = [
    "claim", "airdrop", "mint", "reward", "rewards", "stake", "bridge", "whitelist", "presale",
    "giveaway", "bonus", "migration", "eligible", "snapshot", "redeem", "unlock", "portal",
    "allocation",
];

/// Project words drainer sites impersonate.
const PROJECT_WORDS: [&str; 16] = [
    "azuki", "pepe", "zksync", "arbitrum", "blur", "opensea", "uniswap", "linea", "starknet",
    "blast", "layerzero", "eigen", "celestia", "metamask", "optimism", "apecoin",
];

/// Neutral words for keyword-free drainer domains and benign sites.
const NEUTRAL_WORDS: [&str; 20] = [
    "vaultic", "zentro", "nexora", "lumio", "orbix", "quanta", "stellarix", "novum", "arcadia",
    "polarex", "meridia", "kestrel", "aurivon", "corvid", "santero", "velaris", "ondura",
    "tessera", "bravos", "calypso",
];

/// Benign site vocabulary (never overlaps the keyword list).
const BENIGN_WORDS: [&str; 24] = [
    "weather", "bakery", "garden", "news", "recipes", "travel", "fitness", "photo", "books",
    "music", "school", "dental", "plumbing", "roofing", "florist", "cafe", "museum", "cycling",
    "karate", "pottery", "law", "realty", "consulting", "insurance",
];

/// Ambiguous benign words that legitimately contain or resemble
/// suspicious keywords ("claims processing", "staking ladders"...).
const BENIGN_AMBIG: [&str; 6] = ["claims", "rewards", "minty", "bridge", "portal", "tokens"];

/// Deterministic 64-bit content digest for a toolkit build.
fn build_hash(slug: &str, file: &str, version: u32) -> u64 {
    let mut buf = Vec::with_capacity(slug.len() + file.len() + 12);
    buf.extend_from_slice(b"toolkit:");
    buf.extend_from_slice(slug.as_bytes());
    buf.push(b'/');
    buf.extend_from_slice(file.as_bytes());
    buf.extend_from_slice(&version.to_be_bytes());
    keccak256(&buf).to_low_u64()
}

/// Deterministic digest for benign file content.
fn benign_hash(domain: &str, file: &str) -> u64 {
    let mut buf = Vec::with_capacity(domain.len() + file.len() + 8);
    buf.extend_from_slice(b"benign:");
    buf.extend_from_slice(domain.as_bytes());
    buf.push(b'/');
    buf.extend_from_slice(file.as_bytes());
    keccak256(&buf).to_low_u64()
}

/// Leet-speak typo of a keyword: first substitutable letter becomes a
/// digit lookalike. One substitution in a ≥ 4-letter word keeps
/// Levenshtein similarity ≥ 0.75; we only call this for len ≥ 5 (≥ 0.8).
fn leet_typo(word: &str) -> String {
    let mut out = String::with_capacity(word.len());
    let mut done = false;
    for c in word.chars() {
        let sub = match c {
            'o' if !done => '0',
            'i' if !done => '1',
            'e' if !done => '3',
            'a' if !done => '4',
            _ => c,
        };
        if sub != c {
            done = true;
        }
        out.push(sub);
    }
    out
}

struct DomainForge {
    used: HashSet<String>,
    tld_picker: Weighted,
    tlds: Vec<&'static str>,
}

impl DomainForge {
    fn new() -> Self {
        let mut tlds: Vec<&'static str> = PHISH_TLDS.iter().map(|(t, _)| *t).collect();
        let mut weights: Vec<f64> = PHISH_TLDS.iter().map(|(_, w)| *w).collect();
        let misc_total = 100.0 - weights.iter().sum::<f64>();
        let per_misc = misc_total / MISC_TLDS.len() as f64;
        for t in MISC_TLDS {
            tlds.push(t);
            weights.push(per_misc);
        }
        DomainForge { used: HashSet::new(), tld_picker: Weighted::new(&weights), tlds }
    }

    /// Synthesises a unique drainer domain. Returns the domain and
    /// whether it carries a triage-visible keyword.
    fn drainer_domain(&mut self, rng: &mut StdRng, cfg: &WorldConfig) -> (String, bool) {
        let tld = self.tlds[self.tld_picker.sample(rng)];
        let with_keyword = chance(rng, cfg.site_keyword_rate);
        let stem = if with_keyword {
            let kw = DOMAIN_KEYWORDS[rng.gen_range(0..DOMAIN_KEYWORDS.len())];
            if kw.len() >= 5 && chance(rng, cfg.site_typo_rate) {
                // Leet-typo evasion: pair the typo'd keyword with a
                // *neutral* word — the whole point of the typo is that
                // nothing in the domain matches a blocklist exactly, so
                // only the fuzzy pass can catch it.
                let kw = leet_typo(kw);
                let n = NEUTRAL_WORDS[rng.gen_range(0..NEUTRAL_WORDS.len())];
                if chance(rng, 0.5) {
                    format!("{kw}-{n}")
                } else {
                    format!("{n}-{kw}")
                }
            } else {
                let proj = PROJECT_WORDS[rng.gen_range(0..PROJECT_WORDS.len())];
                match rng.gen_range(0..3u8) {
                    0 => format!("{kw}-{proj}"),
                    1 => format!("{proj}-{kw}"),
                    _ => format!("{proj}{kw}"),
                }
            }
        } else {
            // Keyword-free: escapes triage by construction.
            let a = NEUTRAL_WORDS[rng.gen_range(0..NEUTRAL_WORDS.len())];
            let b = NEUTRAL_WORDS[rng.gen_range(0..NEUTRAL_WORDS.len())];
            format!("{a}-{b}")
        };
        (self.unique(stem, tld, rng), with_keyword)
    }

    /// Synthesises a unique benign domain; `ambiguous` forces a
    /// keyword-resembling word in.
    fn benign_domain(&mut self, rng: &mut StdRng, ambiguous: bool) -> String {
        // Benign TLD mix skews to com/net/org.
        let tld = match rng.gen_range(0..10u8) {
            0..=5 => "com",
            6 => "net",
            7 => "org",
            8 => "io",
            _ => "dev",
        };
        let a = BENIGN_WORDS[rng.gen_range(0..BENIGN_WORDS.len())];
        let stem = if ambiguous {
            let k = BENIGN_AMBIG[rng.gen_range(0..BENIGN_AMBIG.len())];
            format!("{a}-{k}")
        } else {
            let b = BENIGN_WORDS[rng.gen_range(0..BENIGN_WORDS.len())];
            format!("{a}-{b}")
        };
        self.unique(stem, tld, rng)
    }

    fn unique(&mut self, stem: String, tld: &str, rng: &mut StdRng) -> String {
        let base = format!("{stem}.{tld}");
        if self.used.insert(base.clone()) {
            return base;
        }
        loop {
            let n: u32 = rng.gen_range(2..100_000);
            let candidate = format!("{stem}-{n}.{tld}");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

/// Generates the full site population for a built ground truth.
pub fn generate_sites(
    rng: &mut StdRng,
    cfg: &WorldConfig,
    truth: &GroundTruth,
) -> SitePopulation {
    let mut forge = DomainForge::new();
    let mut pop = SitePopulation::default();

    // Seed fingerprints: builds 0 and 1 of every family toolkit file.
    for (fi, fam) in truth.families.iter().enumerate() {
        let fam_cfg = &cfg.families[fi];
        for file in &fam_cfg.toolkit_files {
            for version in 0..2u32.min(fam_cfg.toolkit_versions) {
                pop.seed_fingerprints.push(Fingerprint {
                    file: file.clone(),
                    content: build_hash(&fam_cfg.slug, file, version),
                    family: fam.display_name(),
                });
            }
        }
    }

    // Drainer sites, distributed across families by victim share.
    let victim_weights: Vec<f64> =
        cfg.families.iter().map(|f| f.victims as f64).collect();
    let family_picker = Weighted::new(&victim_weights);
    let n_sites = cfg.scaled(cfg.drainer_sites) as usize;
    // Toolkit build digests repeat across every site serving the same
    // family × version; hash each distinct build once up front instead
    // of re-running keccak per deployed site. Same for the shared CDN
    // library, which is identical everywhere.
    let toolkit_hashes: Vec<Vec<Vec<u64>>> = cfg
        .families
        .iter()
        .map(|fam_cfg| {
            (0..fam_cfg.toolkit_versions.max(1))
                .map(|version| {
                    fam_cfg
                        .toolkit_files
                        .iter()
                        .map(|file| build_hash(&fam_cfg.slug, file, version))
                        .collect()
                })
                .collect()
        })
        .collect();
    let ethers_hash = build_hash("shared", "ethers.umd.min.js", 0);
    for _ in 0..n_sites {
        let fi = family_picker.sample(rng);
        let fam_cfg = &cfg.families[fi];
        let fam = &truth.families[fi];
        let deployed_at = uniform_time(rng, fam.window.0, fam.window.1);
        // Toolkit build version advances with time through the family's
        // window, with slight jitter (affiliates lag updates).
        let frac = (deployed_at - fam.window.0) as f64
            / (fam.window.1 - fam.window.0).max(1) as f64;
        let max_v = fam_cfg.toolkit_versions.max(1);
        let v_base = (frac * max_v as f64) as i64;
        let version = (v_base - rng.gen_range(0..3i64)).clamp(0, max_v as i64 - 1) as u32;

        let (domain, keyword_visible) = forge.drainer_domain(rng, cfg);
        let has_tls = chance(rng, cfg.site_tls_rate);
        let affiliate = if fam.affiliates.is_empty() {
            None
        } else {
            Some(fam.affiliates[rng.gen_range(0..fam.affiliates.len())])
        };

        let mut files = vec![
            SiteFile::new("index.html", benign_hash(&domain, "index.html")),
            // The CDN library from Listing 2 — identical everywhere, and
            // deliberately NOT a usable fingerprint (benign sites may
            // serve it too).
            SiteFile::new("ethers.umd.min.js", ethers_hash),
        ];
        for (k, file) in fam_cfg.toolkit_files.iter().enumerate() {
            files.push(SiteFile::new(file, toolkit_hashes[fi][version as usize][k]));
        }
        // The per-affiliate config blob with a unique random name
        // (Listing 2's `8839a83b-….js`): unique name AND content, so it
        // can never be fingerprinted — realism for the detector.
        files.push(SiteFile::new(
            &format!("{:016x}.js", rng.gen::<u64>()),
            rng.gen::<u64>(),
        ));

        if has_tls {
            pop.certs.push(CertRecord {
                domain: domain.clone(),
                issued_at: deployed_at + rng.gen_range(0..7_200),
            });
        }
        let reported = chance(rng, cfg.site_reported_rate);
        if chance(rng, cfg.site_down_rate) {
            pop.down.insert(domain.clone());
        }
        if reported {
            pop.reported.push(pop.sites.len());
        }
        pop.sites.push(Site { domain, deployed_at, has_tls, files });
        pop.truth.push(SiteTruth {
            family: Some(fi),
            affiliate,
            reported,
            keyword_visible,
        });
    }

    // Benign certificates. Only the ambiguous (keyword-resembling) share
    // is materialised as crawlable sites; the rest never passes triage.
    let n_benign = cfg.scaled(cfg.benign_certs) as usize;
    let window = (crate::config::collection_start(), crate::config::collection_end());
    for _ in 0..n_benign {
        let ambiguous = chance(rng, 0.15);
        let domain = forge.benign_domain(rng, ambiguous);
        let issued_at = uniform_time(rng, window.0, window.1);
        pop.certs.push(CertRecord { domain: domain.clone(), issued_at });
        if ambiguous {
            let files = vec![
                SiteFile::new("index.html", benign_hash(&domain, "index.html")),
                SiteFile::new("main.js", benign_hash(&domain, "main.js")),
                SiteFile::new("vendor.js", benign_hash(&domain, "vendor.js")),
            ];
            pop.sites.push(Site { domain, deployed_at: issued_at, has_tls: true, files });
            pop.truth.push(SiteTruth {
                family: None,
                affiliate: None,
                reported: false,
                keyword_visible: true,
            });
        }
    }

    pop.certs.sort_by_key(|c| c.issued_at);
    pop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leet_typo_single_substitution() {
        assert_eq!(leet_typo("claim"), "cl4im");
        assert_eq!(leet_typo("mint"), "m1nt");
        assert_eq!(leet_typo("xyz"), "xyz"); // nothing substitutable
        // Exactly one substitution.
        let t = leet_typo("airdrop");
        let diff = t.chars().zip("airdrop".chars()).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
        assert!(ct_watch::similarity("airdrop", &t) >= 0.8);
    }

    #[test]
    fn build_hashes_distinguish_versions_and_files() {
        let a = build_hash("angel", "webchunk.js", 0);
        let b = build_hash("angel", "webchunk.js", 1);
        let c = build_hash("angel", "settings.js", 0);
        let d = build_hash("pink", "webchunk.js", 0);
        assert!(a != b && a != c && a != d && b != c);
    }

    #[test]
    fn domain_keywords_subset_of_detector_list() {
        for kw in DOMAIN_KEYWORDS {
            assert!(
                ct_watch::SUSPICIOUS_KEYWORDS.contains(&kw),
                "{kw} missing from detector list"
            );
        }
        // Project words the forge fuses with keywords are also in the
        // detector's list (they're the cloned-brand vocabulary)… most of
        // them, at least; the triage only needs one hit per domain.
    }

    #[test]
    fn benign_words_never_trigger_exact_keywords() {
        for w in BENIGN_WORDS {
            assert!(
                !ct_watch::SUSPICIOUS_KEYWORDS.contains(&w),
                "benign word {w} collides with keyword list"
            );
        }
    }

    #[test]
    fn forge_produces_unique_domains() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = WorldConfig::tiny(1);
        let mut forge = DomainForge::new();
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let (d, _) = forge.drainer_domain(&mut rng, &cfg);
            assert!(seen.insert(d.clone()), "duplicate domain {d}");
            assert!(d.contains('.'));
        }
        for _ in 0..500 {
            let d = forge.benign_domain(&mut rng, false);
            assert!(seen.insert(d.clone()), "duplicate domain {d}");
        }
    }

    #[test]
    fn detection_start_is_dec_2023() {
        assert_eq!(daas_chain::format_date(detection_start()), "2023-12-01");
    }
}
