//! Ground-truth records the generator emits alongside the observable
//! world. The detection pipeline never reads these; the evaluation
//! harness scores against them.

use daas_chain::{EntryStyle, Timestamp, TxId};
use eth_types::Address;
use serde::{Deserialize, Serialize};

/// What asset an incident drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// Direct ETH transfer into the contract's payable entry.
    Eth,
    /// ERC-20 approval followed by a `multicall` sweep.
    Erc20 {
        /// Token contract drained.
        token: Address,
    },
    /// NFT approval, sweep, marketplace sale, then ETH distribution.
    Nft {
        /// Collection contract.
        token: Address,
        /// Token id.
        id: u64,
    },
}

/// One phishing incident: a victim signing into one drain flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentTruth {
    /// Index into [`GroundTruth::families`].
    pub family: usize,
    /// Victim account.
    pub victim: Address,
    /// Affiliate credited by the profit share.
    pub affiliate: Address,
    /// Profit-sharing contract used.
    pub contract: Address,
    /// Time of the profit-sharing transaction.
    pub time: Timestamp,
    /// Drained asset kind.
    pub kind: IncidentKind,
    /// Victim's loss in USD at incident time.
    pub loss_usd: f64,
    /// The profit-sharing transaction this incident produced.
    pub ps_tx: TxId,
    /// True for the simultaneous-multi-sign extra incidents of §6.1.
    pub simultaneous_with_first: bool,
    /// True for re-drains that reused an unrevoked approval (§6.1).
    pub reused_approval: bool,
}

/// Ground truth for one profit-sharing contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContractTruth {
    /// Deployed address.
    pub address: Address,
    /// The operator account hard-coded at deployment.
    pub operator: Address,
    /// Operator share in basis points.
    pub operator_bps: u32,
    /// ETH entry style.
    pub entry: EntryStyle,
    /// Planned activity window.
    pub window: (Timestamp, Timestamp),
    /// Whether this was a long-lived "primary" contract (§7.2).
    pub primary: bool,
    /// Intermediary wallet chain the operator share is routed through
    /// (adversarial multi-hop payouts). Empty = direct payout; the
    /// profit-sharing transaction then pays `operator` itself. When
    /// non-empty the contract pays the first hop and `operator` only
    /// appears at the end of the forwarding chain.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub payout_hops: Vec<Address>,
}

/// Ground truth for one DaaS family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyTruth {
    /// Index (stable across runs of the same config).
    pub id: usize,
    /// Public label, if the family is named on the explorer.
    pub label: Option<String>,
    /// Config slug.
    pub slug: String,
    /// Operator accounts.
    pub operators: Vec<Address>,
    /// Profit-sharing contracts.
    pub contracts: Vec<ContractTruth>,
    /// Affiliate accounts.
    pub affiliates: Vec<Address>,
    /// Activity window.
    pub window: (Timestamp, Timestamp),
    /// Fresh wallets inserted between operators and the mixer by the
    /// adversarial laundering-chain knob. Empty when laundering runs
    /// direct (the calibrated behaviour).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub launder_wallets: Vec<Address>,
}

impl FamilyTruth {
    /// The display name the paper's naming rule yields: the explorer
    /// label if present, else the first six hex digits of the (first)
    /// operator account.
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None => self.operators.first().map(|o| o.prefix6()).unwrap_or_else(|| "<empty>".into()),
        }
    }
}

/// Everything the generator knows that the pipeline must rediscover.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The families.
    pub families: Vec<FamilyTruth>,
    /// Every incident, in generation order.
    pub incidents: Vec<IncidentTruth>,
    /// Forsage-style pyramid splitter contracts (adversarial background
    /// traffic). True negatives for dataset membership: anything the
    /// pipeline admits from here is a false positive by construction.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub pyramid_contracts: Vec<Address>,
    /// Pyramid participant accounts (true negatives).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub pyramid_users: Vec<Address>,
    /// Pyramid referral-payment transactions (true-negative two-transfer
    /// splits at table-shaped ratios).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub pyramid_txs: Vec<TxId>,
}

impl GroundTruth {
    /// All profit-sharing contract addresses across families.
    pub fn all_contracts(&self) -> Vec<Address> {
        let mut v: Vec<Address> = self
            .families
            .iter()
            .flat_map(|f| f.contracts.iter().map(|c| c.address))
            .collect();
        v.sort_unstable();
        v
    }

    /// All operator accounts across families.
    pub fn all_operators(&self) -> Vec<Address> {
        let mut v: Vec<Address> =
            self.families.iter().flat_map(|f| f.operators.iter().copied()).collect();
        v.sort_unstable();
        v
    }

    /// All affiliate accounts across families.
    pub fn all_affiliates(&self) -> Vec<Address> {
        let mut v: Vec<Address> =
            self.families.iter().flat_map(|f| f.affiliates.iter().copied()).collect();
        v.sort_unstable();
        v
    }

    /// All DaaS accounts (contracts + operators + affiliates) — the
    /// paper's collective term.
    pub fn all_daas_accounts(&self) -> Vec<Address> {
        let mut v = self.all_contracts();
        v.extend(self.all_operators());
        v.extend(self.all_affiliates());
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct victim accounts.
    pub fn all_victims(&self) -> Vec<Address> {
        let mut v: Vec<Address> = self.incidents.iter().map(|i| i.victim).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The set of profit-sharing transaction ids (ground truth positives
    /// for the classifier).
    pub fn ps_tx_ids(&self) -> Vec<TxId> {
        let mut v: Vec<TxId> = self.incidents.iter().map(|i| i.ps_tx).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All payout intermediary wallets across families (adversarial
    /// multi-hop splits). Empty in calibrated worlds.
    pub fn all_payout_hops(&self) -> Vec<Address> {
        let mut v: Vec<Address> = self
            .families
            .iter()
            .flat_map(|f| f.contracts.iter().flat_map(|c| c.payout_hops.iter().copied()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Family index that owns a contract, if any.
    pub fn family_of_contract(&self, contract: Address) -> Option<usize> {
        self.families
            .iter()
            .position(|f| f.contracts.iter().any(|c| c.address == contract))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    fn truth() -> GroundTruth {
        GroundTruth {
            families: vec![
                FamilyTruth {
                    id: 0,
                    label: Some("Angel Drainer".into()),
                    slug: "angel".into(),
                    operators: vec![addr(1)],
                    contracts: vec![ContractTruth {
                        address: addr(10),
                        operator: addr(1),
                        operator_bps: 2000,
                        entry: EntryStyle::PayableFallback,
                        window: (0, 100),
                        primary: true,
                        payout_hops: Vec::new(),
                    }],
                    affiliates: vec![addr(20), addr(21)],
                    window: (0, 100),
                    launder_wallets: Vec::new(),
                },
                FamilyTruth {
                    id: 1,
                    label: None,
                    slug: "anon".into(),
                    operators: vec![addr(2)],
                    contracts: vec![],
                    affiliates: vec![addr(21)],
                    window: (0, 50),
                    launder_wallets: Vec::new(),
                },
            ],
            incidents: vec![IncidentTruth {
                family: 0,
                victim: addr(30),
                affiliate: addr(20),
                contract: addr(10),
                time: 5,
                kind: IncidentKind::Eth,
                loss_usd: 100.0,
                ps_tx: 7,
                simultaneous_with_first: false,
                reused_approval: false,
            }],
            pyramid_contracts: Vec::new(),
            pyramid_users: Vec::new(),
            pyramid_txs: Vec::new(),
        }
    }

    #[test]
    fn display_name_label_or_prefix() {
        let t = truth();
        assert_eq!(t.families[0].display_name(), "Angel Drainer");
        assert_eq!(t.families[1].display_name(), addr(2).prefix6());
    }

    #[test]
    fn account_rollups_dedupe() {
        let t = truth();
        assert_eq!(t.all_contracts(), vec![addr(10)]);
        assert_eq!(t.all_operators().len(), 2);
        // addr(21) affiliates for both families → deduped in the union.
        assert_eq!(t.all_affiliates().len(), 3);
        assert_eq!(t.all_daas_accounts().len(), 1 + 2 + 2);
        assert_eq!(t.all_victims(), vec![addr(30)]);
        assert_eq!(t.ps_tx_ids(), vec![7]);
    }

    #[test]
    fn contract_family_lookup() {
        let t = truth();
        assert_eq!(t.family_of_contract(addr(10)), Some(0));
        assert_eq!(t.family_of_contract(addr(99)), None);
    }
}
