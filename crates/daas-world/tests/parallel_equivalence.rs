//! The sequential-oracle contract for world generation: `build_opts`
//! must produce a byte-identical world at every planner thread count
//! AND every chain shard count. Threads are a schedule and shards are a
//! memory layout — neither is ever data.

use daas_world::{World, WorldConfig};

/// FNV-1a accumulator; chunks are hashed and dropped so the fingerprint
/// never holds more than one serialized piece at a time.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn eat(&mut self, text: &str) {
        for byte in text.bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// One number over everything the world exposes. Map-backed structures
/// go through serde (the shims serialize map entries sorted by key);
/// `Debug` is only used for plain-`Vec` fields, where iteration order is
/// the data.
fn fingerprint(world: &World) -> u64 {
    let mut sink = Fnv::new();
    sink.eat(&serde_json::to_string(&world.chain).expect("chain serialises"));
    sink.eat(&serde_json::to_string(&world.labels).expect("labels serialise"));
    sink.eat(&serde_json::to_string(&world.truth).expect("truth serialises"));
    sink.eat(&serde_json::to_string(&world.oracle).expect("oracle serialises"));
    let s = &world.sites;
    sink.eat(&format!(
        "{:?}{:?}{:?}{:?}{:?}",
        s.sites, s.truth, s.certs, s.seed_fingerprints, s.reported
    ));
    let mut down: Vec<&String> = s.down.iter().collect();
    down.sort();
    sink.eat(&format!("{down:?}"));
    sink.eat(&format!("{:?}", world.infra));
    sink.0
}

fn build_fp(config: &WorldConfig, threads: usize, shards: usize) -> u64 {
    fingerprint(&World::build_opts(config, threads, shards).expect("world builds"))
}

#[test]
fn thread_counts_agree_on_tiny_worlds() {
    for seed in [7u64, 31, 99] {
        let config = WorldConfig::tiny(seed);
        let oracle = build_fp(&config, 1, 0);
        for threads in [2usize, 4, 8, 0] {
            assert_eq!(
                build_fp(&config, threads, 0),
                oracle,
                "seed {seed}: world diverged from the sequential oracle at threads={threads}"
            );
        }
    }
}

#[test]
fn thread_counts_agree_on_small_world() {
    let config = WorldConfig::small(7);
    let oracle = build_fp(&config, 1, 0);
    for threads in [2usize, 4, 0] {
        assert_eq!(build_fp(&config, threads, 0), oracle, "diverged at threads={threads}");
    }
}

#[test]
fn shard_counts_change_nothing() {
    let config = WorldConfig::tiny(13);
    let oracle = build_fp(&config, 1, 0);
    for shards in [1usize, 4, 16] {
        for threads in [1usize, 2, 0] {
            assert_eq!(
                build_fp(&config, threads, shards),
                oracle,
                "world changed at shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn default_build_is_the_parallel_path() {
    // `World::build` (threads = 0) must land on the oracle too — the
    // public single-argument API is not a separate code path.
    let config = WorldConfig::tiny(7);
    let plain = fingerprint(&World::build(&config).expect("world builds"));
    assert_eq!(plain, build_fp(&config, 1, 0));
}

/// Full paper-scale equivalence — minutes of CPU, so opt-in:
/// `cargo test -p daas-world --test parallel_equivalence --release -- --ignored`.
#[test]
#[ignore = "paper-scale world; run via ci.sh or -- --ignored"]
fn thread_and_shard_counts_agree_at_paper_scale() {
    let config = WorldConfig::paper_scale(42);
    let oracle = build_fp(&config, 1, 0);
    assert_eq!(build_fp(&config, 0, 0), oracle, "parallel planner diverged at paper scale");
    assert_eq!(build_fp(&config, 0, 64), oracle, "resharded build diverged at paper scale");
}
