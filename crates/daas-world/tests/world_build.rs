//! End-to-end generator tests: build a small world and check the
//! observable surfaces and ground truth line up with the configuration.

use std::sync::OnceLock;

use daas_world::{World, WorldConfig};
use eth_types::U256;

/// One shared small world: building it is the expensive part, and every
/// test only reads it.
fn small_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::build(&WorldConfig::small(7)).expect("world builds"))
}

#[test]
fn builds_deterministically() {
    let a = World::build(&WorldConfig::tiny(3)).unwrap();
    let b = World::build(&WorldConfig::tiny(3)).unwrap();
    assert_eq!(a.chain.stats(), b.chain.stats());
    assert_eq!(a.truth.incidents.len(), b.truth.incidents.len());
    assert_eq!(a.sites.certs.len(), b.sites.certs.len());
    // Same addresses, same hashes.
    assert_eq!(
        a.chain.transactions().last().unwrap().hash(),
        b.chain.transactions().last().unwrap().hash()
    );
    // A different seed gives a different world.
    let c = World::build(&WorldConfig::tiny(4)).unwrap();
    assert_ne!(
        a.chain.transactions().last().unwrap().hash(),
        c.chain.transactions().last().unwrap().hash()
    );
}

#[test]
fn population_counts_match_scaled_config() {
    let cfg = WorldConfig::small(7);
    let w = small_world();
    assert_eq!(w.truth.families.len(), 9);
    for (fam, fc) in w.truth.families.iter().zip(&cfg.families) {
        assert_eq!(fam.operators.len(), cfg.scaled(fc.operators) as usize, "{}", fc.slug);
        assert_eq!(fam.contracts.len(), cfg.scaled(fc.contracts) as usize, "{}", fc.slug);
        assert_eq!(fam.affiliates.len(), cfg.scaled(fc.affiliates) as usize, "{}", fc.slug);
    }
    // Victims ≥ scaled count (floored at contracts).
    let victims = w.truth.all_victims().len();
    let expected: u32 = cfg.families.iter().map(|f| cfg.scaled(f.victims)).sum();
    assert!(victims as u32 >= expected, "victims {victims} < {expected}");
}

#[test]
fn every_contract_has_a_profit_sharing_tx() {
    let w = small_world();
    for fam in &w.truth.families {
        for c in &fam.contracts {
            let has_incident = w.truth.incidents.iter().any(|i| i.contract == c.address);
            assert!(has_incident, "contract {} has no incident", c.address);
        }
    }
}

#[test]
fn incident_transactions_have_profit_share_shape() {
    let w = small_world();
    for inc in &w.truth.incidents {
        let tx = w.chain.tx(inc.ps_tx);
        let spec = w.chain.profit_sharing_spec(inc.contract).expect("ps contract");
        // The fund flow out of one source consists of exactly two
        // transfers: operator + affiliate.
        let source_counts: Vec<usize> = {
            use std::collections::HashMap;
            let mut m: HashMap<_, usize> = HashMap::new();
            for t in tx.transfers() {
                *m.entry(t.from).or_default() += 1;
            }
            m.values().copied().collect()
        };
        assert!(
            source_counts.contains(&2),
            "tx {} lacks a two-transfer source",
            inc.ps_tx
        );
        // Receivers include the operator and the affiliate.
        assert!(tx.transfers().any(|t| t.to == spec.operator));
        assert!(tx.transfers().any(|t| t.to == inc.affiliate));
    }
}

#[test]
fn family_profit_totals_near_targets() {
    let cfg = WorldConfig::small(7);
    let w = small_world();
    for (fi, fc) in cfg.families.iter().enumerate() {
        let total: f64 = w
            .truth
            .incidents
            .iter()
            .filter(|i| i.family == fi)
            .map(|i| i.loss_usd)
            .sum();
        let target = fc.profits_usd * cfg.scale;
        let ratio = total / target;
        assert!(
            (0.9..1.1).contains(&ratio),
            "{}: generated ${total:.0} vs target ${target:.0}",
            fc.slug
        );
    }
}

#[test]
fn repeat_victims_produce_extra_transactions() {
    let cfg = WorldConfig::small(7);
    let w = small_world();
    let victims = w.truth.all_victims().len();
    let incidents = w.truth.incidents.len();
    assert!(incidents > victims, "repeat incidents missing");
    // Ratio close to 87,077 / 76,582 ≈ 1.137.
    let ratio = incidents as f64 / victims as f64;
    assert!((1.05..1.25).contains(&ratio), "tx/victim ratio {ratio}");
    let _ = cfg;
    // Simultaneous extras share a timestamp with the victim's first tx.
    let sims = w.truth.incidents.iter().filter(|i| i.simultaneous_with_first).count();
    assert!(sims > 0);
    // Reused-approval extras exist and their drain tx carries no approval.
    let reused: Vec<_> = w.truth.incidents.iter().filter(|i| i.reused_approval).collect();
    assert!(!reused.is_empty());
    for inc in &reused {
        let tx = w.chain.tx(inc.ps_tx);
        assert!(tx.approval_count() == 0, "reuse drain should not approve");
    }
}

#[test]
fn label_coverage_near_config() {
    let cfg = WorldConfig::small(7);
    let w = small_world();
    let contracts = w.truth.all_contracts();
    let labeled = contracts.iter().filter(|c| w.labels.publicly_flagged(**c)).count();
    let frac = labeled as f64 / contracts.len() as f64;
    // Small-scale quantisation: six families scale down to one or two
    // contracts and the per-family minimum of one label overshoots the
    // global fraction, hence the generous band.
    assert!(
        (frac - cfg.label_contract_frac).abs() < 0.12,
        "labeled contract fraction {frac}"
    );
    // Every family has at least one labeled contract (expansion needs a
    // seed into each family).
    for fam in &w.truth.families {
        assert!(
            fam.contracts.iter().any(|c| w.labels.publicly_flagged(c.address)),
            "family {} has no labeled contract",
            fam.display_name()
        );
    }
}

#[test]
fn operator_balances_flow_to_mixer() {
    let w = small_world();
    assert!(w.chain.eth_balance(w.infra.mixer) > U256::ZERO, "mixer never funded");
}

#[test]
fn site_population_is_consistent() {
    let w = small_world();
    assert_eq!(w.sites.sites.len(), w.sites.truth.len());
    assert!(!w.sites.certs.is_empty());
    // Certs sorted by issuance.
    assert!(w.sites.certs.windows(2).all(|p| p[0].issued_at <= p[1].issued_at));
    // Reported indices point at drainer sites.
    for &i in &w.sites.reported {
        assert!(w.sites.truth[i].family.is_some());
    }
    // Seed fingerprints exist for every family.
    assert!(w.sites.seed_fingerprints.len() >= 9);
    // Crawler honours takedowns.
    let crawler = w.crawler();
    if let Some(domain) = w.sites.down.iter().next() {
        use webscan::Crawler;
        assert!(crawler.fetch(domain).is_none());
    }
}

#[test]
fn chain_timestamps_monotonic() {
    let w = small_world();
    let txs = w.chain.transactions();
    assert!(txs.timestamps().windows(2).all(|p| p[0] <= p[1]));
    assert!(w.chain.blocks().windows(2).all(|p| p[0].number < p[1].number));
}

#[test]
fn affiliate_association_shape() {
    // Most affiliates earn from a single operator (§6.3: 60.4%).
    let w = small_world();
    use std::collections::{HashMap, HashSet};
    let mut ops_of_aff: HashMap<_, HashSet<_>> = HashMap::new();
    for inc in &w.truth.incidents {
        let spec = w.chain.profit_sharing_spec(inc.contract).unwrap();
        ops_of_aff.entry(inc.affiliate).or_default().insert(spec.operator);
    }
    let single = ops_of_aff.values().filter(|s| s.len() == 1).count();
    let frac = single as f64 / ops_of_aff.len() as f64;
    // At 5% scale most families collapse to one operator, so only the
    // lower bound is meaningful here; the paper-scale §6.3 statistic
    // (60.4%) is checked by the measurement harness.
    assert!(frac >= 0.45, "single-operator fraction {frac}");
}
