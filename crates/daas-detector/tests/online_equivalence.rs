//! The streaming detector must converge to exactly the batch snowball
//! result — regardless of how the chain is delivered (one poll, or
//! block-sized chunks).

use daas_detector::{build_dataset, DetectorEvent, OnlineDetector, SnowballConfig};
use daas_world::{World, WorldConfig};

fn assert_equivalent(batch: &daas_detector::Dataset, online: &daas_detector::Dataset) {
    assert_eq!(online.contracts, batch.contracts, "contract sets differ");
    assert_eq!(online.operators, batch.operators, "operator sets differ");
    assert_eq!(online.affiliates, batch.affiliates, "affiliate sets differ");
    assert_eq!(online.ps_txs, batch.ps_txs, "transaction sets differ");
}

#[test]
fn single_poll_matches_batch() {
    let world = World::build(&WorldConfig::tiny(31)).expect("world");
    let batch = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());

    let mut online = OnlineDetector::new(SnowballConfig::default());
    let events = online.poll(&world.chain, &world.labels);
    assert_equivalent(&batch, online.dataset());
    assert!(!events.is_empty());
    assert_eq!(online.cursor() as usize, world.chain.transactions().len());
}

#[test]
fn chunked_polling_matches_batch() {
    let world = World::build(&WorldConfig::tiny(32)).expect("world");
    let batch = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());

    let mut online = OnlineDetector::new(SnowballConfig::default());
    let total = world.chain.transactions().len() as u32;
    let mut all_events = Vec::new();
    // Deliver in uneven chunks, like blocks arriving.
    let mut at = 0;
    for step in [7u32, 1, 113, 64, 999, 3] {
        at = (at + step).min(total);
        all_events.extend(online.poll_until(&world.chain, &world.labels, at));
    }
    all_events.extend(online.poll(&world.chain, &world.labels));
    assert_equivalent(&batch, online.dataset());

    // Event stream is consistent with the final dataset.
    let admitted: std::collections::BTreeSet<_> = all_events
        .iter()
        .filter_map(|e| match e {
            DetectorEvent::ContractAdmitted { contract, .. } => Some(*contract),
            _ => None,
        })
        .collect();
    assert_eq!(admitted, online.dataset().contracts);
    let txs: std::collections::BTreeSet<_> = all_events
        .iter()
        .filter_map(|e| match e {
            DetectorEvent::PsTransaction { tx, .. } => Some(*tx),
            _ => None,
        })
        .collect();
    assert_eq!(txs, online.dataset().ps_txs);
}

/// Regression: a watermark past the end of the chain must clamp to the
/// chain length — the cursor never runs ahead of the transactions that
/// exist, and the result equals an unbounded poll.
#[test]
fn over_large_watermark_clamps_to_chain_length() {
    let world = World::build(&WorldConfig::tiny(36)).expect("world");
    let batch = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());

    let mut online = OnlineDetector::new(SnowballConfig::default());
    let events = online.poll_until(&world.chain, &world.labels, u32::MAX);
    assert_equivalent(&batch, online.dataset());
    assert!(!events.is_empty());
    assert_eq!(
        online.cursor() as usize,
        world.chain.transactions().len(),
        "cursor must clamp to the chain length, not the requested watermark"
    );
    // A follow-up poll sees nothing new.
    assert!(online.poll(&world.chain, &world.labels).is_empty());
}

#[test]
fn events_fire_exactly_once() {
    let world = World::build(&WorldConfig::tiny(33)).expect("world");
    let mut online = OnlineDetector::new(SnowballConfig::default());
    let mut events = online.poll(&world.chain, &world.labels);
    // A second poll with nothing new yields nothing.
    assert!(online.poll(&world.chain, &world.labels).is_empty());

    events.retain(|e| matches!(e, DetectorEvent::ContractAdmitted { .. }));
    let mut contracts: Vec<_> = events
        .iter()
        .map(|e| match e {
            DetectorEvent::ContractAdmitted { contract, .. } => *contract,
            _ => unreachable!(),
        })
        .collect();
    let before = contracts.len();
    contracts.sort_unstable();
    contracts.dedup();
    assert_eq!(contracts.len(), before, "duplicate admission events");
}

#[test]
fn guardless_variants_also_match() {
    let world = World::build(&WorldConfig::tiny(34)).expect("world");
    let cfg = SnowballConfig { expansion_guard: false, ..Default::default() };
    let batch = build_dataset(&world.chain, &world.labels, &cfg);
    let mut online = OnlineDetector::new(cfg);
    online.poll(&world.chain, &world.labels);
    assert_equivalent(&batch, online.dataset());
}

#[test]
fn seed_admissions_labeled_as_such() {
    let world = World::build(&WorldConfig::tiny(35)).expect("world");
    let mut online = OnlineDetector::new(SnowballConfig::default());
    let events = online.poll(&world.chain, &world.labels);
    let seeds = events
        .iter()
        .filter(|e| {
            matches!(e, DetectorEvent::ContractAdmitted { via: daas_detector::Admission::SeedLabel, .. })
        })
        .count();
    let expansions = events
        .iter()
        .filter(|e| {
            matches!(e, DetectorEvent::ContractAdmitted { via: daas_detector::Admission::Expansion, .. })
        })
        .count();
    assert!(seeds > 0, "no seed admissions");
    assert!(expansions > 0, "no expansion admissions");
}
