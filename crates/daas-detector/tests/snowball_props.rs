//! Property tests for the round-synchronous merge step: the coordinator
//! absorbs each batch in original order from a cache of the pure
//! classifier, so neither the worker count nor the order the cache was
//! warmed in may change the dataset — down to the serialized bytes and
//! the absorb (observation insertion) order.

use daas_chain::{
    Chain, ContractKind, EntryStyle, LabelSource, LabelStore, ProfitSharingSpec, TxId,
};
use daas_detector::{
    build_dataset, build_dataset_with_cache, ClassificationCache, Dataset, SnowballConfig,
    DEFAULT_RATIOS_BPS,
};
use eth_types::units::ether;
use proptest::prelude::*;

/// A randomly shaped multi-family world: one operator shared by every
/// family (expansion must cross families), per-family affiliate and
/// victims, a table ratio chosen by the strategy.
fn arb_world(families: usize, victims: usize, ratio_idx: usize, amount: u64) -> (Chain, LabelStore) {
    let mut chain = Chain::new();
    let mut labels = LabelStore::new();
    let operator = chain.create_eoa_funded(b"op", ether(10)).unwrap();
    let spec = ProfitSharingSpec {
        operator,
        operator_bps: DEFAULT_RATIOS_BPS[ratio_idx],
        entry: EntryStyle::PayableFallback,
    };
    let mut first = None;
    for f in 0..families {
        let contract =
            chain.deploy_contract(operator, ContractKind::ProfitSharing(spec.clone())).unwrap();
        first.get_or_insert(contract);
        let affiliate = chain.create_eoa(format!("aff{f}").as_bytes()).unwrap();
        for v in 0..victims {
            let victim = chain
                .create_eoa_funded(format!("victim{f}-{v}").as_bytes(), ether(amount + 1))
                .unwrap();
            chain.advance(12);
            chain.claim_eth(victim, contract, ether(amount), affiliate).unwrap();
        }
    }
    labels.add_phishing(first.unwrap(), LabelSource::Chainabuse, "reported");
    (chain, labels)
}

fn json(ds: &Dataset) -> String {
    serde_json::to_string(ds).expect("dataset serialises")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel merge == sequential absorb, for arbitrary world shapes
    /// and worker counts.
    #[test]
    fn parallel_merge_matches_sequential_absorb(
        families in 1usize..4,
        victims in 1usize..4,
        ratio_idx in 0usize..DEFAULT_RATIOS_BPS.len(),
        amount in 1u64..40,
        threads in 2usize..9,
    ) {
        let (chain, labels) = arb_world(families, victims, ratio_idx, amount);
        let seq = build_dataset(&chain, &labels, &SnowballConfig { threads: 1, ..Default::default() });
        let par = build_dataset(&chain, &labels, &SnowballConfig { threads, ..Default::default() });
        // The observation vector is insertion-ordered, so JSON equality
        // covers the absorb order, not just the final sets.
        prop_assert_eq!(&seq.observations, &par.observations, "absorb order diverged");
        prop_assert_eq!(json(&seq), json(&par));
        prop_assert_eq!(seq.rounds, par.rounds);
        // The snowball must actually have expanded to all families.
        prop_assert_eq!(seq.counts().contracts, families);
    }

    /// The order the cache was warmed in is invisible: pre-classifying
    /// every transaction in *reverse* chain order, then replaying
    /// sequentially, matches the untouched oracle byte for byte.
    #[test]
    fn cache_warm_order_is_irrelevant(
        families in 1usize..4,
        victims in 1usize..3,
        ratio_idx in 0usize..DEFAULT_RATIOS_BPS.len(),
    ) {
        let (chain, labels) = arb_world(families, victims, ratio_idx, 10);
        let cfg = SnowballConfig { threads: 1, ..Default::default() };
        let oracle = build_dataset(&chain, &labels, &cfg);

        let cache = ClassificationCache::new();
        let total = chain.transactions().len() as TxId;
        for txid in (0..total).rev() {
            cache.classify(&chain, txid, &cfg.classifier);
        }
        prop_assert_eq!(cache.len(), total as usize);
        let replay = build_dataset_with_cache(&chain, &labels, &cfg, &cache);
        prop_assert_eq!(json(&oracle), json(&replay));
        // A fully warmed cache gains nothing from the replay.
        prop_assert_eq!(cache.len(), total as usize);
    }
}
