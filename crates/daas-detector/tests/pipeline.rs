//! Full-pipeline integration: generate a world, run snowball sampling,
//! score against ground truth. This is the §5.2 validation, with real
//! precision/recall instead of manual review.

use std::sync::OnceLock;

use daas_detector::{build_dataset, evaluate, validation_sample, Dataset, SnowballConfig};
use daas_world::{World, WorldConfig};

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| World::build(&WorldConfig::small(11)).expect("world"))
}

fn dataset() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| build_dataset(&world().chain, &world().labels, &SnowballConfig::default()))
}

#[test]
fn dataset_has_perfect_precision() {
    let w = world();
    let ds = dataset();
    let eval = evaluate(
        ds,
        &w.truth.all_contracts(),
        &w.truth.all_operators(),
        &w.truth.all_affiliates(),
        &w.truth.ps_tx_ids(),
    );
    // The paper's validation found zero false positives; our guard-based
    // pipeline reproduces that on the default world.
    assert_eq!(eval.contracts.false_positives, 0, "contract FPs");
    assert_eq!(eval.operators.false_positives, 0, "operator FPs");
    assert_eq!(eval.affiliates.false_positives, 0, "affiliate FPs");
    assert_eq!(eval.transactions.false_positives, 0, "tx FPs");
}

#[test]
fn dataset_recall_is_high() {
    let w = world();
    let ds = dataset();
    let eval = evaluate(
        ds,
        &w.truth.all_contracts(),
        &w.truth.all_operators(),
        &w.truth.all_affiliates(),
        &w.truth.ps_tx_ids(),
    );
    assert!(eval.contracts.recall() > 0.97, "contract recall {}", eval.contracts.recall());
    assert!(eval.operators.recall() > 0.97, "operator recall {}", eval.operators.recall());
    assert!(eval.affiliates.recall() > 0.97, "affiliate recall {}", eval.affiliates.recall());
    assert!(eval.transactions.recall() > 0.97, "tx recall {}", eval.transactions.recall());
}

#[test]
fn expansion_grows_the_seed_substantially() {
    // Table 1: 391 seed contracts grow to 1,910 (~4.9×); our seed is the
    // same ~20% of contracts, so expansion must multiply it.
    let ds = dataset();
    let growth = ds.counts().contracts as f64 / ds.seed.contracts.max(1) as f64;
    assert!(growth > 2.0, "expansion growth only {growth:.2}×");
    assert!(ds.seed.contracts < ds.counts().contracts);
    assert!(ds.seed.ps_txs < ds.counts().ps_txs);
    assert!(ds.rounds >= 1);
}

#[test]
fn roles_are_assigned_correctly() {
    // Every discovered operator/affiliate matches the ground-truth role
    // (operators take the smaller share by construction).
    let w = world();
    let ds = dataset();
    let true_ops: std::collections::HashSet<_> = w.truth.all_operators().into_iter().collect();
    let true_affs: std::collections::HashSet<_> = w.truth.all_affiliates().into_iter().collect();
    for obs in &ds.observations {
        assert!(true_ops.contains(&obs.operator), "mislabeled operator {}", obs.operator);
        assert!(true_affs.contains(&obs.affiliate), "mislabeled affiliate {}", obs.affiliate);
        assert!(obs.operator_amount <= obs.affiliate_amount);
    }
}

#[test]
fn observation_ratios_match_contract_specs() {
    let w = world();
    let ds = dataset();
    for obs in &ds.observations {
        let spec = w.chain.profit_sharing_spec(obs.contract).expect("ps contract");
        assert_eq!(obs.ratio_bps, spec.operator_bps, "ratio mismatch on {}", obs.contract);
    }
}

#[test]
fn validation_sampling_covers_large_share() {
    // §5.2: reviewing up to 10 recent txs per account covered 44.8% of
    // all transactions. Shape check: substantial but partial coverage.
    let w = world();
    let ds = dataset();
    let sample = validation_sample(&w.chain, ds, 10);
    assert!(sample.total > 0);
    assert!(sample.coverage_pct > 20.0, "coverage {}", sample.coverage_pct);
    assert!(sample.total <= ds.counts().ps_txs);
    assert_eq!(
        sample.contract_txs + sample.operator_txs + sample.affiliate_txs,
        sample.total
    );
}

#[test]
fn guardless_expansion_is_superset() {
    let w = world();
    let ds = dataset();
    let unguarded = build_dataset(
        &w.chain,
        &w.labels,
        &SnowballConfig { expansion_guard: false, ..Default::default() },
    );
    // Without the guard, at least everything guarded is still found.
    assert!(unguarded.counts().contracts >= ds.counts().contracts);
    assert!(unguarded.counts().ps_txs >= ds.counts().ps_txs);
}

#[test]
fn splitter_noise_world_shows_guard_value() {
    // Ablation A3: with operators donating through a ratio-shaped benign
    // splitter, the guardless pipeline admits it as a false positive.
    let mut cfg = WorldConfig::tiny(23);
    cfg.operator_splitter_noise = true;
    let w = World::build(&cfg).expect("noisy world");
    let truth_contracts = w.truth.all_contracts();

    let unguarded = build_dataset(
        &w.chain,
        &w.labels,
        &SnowballConfig { expansion_guard: false, ..Default::default() },
    );
    let eval_unguarded = evaluate(
        &unguarded,
        &truth_contracts,
        &w.truth.all_operators(),
        &w.truth.all_affiliates(),
        &w.truth.ps_tx_ids(),
    );
    assert!(
        eval_unguarded.contracts.false_positives > 0,
        "expected the noisy splitter to leak into the unguarded dataset"
    );
}
