//! The sequential-oracle contract: `build_dataset` must produce a
//! byte-identical serialized dataset at every thread count, on
//! generated worlds and hand-built micro-worlds alike, with a cold or
//! a warm classification cache.

use std::sync::Arc;

use daas_chain::{
    Chain, ContractKind, EntryStyle, LabelSource, LabelStore, ProfitSharingSpec,
};
use daas_detector::{
    build_dataset, build_dataset_with_cache, ClassificationCache, Dataset, OnlineDetector,
    SnowballConfig,
};
use daas_world::{World, WorldConfig};
use eth_types::units::ether;
use eth_types::Address;

fn cfg(threads: usize) -> SnowballConfig {
    SnowballConfig { threads, ..Default::default() }
}

fn json(ds: &Dataset) -> String {
    serde_json::to_string(ds).expect("dataset serialises")
}

/// Every thread count (plus `0` = all cores) against the `threads: 1`
/// oracle, by serialized-JSON equality.
fn assert_all_thread_counts_agree(chain: &Chain, labels: &LabelStore, base: &SnowballConfig) {
    let oracle = json(&build_dataset(chain, labels, &SnowballConfig { threads: 1, ..base.clone() }));
    for threads in [2usize, 4, 8, 0] {
        let ds = build_dataset(chain, labels, &SnowballConfig { threads, ..base.clone() });
        assert_eq!(json(&ds), oracle, "threads={threads} diverged from the sequential oracle");
    }
}

/// A hand-built multi-family micro-world: `families` drainer contracts
/// sharing one operator (so expansion must hop between them), one
/// affiliate and `victims` claims each. Returns the chain, the labels
/// (first contract reported) and the operator.
fn micro_world(families: usize, victims: usize) -> (Chain, LabelStore, Address) {
    let mut chain = Chain::new();
    let mut labels = LabelStore::new();
    let operator = chain.create_eoa_funded(b"op", ether(10)).unwrap();
    let spec = ProfitSharingSpec { operator, operator_bps: 2000, entry: EntryStyle::PayableFallback };
    let mut first = None;
    for f in 0..families {
        let contract = chain.deploy_contract(operator, ContractKind::ProfitSharing(spec.clone())).unwrap();
        first.get_or_insert(contract);
        let affiliate = chain.create_eoa(format!("aff{f}").as_bytes()).unwrap();
        for v in 0..victims {
            let victim = chain
                .create_eoa_funded(format!("victim{f}-{v}").as_bytes(), ether(100))
                .unwrap();
            chain.advance(12);
            chain.claim_eth(victim, contract, ether(10), affiliate).unwrap();
        }
    }
    labels.add_phishing(first.unwrap(), LabelSource::Chainabuse, "reported");
    (chain, labels, operator)
}

#[test]
fn thread_counts_agree_on_micro_worlds() {
    for (families, victims) in [(1, 1), (2, 2), (3, 1), (4, 3)] {
        let (chain, labels, _) = micro_world(families, victims);
        assert_all_thread_counts_agree(&chain, &labels, &SnowballConfig::default());
    }
}

#[test]
fn thread_counts_agree_without_expansion_guard() {
    let (chain, labels, _) = micro_world(3, 2);
    let base = SnowballConfig { expansion_guard: false, ..Default::default() };
    assert_all_thread_counts_agree(&chain, &labels, &base);
}

#[test]
fn thread_counts_agree_on_tiny_worlds() {
    for seed in [7u64, 31, 99] {
        let world = World::build(&WorldConfig::tiny(seed)).expect("world");
        assert_all_thread_counts_agree(&world.chain, &world.labels, &SnowballConfig::default());
    }
}

#[test]
fn thread_counts_agree_on_small_world() {
    let world = World::build(&WorldConfig::small(7)).expect("world");
    assert_all_thread_counts_agree(&world.chain, &world.labels, &SnowballConfig::default());
}

#[test]
fn warm_cache_changes_nothing() {
    let world = World::build(&WorldConfig::tiny(11)).expect("world");
    let cache = ClassificationCache::new();
    let parallel = cfg(4);
    let cold = json(&build_dataset_with_cache(&world.chain, &world.labels, &parallel, &cache));
    assert!(!cache.is_empty(), "a cold run must populate the cache");
    let filled = cache.len();

    // Warm rerun, same thread count: identical bytes, no new entries.
    let warm = json(&build_dataset_with_cache(&world.chain, &world.labels, &parallel, &cache));
    assert_eq!(warm, cold);
    assert_eq!(cache.len(), filled, "a warm rerun classifies nothing new");

    // Warm rerun on the sequential oracle path: still identical.
    let seq = json(&build_dataset_with_cache(&world.chain, &world.labels, &cfg(1), &cache));
    assert_eq!(seq, cold);
}

#[test]
fn online_detector_shares_the_batch_cache() {
    let world = World::build(&WorldConfig::tiny(31)).expect("world");
    let cache = Arc::new(ClassificationCache::new());
    let batch = build_dataset_with_cache(&world.chain, &world.labels, &cfg(0), &cache);
    let filled = cache.len();

    let mut online = OnlineDetector::with_cache(SnowballConfig::default(), Arc::clone(&cache));
    online.poll(&world.chain, &world.labels);
    assert_eq!(online.dataset().contracts, batch.contracts);
    assert_eq!(online.dataset().operators, batch.operators);
    assert_eq!(online.dataset().affiliates, batch.affiliates);
    assert_eq!(online.dataset().ps_txs, batch.ps_txs);
    assert!(cache.len() >= filled, "sharing never drops entries");
}

/// Full paper-scale equivalence — minutes of CPU, so opt-in:
/// `cargo test -p daas-detector --test parallel_equivalence -- --ignored`.
#[test]
#[ignore = "paper-scale world; run via ci.sh or -- --ignored"]
fn thread_counts_agree_at_paper_scale() {
    let world = World::build(&WorldConfig::paper_scale(42)).expect("world");
    let oracle = json(&build_dataset(&world.chain, &world.labels, &cfg(1)));
    let parallel = json(&build_dataset(&world.chain, &world.labels, &cfg(0)));
    assert_eq!(parallel, oracle, "parallel diverged at paper scale");
}
