//! Regression: a warm classification memo serves a repeat batch run
//! entirely from cache. The live pipeline's batch re-verification
//! (DESIGN.md §10) leans on this — the re-run must classify nothing
//! twice — and `cache.classify.hit` / `cache.classify.miss` in the obs
//! registry are exactly the [`ClassificationCache::stats`] deltas this
//! test pins down.

use daas_detector::{build_dataset_with_cache, ClassificationCache, SnowballConfig};
use daas_world::{World, WorldConfig};

#[test]
fn warm_rerun_hit_rate_is_100_percent() {
    let world = World::build(&WorldConfig::micro(91)).expect("world builds");
    let cache = ClassificationCache::new();
    let cfg = SnowballConfig { threads: 1, ..Default::default() };

    let cold = build_dataset_with_cache(&world.chain, &world.labels, &cfg, &cache);
    let after_cold = cache.stats();
    assert!(after_cold.misses > 0, "cold run must classify");
    assert_eq!(
        after_cold.entries as u64, after_cold.misses,
        "every miss fills exactly one memo entry"
    );

    let warm = build_dataset_with_cache(&world.chain, &world.labels, &cfg, &cache);
    let after_warm = cache.stats();
    assert_eq!(warm.ps_txs, cold.ps_txs, "warm run must reproduce the dataset");

    let warm_hits = after_warm.hits - after_cold.hits;
    let warm_misses = after_warm.misses - after_cold.misses;
    assert!(warm_hits > 0, "warm run must touch the cache");
    assert_eq!(warm_misses, 0, "warm run re-classified {warm_misses} transactions");
    assert_eq!(after_warm.entries, after_cold.entries, "warm run grew the memo");
}
