//! Property-based tests for the profit-sharing classifier: soundness and
//! completeness of the ratio rule over randomly generated fund flows.

use daas_chain::{Approval, Asset, CallInfo, Transaction, Transfer, TxStore};
use daas_detector::{classify_tx, ClassifierConfig, PsObservation, DEFAULT_RATIOS_BPS};
use eth_types::{Address, H256, U256};
use proptest::prelude::*;

fn addr(n: u8) -> Address {
    Address::from_key_seed(&[b'c', n])
}

/// Classifies a free-standing transaction through a single-entry
/// columnar arena, the only shape [`classify_tx`] reads.
fn classify(tx: Transaction, cfg: &ClassifierConfig) -> Option<PsObservation> {
    let store = TxStore::from_transactions(vec![tx]);
    classify_tx(store.view(0), cfg)
}

fn tx_with(transfers: Vec<Transfer>) -> Transaction {
    Transaction {
        id: 0,
        hash: H256::ZERO,
        block: 0,
        timestamp: 1_000,
        from: addr(200),
        to: Some(addr(0)),
        value: U256::ZERO,
        call: CallInfo::plain(),
        transfers,
        approvals: Vec::<Approval>::new(),
        created: None,
    }
}

fn split(total: u64, bps: u32) -> (U256, U256) {
    let total = U256::from_u64(total);
    let small = total.mul_div(U256::from_u64(bps as u64), U256::from_u64(10_000));
    (small, total - small)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn exact_ratio_splits_always_classify(
        total in 10_000u64..u64::MAX / 2,
        ratio_idx in 0usize..DEFAULT_RATIOS_BPS.len(),
        op in 1u8..100,
        aff in 101u8..200,
    ) {
        let bps = DEFAULT_RATIOS_BPS[ratio_idx];
        let (small, large) = split(total, bps);
        let t = tx_with(vec![
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(op), amount: small },
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(aff), amount: large },
        ]);
        let obs = classify(t, &ClassifierConfig::default());
        prop_assert!(obs.is_some(), "exact {bps}bps split of {total} unclassified");
        let obs = obs.unwrap();
        prop_assert_eq!(obs.ratio_bps, bps);
        prop_assert_eq!(obs.operator, addr(op));
        prop_assert_eq!(obs.affiliate, addr(aff));
        prop_assert!(obs.operator_amount <= obs.affiliate_amount);
    }

    #[test]
    fn transfer_order_is_irrelevant(
        total in 10_000u64..1_000_000_000,
        ratio_idx in 0usize..DEFAULT_RATIOS_BPS.len(),
    ) {
        let bps = DEFAULT_RATIOS_BPS[ratio_idx];
        let (small, large) = split(total, bps);
        let fwd = tx_with(vec![
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(1), amount: small },
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(2), amount: large },
        ]);
        let rev = tx_with(vec![
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(2), amount: large },
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(1), amount: small },
        ]);
        let a = classify(fwd, &ClassifierConfig::default());
        let b = classify(rev, &ClassifierConfig::default());
        prop_assert_eq!(a.clone().map(|o| (o.operator, o.affiliate, o.ratio_bps)),
                        b.map(|o| (o.operator, o.affiliate, o.ratio_bps)));
        prop_assert!(a.is_some());
    }

    #[test]
    fn off_ratio_splits_never_classify(
        total in 1_000_000u64..1_000_000_000,
        ratio_pct in 1u32..50,
    ) {
        // Integer percents far from every table entry (tolerance is
        // 0.5%, table entries are 10, 12.5, 15, 17.5, 20, 25, 30, 33,
        // 40): skip anything within 1% of a table ratio.
        let bps = ratio_pct * 100;
        let near_table = DEFAULT_RATIOS_BPS
            .iter()
            .any(|&t| (t as i64 - bps as i64).abs() <= 100);
        prop_assume!(!near_table);
        let (small, large) = split(total, bps);
        prop_assume!(!small.is_zero() && small != large);
        let t = tx_with(vec![
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(1), amount: small },
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(2), amount: large },
        ]);
        prop_assert!(classify(t, &ClassifierConfig::default()).is_none(),
            "off-ratio {bps}bps classified");
    }

    #[test]
    fn random_transfer_soup_never_panics(
        n in 0usize..8,
        seed_bytes in proptest::collection::vec(any::<(u8, u8, u64)>(), 0..8),
    ) {
        // Arbitrary transfer sets: classification must be total.
        let transfers: Vec<Transfer> = seed_bytes
            .iter()
            .take(n)
            .map(|&(from, to, amount)| Transfer {
                asset: Asset::Eth,
                from: addr(from),
                to: addr(to),
                amount: U256::from_u64(amount),
            })
            .collect();
        let _ = classify(tx_with(transfers), &ClassifierConfig::default());
    }

    #[test]
    fn tolerance_monotone(
        total in 1_000_000u64..1_000_000_000,
        noise_bps in 0u32..200,
    ) {
        // A 20% split perturbed by `noise_bps`: if a tighter tolerance
        // accepts it, every looser tolerance must too.
        let small = U256::from_u64(total).mul_div(
            U256::from_u64(2_000 + noise_bps as u64),
            U256::from_u64(10_000),
        );
        let large = U256::from_u64(total) - small;
        prop_assume!(small < large);
        let t = tx_with(vec![
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(1), amount: small },
            Transfer { asset: Asset::Eth, from: addr(0), to: addr(2), amount: large },
        ]);
        let mut last: Option<bool> = None;
        for tol in [0.001, 0.005, 0.02, 0.1] {
            let cfg = ClassifierConfig { tolerance: tol, ..Default::default() };
            let hit = classify(t.clone(), &cfg).is_some();
            if let Some(prev) = last {
                prop_assert!(!prev || hit, "tolerance not monotone");
            }
            last = Some(hit);
        }
    }
}
