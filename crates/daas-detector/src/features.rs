//! Per-account feature extraction shared by family forensics and the
//! measurement analytics.
//!
//! The Table 3 contract profiles, the §7.2 lifecycle analysis, the §6.2
//! operator lifecycles, and the §6.1 repeat-victim study all re-derive
//! the same per-account facts — first/last activity, observation spans,
//! live approvals — each with its own `O(observations)` or
//! `O(history)` scan. [`FeatureCache`] extracts them once: observation
//! lookups are indexed eagerly at construction (one pass over the
//! dataset), and per-account [`AccountFeatures`] are memoised on the
//! same [`ShardedMemo`] the classification cache uses, so forensics
//! workers on different families share results without contending.
//!
//! Everything here is a pure function of one `(chain, dataset)` pair —
//! the cache borrows both, so it cannot outlive or be reused across
//! them.

use std::collections::HashMap;

use daas_chain::{Chain, MemoStats, ShardedMemo, Timestamp, TxId};
use eth_types::{AddrId, Address};

use crate::classify::PsObservation;
use crate::dataset::Dataset;

/// Facts about one account, derived from its chain history and the
/// discovered dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccountFeatures {
    /// Timestamp of the account's first transaction, if any.
    pub first_tx_ts: Option<Timestamp>,
    /// Timestamp of the account's last transaction, if any.
    pub last_tx_ts: Option<Timestamp>,
    /// Number of transactions touching the account.
    pub tx_count: usize,
    /// Number of profit-sharing observations naming the account as the
    /// contract.
    pub obs_count: usize,
    /// Earliest observation timestamp (as contract), if any.
    pub obs_first_ts: Option<Timestamp>,
    /// Latest observation timestamp (as contract), if any.
    pub obs_last_ts: Option<Timestamp>,
    /// Dataset contracts the account still holds a live approval toward
    /// (ERC-20 allowance or NFT operator approval), sorted.
    pub live_approval_spenders: Vec<Address>,
}

/// Per-contract observation aggregate, built in one dataset pass.
#[derive(Debug, Clone, Copy)]
struct ObsStats {
    count: usize,
    first_ts: Timestamp,
    last_ts: Timestamp,
}

/// A memoised per-account feature extractor over one `(chain, dataset)`
/// pair. `Sync` — hand `&FeatureCache` to forensics workers.
pub struct FeatureCache<'a> {
    chain: &'a Chain,
    dataset: &'a Dataset,
    /// `tx id → index into dataset.observations`, replacing the
    /// `O(observations)` linear probe per transaction.
    obs_by_tx: HashMap<TxId, usize>,
    /// Per-contract observation aggregates, replacing the
    /// `O(observations)` filter per contract.
    obs_stats: HashMap<Address, ObsStats>,
    /// Keyed by interned id: probes hash 4 bytes and shard placement is
    /// the id's low bits. Accounts the chain has never seen have no id —
    /// their features are the default and are not memoised.
    memo: ShardedMemo<AddrId, AccountFeatures>,
}

impl<'a> FeatureCache<'a> {
    /// Builds the cache (indexes the dataset's observations; one pass)
    /// with [`daas_chain::DEFAULT_SHARDS`] memo shards.
    pub fn new(chain: &'a Chain, dataset: &'a Dataset) -> Self {
        Self::with_shards(chain, dataset, daas_chain::DEFAULT_SHARDS)
    }

    /// Builds the cache with `shards` memo shards (power of two,
    /// debug-asserted).
    pub fn with_shards(chain: &'a Chain, dataset: &'a Dataset, shards: usize) -> Self {
        let mut obs_by_tx = HashMap::with_capacity(dataset.observations.len());
        let mut obs_stats: HashMap<Address, ObsStats> = HashMap::new();
        for (i, obs) in dataset.observations.iter().enumerate() {
            obs_by_tx.insert(obs.tx, i);
            obs_stats
                .entry(obs.contract)
                .and_modify(|s| {
                    s.count += 1;
                    s.first_ts = s.first_ts.min(obs.timestamp);
                    s.last_ts = s.last_ts.max(obs.timestamp);
                })
                .or_insert(ObsStats {
                    count: 1,
                    first_ts: obs.timestamp,
                    last_ts: obs.timestamp,
                });
        }
        FeatureCache {
            chain,
            dataset,
            obs_by_tx,
            obs_stats,
            memo: ShardedMemo::with_shards(shards),
        }
    }

    /// The observation classified from `txid`, if the dataset holds one.
    /// `O(1)` via the eager index.
    pub fn observation(&self, txid: TxId) -> Option<&'a PsObservation> {
        self.obs_by_tx.get(&txid).map(|&i| &self.dataset.observations[i])
    }

    /// The memoised features of `account`, computing them on first use.
    /// An account the chain has never interned has no history, no
    /// approvals, and no observations — the default features, returned
    /// without touching the memo.
    pub fn features(&self, account: Address) -> AccountFeatures {
        match self.chain.addr_id(account) {
            Some(id) => self.memo.get_or_compute(id, || self.compute(account)),
            None => AccountFeatures::default(),
        }
    }

    /// `(observation count, first ts, last ts)` of `contract` across the
    /// dataset — `O(1)` from the eager per-contract aggregate, no memo
    /// fill or history walk.
    pub fn contract_observation_span(
        &self,
        contract: Address,
    ) -> Option<(usize, Timestamp, Timestamp)> {
        self.obs_stats.get(&contract).map(|s| (s.count, s.first_ts, s.last_ts))
    }

    /// Number of accounts with memoised features.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether no account has been extracted yet.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Hit/miss counters and per-shard occupancy of the feature memo.
    /// The observability layer exports them as `cache.features.hit` /
    /// `cache.features.miss`.
    pub fn stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Warms the memo for `accounts`, fanning the pure extraction over
    /// `threads` workers. With `threads <= 1` this is a no-op — the
    /// sequential oracle computes lazily through [`Self::features`].
    /// Same argument as the classification cache: workers only insert
    /// results of a pure function keyed by address, so the schedule
    /// cannot change what any reader later observes.
    pub fn prewarm(&self, accounts: &[Address], threads: usize) {
        if threads <= 1 || accounts.is_empty() {
            return;
        }
        let mut addrs: Vec<Address> = accounts.to_vec();
        addrs.sort_unstable();
        addrs.dedup();
        let workers = threads.min(addrs.len());
        let chunk = addrs.len().div_ceil(workers);
        crossbeam::scope(|scope| {
            for part in addrs.chunks(chunk) {
                scope.spawn(move |_| {
                    for &a in part {
                        self.features(a);
                    }
                });
            }
        })
        .expect("feature workers do not panic");
    }

    /// The pure extraction: one history walk plus O(1) index lookups.
    fn compute(&self, account: Address) -> AccountFeatures {
        let reader = self.chain.reader();
        let history = reader.txs_of(account);
        let first_tx_ts = history.first().map(|&id| reader.tx(id).timestamp());
        let last_tx_ts = history.last().map(|&id| reader.tx(id).timestamp());

        let mut live: Vec<Address> = Vec::new();
        for &txid in history {
            for appr in reader.tx(txid).approvals() {
                if appr.owner != account || !self.dataset.contracts.contains(&appr.spender) {
                    continue;
                }
                let erc20_live =
                    !self.chain.erc20_allowance(appr.token, account, appr.spender).is_zero();
                let nft_live = self.chain.nft_approved_for_all(appr.token, account, appr.spender);
                if erc20_live || nft_live {
                    live.push(appr.spender);
                }
            }
        }
        live.sort_unstable();
        live.dedup();

        let obs = self.obs_stats.get(&account);
        AccountFeatures {
            first_tx_ts,
            last_tx_ts,
            tx_count: history.len(),
            obs_count: obs.map_or(0, |s| s.count),
            obs_first_ts: obs.map(|s| s.first_ts),
            obs_last_ts: obs.map(|s| s.last_ts),
            live_approval_spenders: live,
        }
    }
}

impl std::fmt::Debug for FeatureCache<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeatureCache")
            .field("observations", &self.obs_by_tx.len())
            .field("accounts", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_world_yields_default_features() {
        let chain = Chain::new();
        let dataset = Dataset::default();
        let cache = FeatureCache::new(&chain, &dataset);
        assert!(cache.is_empty());
        let f = cache.features(Address([1; 20]));
        assert_eq!(f, AccountFeatures::default());
        assert!(cache.is_empty(), "unknown accounts have no id and are not memoised");
        assert!(cache.observation(0).is_none());
    }

    #[test]
    fn prewarm_sequential_is_noop() {
        use eth_types::units::ether;
        let mut chain = Chain::new();
        let a = chain.create_eoa_funded(b"fc/a", ether(2)).unwrap();
        let b = chain.create_eoa(b"fc/b").unwrap();
        chain.transfer_eth(a, b, ether(1)).unwrap();
        let dataset = Dataset::default();
        let cache = FeatureCache::new(&chain, &dataset);
        cache.prewarm(&[a], 1);
        assert!(cache.is_empty());
        cache.prewarm(&[a, b], 2);
        assert_eq!(cache.len(), 2);
    }
}
