//! The DaaS dataset model (Table 1's unit of account).

use std::collections::BTreeSet;

use daas_chain::TxId;
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::classify::PsObservation;

/// Row counts in Table 1's format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DatasetCounts {
    /// Profit-sharing contracts.
    pub contracts: usize,
    /// Operator accounts.
    pub operators: usize,
    /// Affiliate accounts.
    pub affiliates: usize,
    /// Profit-sharing transactions.
    pub ps_txs: usize,
}

impl DatasetCounts {
    /// Total DaaS accounts (contracts + operators + affiliates).
    pub fn daas_accounts(&self) -> usize {
        self.contracts + self.operators + self.affiliates
    }
}

/// The discovered DaaS dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Profit-sharing contracts.
    pub contracts: BTreeSet<Address>,
    /// Operator accounts (smaller-share recipients).
    pub operators: BTreeSet<Address>,
    /// Affiliate accounts (larger-share recipients).
    pub affiliates: BTreeSet<Address>,
    /// All classified profit-sharing transactions.
    pub ps_txs: BTreeSet<TxId>,
    /// One observation per transaction in `ps_txs`.
    pub observations: Vec<PsObservation>,
    /// Counts snapshotted after the seed stage (Table 1, left column).
    pub seed: DatasetCounts,
    /// Expansion rounds until fixpoint.
    pub rounds: usize,
}

impl Dataset {
    /// Current counts (Table 1, right column once expansion finishes).
    pub fn counts(&self) -> DatasetCounts {
        DatasetCounts {
            contracts: self.contracts.len(),
            operators: self.operators.len(),
            affiliates: self.affiliates.len(),
            ps_txs: self.ps_txs.len(),
        }
    }

    /// `true` if the address is any kind of DaaS account in the dataset.
    pub fn contains(&self, address: Address) -> bool {
        self.contracts.contains(&address)
            || self.operators.contains(&address)
            || self.affiliates.contains(&address)
    }

    /// Absorbs an observation (contract + roles + transaction). Returns
    /// `true` if the transaction was new.
    pub fn absorb(&mut self, obs: PsObservation) -> bool {
        if !self.ps_txs.insert(obs.tx) {
            return false;
        }
        self.contracts.insert(obs.contract);
        self.operators.insert(obs.operator);
        self.affiliates.insert(obs.affiliate);
        self.observations.push(obs);
        true
    }

    /// [`Self::absorb`] from a borrowed observation — clones only when
    /// the transaction is actually new, so callers holding shared
    /// (`Arc`ed) cache verdicts pay one clone per absorbed positive
    /// instead of one per classification fan-out.
    pub fn absorb_ref(&mut self, obs: &PsObservation) -> bool {
        if self.ps_txs.contains(&obs.tx) {
            return false;
        }
        self.absorb(obs.clone())
    }

    /// Observations attributed to one contract.
    pub fn observations_of(&self, contract: Address) -> impl Iterator<Item = &PsObservation> {
        self.observations.iter().filter(move |o| o.contract == contract)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::Asset;
    use eth_types::U256;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    fn obs(tx: TxId, contract: Address, op: Address, aff: Address) -> PsObservation {
        PsObservation {
            tx,
            timestamp: 0,
            source: contract,
            contract,
            operator: op,
            affiliate: aff,
            operator_amount: U256::from_u64(20),
            affiliate_amount: U256::from_u64(80),
            ratio_bps: 2000,
            asset: Asset::Eth,
        }
    }

    #[test]
    fn absorb_dedupes_by_tx() {
        let mut ds = Dataset::default();
        assert!(ds.absorb(obs(1, addr(1), addr(2), addr(3))));
        assert!(!ds.absorb(obs(1, addr(1), addr(2), addr(4))));
        assert_eq!(ds.counts().ps_txs, 1);
        assert_eq!(ds.counts().contracts, 1);
        assert_eq!(ds.counts().operators, 1);
        assert_eq!(ds.counts().affiliates, 1);
        assert_eq!(ds.counts().daas_accounts(), 3);
    }

    #[test]
    fn contains_covers_all_classes() {
        let mut ds = Dataset::default();
        ds.absorb(obs(1, addr(1), addr(2), addr(3)));
        assert!(ds.contains(addr(1)));
        assert!(ds.contains(addr(2)));
        assert!(ds.contains(addr(3)));
        assert!(!ds.contains(addr(4)));
    }

    #[test]
    fn observations_of_filters() {
        let mut ds = Dataset::default();
        ds.absorb(obs(1, addr(1), addr(2), addr(3)));
        ds.absorb(obs(2, addr(1), addr(2), addr(4)));
        ds.absorb(obs(3, addr(9), addr(2), addr(3)));
        assert_eq!(ds.observations_of(addr(1)).count(), 2);
        assert_eq!(ds.observations_of(addr(9)).count(), 1);
    }
}
