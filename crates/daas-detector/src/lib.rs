//! The DaaS detection pipeline — the paper's primary contribution.
//!
//! Three stages, mirroring §4–§5:
//!
//! 1. **Classify** ([`classify_tx`]): decide whether a transaction is a
//!    profit-sharing transaction — exactly two transfers of one fungible
//!    asset from a single source, split in one of the nine observed
//!    operator ratios, with the operator (smaller share) and affiliate
//!    (larger share) roles read off the amounts.
//! 2. **Snowball** ([`build_dataset`]): seed profit-sharing contracts
//!    from public label sources, absorb their operator/affiliate
//!    accounts, then iteratively expand by scanning those accounts'
//!    histories for new profit-sharing contracts — guarded by the
//!    "previously interacted with another phishing account" rule — until
//!    fixpoint.
//! 3. **Evaluate** ([`evaluate`]): score the discovered dataset against
//!    a known ground truth (precision/recall per account class), plus
//!    the paper's §5.2 manual-validation sampling exercise
//!    ([`validation_sample`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod classify;
mod dataset;
mod evaluate;
mod features;
pub mod online;
mod robustness;
mod snowball;

pub use cache::ClassificationCache;
pub use classify::{classify_tx, ClassifierConfig, PsObservation, DEFAULT_RATIOS_BPS};
pub use features::{AccountFeatures, FeatureCache};
pub use dataset::{Dataset, DatasetCounts};
pub use evaluate::{evaluate, validation_sample, ClassScores, Evaluation, ValidationSample};
pub use online::{Admission, DetectorCheckpoint, DetectorEvent, OnlineDetector};
pub use robustness::{pairwise_family_scores, LossAttribution};
pub use snowball::{build_dataset, build_dataset_with_cache, SnowballConfig};
