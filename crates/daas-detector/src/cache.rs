//! Shared transaction-classification cache.
//!
//! [`classify_tx`] is a pure function of the transaction and the
//! classifier settings, yet batch snowball sampling, step-2
//! re-qualification and the online detector all classify the same
//! transactions repeatedly. [`ClassificationCache`] memoises the
//! verdict — including negative verdicts — keyed by transaction id, on
//! a [`ShardedMemo`] so parallel expansion workers do not serialise on
//! a single lock. The shard count defaults to the chain store's
//! [`DEFAULT_SHARDS`] and is configurable for workloads with many more
//! (or fewer) workers.
//!
//! A cache is valid for exactly one [`ClassifierConfig`]; callers that
//! sweep classifier settings (the ablation harness) must use a fresh
//! cache per configuration.

use std::fmt;
use std::sync::Arc;

use daas_chain::{Chain, MemoStats, ShardedMemo, TxId};
use eth_types::Address;

use crate::classify::{classify_tx, ClassifierConfig, PsObservation};

/// Concurrent memo table for [`classify_tx`] verdicts.
///
/// Verdicts are stored as `Arc<PsObservation>`: the detector and the
/// clusterer fan each positive observation out to several consumers
/// (event log, window stats, family ingest), so a cache hit hands out a
/// reference-count bump instead of cloning the ~200-byte observation
/// per consumer.
pub struct ClassificationCache {
    memo: ShardedMemo<TxId, Option<Arc<PsObservation>>>,
}

impl Default for ClassificationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ClassificationCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassificationCache").field("entries", &self.len()).finish()
    }
}

impl ClassificationCache {
    /// Creates an empty cache with [`daas_chain::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ClassificationCache { memo: ShardedMemo::new() }
    }

    /// Creates an empty cache with `shards` shards. Must be a power of
    /// two (debug-asserted).
    pub fn with_shards(shards: usize) -> Self {
        ClassificationCache { memo: ShardedMemo::with_shards(shards) }
    }

    /// Number of shards the cache is split into.
    pub fn shard_count(&self) -> usize {
        self.memo.shard_count()
    }

    /// Classifies `txid` through the cache: returns the memoised
    /// verdict when present, otherwise computes, stores and returns it.
    pub fn classify(
        &self,
        chain: &Chain,
        txid: TxId,
        cfg: &ClassifierConfig,
    ) -> Option<Arc<PsObservation>> {
        self.memo.get_or_compute(txid, || classify_tx(chain.tx(txid), cfg).map(Arc::new))
    }

    /// Whether a verdict for `txid` is already cached.
    pub fn contains(&self, txid: TxId) -> bool {
        self.memo.contains(&txid)
    }

    /// Number of cached verdicts (positive and negative).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }

    /// Drops every cached verdict (e.g. before reusing the allocation
    /// with a different [`ClassifierConfig`]). Resets the hit/miss
    /// counters too.
    pub fn clear(&self) {
        self.memo.clear();
    }

    /// Hit/miss counters and per-shard occupancy since construction (or
    /// the last [`Self::clear`]). Always on — the counters are relaxed
    /// atomics bumped under the shard lock, so reading them costs
    /// nothing on the classify path. The observability layer exports
    /// them as `cache.classify.hit` / `cache.classify.miss`.
    pub fn stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// Warms the cache with every transaction in the given accounts'
    /// histories, fanning the pure classification over `threads`
    /// workers. With `threads <= 1` this is a no-op: the sequential
    /// oracle path computes verdicts lazily through [`Self::classify`]
    /// and must not change shape.
    ///
    /// Workers only insert results of a pure function keyed by
    /// transaction id, so the warming order — and therefore the thread
    /// schedule — cannot influence anything a reader later observes.
    pub fn prewarm(
        &self,
        chain: &Chain,
        accounts: &[Address],
        cfg: &ClassifierConfig,
        threads: usize,
    ) {
        if threads <= 1 || accounts.is_empty() {
            return;
        }
        let reader = chain.reader();
        let mut txids: Vec<TxId> =
            accounts.iter().flat_map(|&a| reader.txs_of(a).iter().copied()).collect();
        txids.sort_unstable();
        txids.dedup();
        txids.retain(|&id| !self.contains(id));
        if txids.is_empty() {
            return;
        }
        let workers = threads.min(txids.len());
        let chunk = txids.len().div_ceil(workers);
        crossbeam::scope(|scope| {
            for part in txids.chunks(chunk) {
                scope.spawn(move |_| {
                    for &id in part {
                        self.classify(chain, id, cfg);
                    }
                });
            }
        })
        .expect("classification workers do not panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_reports_empty() {
        let cache = ClassificationCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert!(!cache.contains(0));
        assert_eq!(cache.shard_count(), daas_chain::DEFAULT_SHARDS);
    }

    #[test]
    fn clear_resets_shards() {
        let cache = ClassificationCache::with_shards(4);
        assert_eq!(cache.shard_count(), 4);
        cache.memo.get_or_compute(3, || None);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(3));
        cache.clear();
        assert!(cache.is_empty());
    }
}
