//! Shared transaction-classification cache.
//!
//! [`classify_tx`] is a pure function of the transaction and the
//! classifier settings, yet batch snowball sampling, step-2
//! re-qualification and the online detector all classify the same
//! transactions repeatedly. [`ClassificationCache`] memoises the
//! verdict — including negative verdicts — keyed by transaction id,
//! sharded so parallel expansion workers do not serialise on a single
//! lock.
//!
//! A cache is valid for exactly one [`ClassifierConfig`]; callers that
//! sweep classifier settings (the ablation harness) must use a fresh
//! cache per configuration.

use std::collections::HashMap;
use std::fmt;

use daas_chain::{Chain, TxId};
use eth_types::Address;
use parking_lot::RwLock;

use crate::classify::{classify_tx, ClassifierConfig, PsObservation};

/// Shard count; a power of two so the shard index is a mask.
const SHARDS: usize = 16;

/// Concurrent memo table for [`classify_tx`] verdicts.
pub struct ClassificationCache {
    shards: Vec<RwLock<HashMap<TxId, Option<PsObservation>>>>,
}

impl Default for ClassificationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ClassificationCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassificationCache").field("entries", &self.len()).finish()
    }
}

impl ClassificationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ClassificationCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, txid: TxId) -> &RwLock<HashMap<TxId, Option<PsObservation>>> {
        &self.shards[txid as usize & (SHARDS - 1)]
    }

    /// Classifies `txid` through the cache: returns the memoised
    /// verdict when present, otherwise computes, stores and returns it.
    pub fn classify(
        &self,
        chain: &Chain,
        txid: TxId,
        cfg: &ClassifierConfig,
    ) -> Option<PsObservation> {
        let shard = self.shard(txid);
        if let Some(hit) = shard.read().get(&txid) {
            return hit.clone();
        }
        let verdict = classify_tx(chain.tx(txid), cfg);
        shard.write().insert(txid, verdict.clone());
        verdict
    }

    /// Whether a verdict for `txid` is already cached.
    pub fn contains(&self, txid: TxId) -> bool {
        self.shard(txid).read().contains_key(&txid)
    }

    /// Number of cached verdicts (positive and negative).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached verdict (e.g. before reusing the allocation
    /// with a different [`ClassifierConfig`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Warms the cache with every transaction in the given accounts'
    /// histories, fanning the pure classification over `threads`
    /// workers. With `threads <= 1` this is a no-op: the sequential
    /// oracle path computes verdicts lazily through [`Self::classify`]
    /// and must not change shape.
    ///
    /// Workers only insert results of a pure function keyed by
    /// transaction id, so the warming order — and therefore the thread
    /// schedule — cannot influence anything a reader later observes.
    pub fn prewarm(
        &self,
        chain: &Chain,
        accounts: &[Address],
        cfg: &ClassifierConfig,
        threads: usize,
    ) {
        if threads <= 1 || accounts.is_empty() {
            return;
        }
        let mut txids: Vec<TxId> =
            accounts.iter().flat_map(|&a| chain.txs_of(a).iter().copied()).collect();
        txids.sort_unstable();
        txids.dedup();
        txids.retain(|&id| !self.contains(id));
        if txids.is_empty() {
            return;
        }
        let workers = threads.min(txids.len());
        let chunk = txids.len().div_ceil(workers);
        crossbeam::scope(|scope| {
            for part in txids.chunks(chunk) {
                scope.spawn(move |_| {
                    for &id in part {
                        self.classify(chain, id, cfg);
                    }
                });
            }
        })
        .expect("classification workers do not panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_reports_empty() {
        let cache = ClassificationCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert!(!cache.contains(0));
    }

    #[test]
    fn clear_resets_shards() {
        let cache = ClassificationCache::new();
        cache.shard(3).write().insert(3, None);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(3));
        cache.clear();
        assert!(cache.is_empty());
    }
}
