//! Online (streaming) dataset construction.
//!
//! The paper's collection ran continuously for 21 months; a deployed
//! pipeline does not re-run batch snowball sampling on every block.
//! [`OnlineDetector`] is the incremental equivalent: it keeps a cursor
//! into the chain, classifies new transactions as they confirm, admits
//! new profit-sharing contracts by the same seed-label and
//! guarded-expansion rules as [`crate::build_dataset`], and backfills a
//! newly admitted account's history so the maintained dataset converges
//! to exactly what the batch construction would produce.
//!
//! The poll-based shape (caller drives, detector returns the events
//! since the last poll) follows the workspace's event-driven style.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use daas_chain::{Chain, LabelStore, TxId};
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::cache::ClassificationCache;
use crate::dataset::Dataset;
use crate::snowball::SnowballConfig;

/// How a contract entered the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Publicly labeled as phishing (the step-1 seed rule).
    SeedLabel,
    /// Admitted by the guarded expansion rule (step 4).
    Expansion,
}

/// An event produced by [`OnlineDetector::poll`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorEvent {
    /// A new profit-sharing contract entered the dataset.
    ContractAdmitted {
        /// The contract.
        contract: Address,
        /// Which rule admitted it.
        via: Admission,
    },
    /// A new profit-sharing transaction was attributed (including
    /// backfilled history of a just-admitted contract).
    PsTransaction {
        /// The transaction.
        tx: TxId,
        /// Its contract.
        contract: Address,
    },
    /// A new operator account was observed.
    OperatorObserved(Address),
    /// A new affiliate account was observed.
    AffiliateObserved(Address),
}

/// Incremental detector state.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    cfg: SnowballConfig,
    dataset: Dataset,
    cursor: TxId,
    cache: Arc<ClassificationCache>,
    /// For each address: the earliest confirmed transaction that touches
    /// both it and a *current* dataset member other than the address
    /// itself. This is the expansion guard's "prior dataset contact",
    /// maintained incrementally (as the cursor passes each transaction,
    /// and by a one-time history walk when a member joins) so the guard
    /// is an O(1) lookup instead of an O(history) rescan per candidate.
    touch_min: txgraph::CowMap<Address, TxId>,
    /// Flat union of the dataset's contract/operator/affiliate sets —
    /// the per-transaction membership probe is one hash lookup instead
    /// of three B-tree searches. Maintained by [`Self::absorb_noting`],
    /// the only place the detector's dataset grows.
    members: txgraph::FxHashSet<Address>,
}

impl OnlineDetector {
    /// Creates a detector starting at the chain's first transaction.
    pub fn new(cfg: SnowballConfig) -> Self {
        let cache = Arc::new(ClassificationCache::new());
        OnlineDetector {
            cfg,
            dataset: Dataset::default(),
            cursor: 0,
            cache,
            touch_min: txgraph::CowMap::new(),
            members: txgraph::FxHashSet::default(),
        }
    }

    /// Creates a detector sharing a classification cache — typically
    /// one warmed by a batch [`crate::build_dataset_with_cache`] run
    /// over the same chain, so polling skips re-classification. The
    /// cache must match `cfg.classifier`.
    pub fn with_cache(cfg: SnowballConfig, cache: Arc<ClassificationCache>) -> Self {
        OnlineDetector {
            cfg,
            dataset: Dataset::default(),
            cursor: 0,
            cache,
            touch_min: txgraph::CowMap::new(),
            members: txgraph::FxHashSet::default(),
        }
    }

    /// The dataset maintained so far.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Transactions processed so far.
    pub fn cursor(&self) -> TxId {
        self.cursor
    }

    /// Processes every transaction confirmed since the last poll.
    /// Returns the events, in admission order.
    pub fn poll(&mut self, chain: &Chain, labels: &LabelStore) -> Vec<DetectorEvent> {
        self.poll_until(chain, labels, chain.transactions().len() as TxId)
    }

    /// Processes transactions up to (exclusive) `limit` — lets callers
    /// simulate block-by-block delivery.
    pub fn poll_until(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        limit: TxId,
    ) -> Vec<DetectorEvent> {
        let limit = limit.min(chain.transactions().len() as TxId);
        let _poll_span =
            daas_obs::span!("detector.poll", from = self.cursor, to = limit);
        let mut events = Vec::new();
        while self.cursor < limit {
            let txid = self.cursor;
            self.cursor += 1;
            let touched = chain.tx(txid).touched_addresses();
            self.step_tx(chain, labels, txid, &touched, &mut events);
            // Index this transaction's dataset contacts *after* its own
            // admission decision — the guard requires a contact strictly
            // before the surfacing transaction.
            self.note_tx(txid, &touched);
        }
        daas_obs::add("detector.events", events.len() as u64);
        events
    }

    /// One transaction's classification + admission decision.
    fn step_tx(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        txid: TxId,
        touched: &[Address],
        events: &mut Vec<DetectorEvent>,
    ) {
        // Pre-filter before paying for classification: the classifier's
        // contract is always `tx.to`, so every admission path is
        // decidable up front — absorb needs a known contract, expansion
        // needs a touched member besides the contract plus the O(1)
        // prior-contact guard, seed needs a public flag. Anything else
        // cannot change the dataset regardless of the verdict.
        let Some(to) = chain.tx(txid).to else { return };
        let admissible = self.dataset.contracts.contains(&to)
            || (touched.iter().any(|&a| a != to && self.members.contains(&a))
                && (!self.cfg.expansion_guard || self.prior_contact(to, txid)))
            || (labels.publicly_flagged(to) && chain.is_contract(to));
        if !admissible {
            return;
        }
        let Some(obs) = self.cache.classify(chain, txid, &self.cfg.classifier) else {
            return;
        };
        let contract = obs.contract;

        if self.dataset.contracts.contains(&contract) {
            self.absorb_and_backfill(chain, obs, events);
            return;
        }

        // Seed rule: the contract is publicly labeled as phishing.
        let seed = labels.publicly_flagged(contract) && chain.is_contract(contract);
        // Expansion rule: the transaction touches an account already
        // in the dataset, and the contract has a *prior* interaction
        // with the dataset (identical to the batch guard).
        let expansion = !seed && {
            let touches_dataset =
                touched.iter().any(|&a| a != contract && self.members.contains(&a));
            touches_dataset
                && (!self.cfg.expansion_guard || self.prior_contact(contract, txid))
        };
        if !(seed || expansion) {
            return;
        }

        events.push(DetectorEvent::ContractAdmitted {
            contract,
            via: if seed { Admission::SeedLabel } else { Admission::Expansion },
        });
        self.absorb_and_backfill(chain, obs, events);
        // Backfill the contract's own earlier history (step 2 on the
        // just-admitted contract), bounded by what has confirmed.
        self.backfill_account(chain, contract, &mut *events);
    }

    /// The expansion guard: has `contract` a dataset contact strictly
    /// before `surfacing_tx`, against the *current* dataset? O(1) via
    /// the incrementally maintained first-contact index.
    fn prior_contact(&self, contract: Address, surfacing_tx: TxId) -> bool {
        self.touch_min.get(&contract).is_some_and(|&t| t < surfacing_tx)
    }

    /// Records `txid` as a dataset contact for every address it touches
    /// alongside a current member (rule 1 of the index: transactions are
    /// indexed once, as the cursor passes them).
    fn note_tx(&mut self, txid: TxId, touched: &[Address]) {
        let members = touched.iter().filter(|a| self.members.contains(a)).count();
        if members == 0 {
            return;
        }
        for &a in touched {
            // `a` needs a member *other than itself* in the same tx.
            if members > 1 || !self.members.contains(&a) {
                self.note_touch(a, txid);
            }
        }
    }

    /// A new dataset member: every already-confirmed transaction in its
    /// history becomes a dataset contact for the other parties (rule 2
    /// of the index: one bounded walk per join covers the member's past;
    /// rule 1 covers its future).
    fn note_member(&mut self, chain: &Chain, member: Address) {
        let history: Vec<TxId> =
            chain.txs_of(member).iter().copied().filter(|&id| id < self.cursor).collect();
        for txid in history {
            for a in chain.tx(txid).touched_addresses() {
                if a != member {
                    self.note_touch(a, txid);
                }
            }
        }
    }

    fn note_touch(&mut self, addr: Address, txid: TxId) {
        let slot = self.touch_min.get_or_insert_with(addr, || txid);
        if *slot > txid {
            *slot = txid;
        }
    }

    /// [`Dataset::absorb`] plus first-contact index maintenance for any
    /// member the observation introduced.
    fn absorb_noting(&mut self, chain: &Chain, obs: crate::classify::PsObservation) -> bool {
        let (c, o, a) = (obs.contract, obs.operator, obs.affiliate);
        let new_c = !self.dataset.contracts.contains(&c);
        let new_o = !self.dataset.operators.contains(&o);
        let new_a = !self.dataset.affiliates.contains(&a);
        if !self.dataset.absorb(obs) {
            return false;
        }
        if new_c {
            self.members.insert(c);
            self.note_member(chain, c);
        }
        if new_o {
            self.members.insert(o);
            self.note_member(chain, o);
        }
        if new_a {
            self.members.insert(a);
            self.note_member(chain, a);
        }
        true
    }

    /// Absorbs one observation, emitting role events, and backfills the
    /// histories of any newly seen operators/affiliates (the streaming
    /// equivalent of the batch fixpoint).
    fn absorb_and_backfill(
        &mut self,
        chain: &Chain,
        obs: crate::classify::PsObservation,
        events: &mut Vec<DetectorEvent>,
    ) {
        let mut queue: VecDeque<Address> = VecDeque::new();
        let (tx, contract, op, aff) = (obs.tx, obs.contract, obs.operator, obs.affiliate);
        let new_op = !self.dataset.operators.contains(&op);
        let new_aff = !self.dataset.affiliates.contains(&aff);
        if !self.absorb_noting(chain, obs) {
            return;
        }
        events.push(DetectorEvent::PsTransaction { tx, contract });
        if new_op {
            events.push(DetectorEvent::OperatorObserved(op));
            queue.push_back(op);
        }
        if new_aff {
            events.push(DetectorEvent::AffiliateObserved(aff));
            queue.push_back(aff);
        }
        let mut seen: HashSet<Address> = queue.iter().copied().collect();
        while let Some(account) = queue.pop_front() {
            let new_members = self.scan_account(chain, account, events);
            for member in new_members {
                if seen.insert(member) {
                    queue.push_back(member);
                }
            }
        }
    }

    /// Scans an account's *confirmed* history (up to the cursor) for
    /// profit-sharing transactions, admitting new contracts by the
    /// expansion rule. Returns newly observed operator/affiliate
    /// accounts.
    fn scan_account(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) -> Vec<Address> {
        let mut new_members = Vec::new();
        let history: Vec<TxId> = chain
            .txs_of(account)
            .iter()
            .copied()
            .filter(|&id| id < self.cursor)
            .collect();
        for txid in history {
            let Some(obs) = self.cache.classify(chain, txid, &self.cfg.classifier) else {
                continue;
            };
            let contract = obs.contract;
            let known = self.dataset.contracts.contains(&contract);
            if !known {
                let guard_ok =
                    !self.cfg.expansion_guard || self.prior_contact(contract, txid);
                if !guard_ok {
                    continue;
                }
                events.push(DetectorEvent::ContractAdmitted {
                    contract,
                    via: Admission::Expansion,
                });
            }
            let (op, aff) = (obs.operator, obs.affiliate);
            let new_op = !self.dataset.operators.contains(&op);
            let new_aff = !self.dataset.affiliates.contains(&aff);
            if self.absorb_noting(chain, obs) {
                events.push(DetectorEvent::PsTransaction { tx: txid, contract });
                if new_op {
                    events.push(DetectorEvent::OperatorObserved(op));
                    new_members.push(op);
                }
                if new_aff {
                    events.push(DetectorEvent::AffiliateObserved(aff));
                    new_members.push(aff);
                }
            }
            if !known {
                // New contract: sweep its own confirmed history too.
                let more = self.backfill_account_collect(chain, contract, events);
                new_members.extend(more);
            }
        }
        new_members
    }

    fn backfill_account(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) {
        let mut queue: VecDeque<Address> = VecDeque::from([account]);
        let mut seen: HashSet<Address> = queue.iter().copied().collect();
        while let Some(acc) = queue.pop_front() {
            for member in self.scan_account(chain, acc, events) {
                if seen.insert(member) {
                    queue.push_back(member);
                }
            }
        }
    }

    fn backfill_account_collect(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) -> Vec<Address> {
        self.scan_account(chain, account, events)
    }
}
