//! Online (streaming) dataset construction.
//!
//! The paper's collection ran continuously for 21 months; a deployed
//! pipeline does not re-run batch snowball sampling on every block.
//! [`OnlineDetector`] is the incremental equivalent: it keeps a cursor
//! into the chain, classifies new transactions as they confirm, admits
//! new profit-sharing contracts by the same seed-label and
//! guarded-expansion rules as [`crate::build_dataset`], and backfills a
//! newly admitted account's history so the maintained dataset converges
//! to exactly what the batch construction would produce.
//!
//! The poll-based shape (caller drives, detector returns the events
//! since the last poll) follows the workspace's event-driven style.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use daas_chain::{Chain, LabelStore, TxId};
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::cache::ClassificationCache;
use crate::dataset::Dataset;
use crate::snowball::SnowballConfig;

/// How a contract entered the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Publicly labeled as phishing (the step-1 seed rule).
    SeedLabel,
    /// Admitted by the guarded expansion rule (step 4).
    Expansion,
}

/// An event produced by [`OnlineDetector::poll`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorEvent {
    /// A new profit-sharing contract entered the dataset.
    ContractAdmitted {
        /// The contract.
        contract: Address,
        /// Which rule admitted it.
        via: Admission,
    },
    /// A new profit-sharing transaction was attributed (including
    /// backfilled history of a just-admitted contract).
    PsTransaction {
        /// The transaction.
        tx: TxId,
        /// Its contract.
        contract: Address,
    },
    /// A new operator account was observed.
    OperatorObserved(Address),
    /// A new affiliate account was observed.
    AffiliateObserved(Address),
}

/// Incremental detector state.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    cfg: SnowballConfig,
    dataset: Dataset,
    cursor: TxId,
    cache: Arc<ClassificationCache>,
}

impl OnlineDetector {
    /// Creates a detector starting at the chain's first transaction.
    pub fn new(cfg: SnowballConfig) -> Self {
        let cache = Arc::new(ClassificationCache::new());
        OnlineDetector { cfg, dataset: Dataset::default(), cursor: 0, cache }
    }

    /// Creates a detector sharing a classification cache — typically
    /// one warmed by a batch [`crate::build_dataset_with_cache`] run
    /// over the same chain, so polling skips re-classification. The
    /// cache must match `cfg.classifier`.
    pub fn with_cache(cfg: SnowballConfig, cache: Arc<ClassificationCache>) -> Self {
        OnlineDetector { cfg, dataset: Dataset::default(), cursor: 0, cache }
    }

    /// The dataset maintained so far.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Transactions processed so far.
    pub fn cursor(&self) -> TxId {
        self.cursor
    }

    /// Processes every transaction confirmed since the last poll.
    /// Returns the events, in admission order.
    pub fn poll(&mut self, chain: &Chain, labels: &LabelStore) -> Vec<DetectorEvent> {
        self.poll_until(chain, labels, chain.transactions().len() as TxId)
    }

    /// Processes transactions up to (exclusive) `limit` — lets callers
    /// simulate block-by-block delivery.
    pub fn poll_until(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        limit: TxId,
    ) -> Vec<DetectorEvent> {
        let limit = limit.min(chain.transactions().len() as TxId);
        let _poll_span =
            daas_obs::span!("detector.poll", from = self.cursor, to = limit);
        let mut events = Vec::new();
        while self.cursor < limit {
            let txid = self.cursor;
            self.cursor += 1;
            let Some(obs) = self.cache.classify(chain, txid, &self.cfg.classifier) else {
                continue;
            };
            let contract = obs.contract;

            if self.dataset.contracts.contains(&contract) {
                self.absorb_and_backfill(chain, obs, &mut events);
                continue;
            }

            // Seed rule: the contract is publicly labeled as phishing.
            let seed = labels.publicly_flagged(contract) && chain.is_contract(contract);
            // Expansion rule: the transaction touches an account already
            // in the dataset, and the contract has a *prior* interaction
            // with the dataset (identical to the batch guard).
            let expansion = !seed && {
                let touches_dataset = chain
                    .tx(txid)
                    .touched_addresses()
                    .into_iter()
                    .any(|a| a != contract && self.dataset.contains(a));
                touches_dataset
                    && (!self.cfg.expansion_guard
                        || previously_interacted_online(chain, &self.dataset, contract, txid))
            };
            if !(seed || expansion) {
                continue;
            }

            events.push(DetectorEvent::ContractAdmitted {
                contract,
                via: if seed { Admission::SeedLabel } else { Admission::Expansion },
            });
            self.absorb_and_backfill(chain, obs, &mut events);
            // Backfill the contract's own earlier history (step 2 on the
            // just-admitted contract), bounded by what has confirmed.
            self.backfill_account(chain, contract, &mut events);
        }
        daas_obs::add("detector.events", events.len() as u64);
        events
    }

    /// Absorbs one observation, emitting role events, and backfills the
    /// histories of any newly seen operators/affiliates (the streaming
    /// equivalent of the batch fixpoint).
    fn absorb_and_backfill(
        &mut self,
        chain: &Chain,
        obs: crate::classify::PsObservation,
        events: &mut Vec<DetectorEvent>,
    ) {
        let mut queue: VecDeque<Address> = VecDeque::new();
        let (tx, contract, op, aff) = (obs.tx, obs.contract, obs.operator, obs.affiliate);
        let new_op = !self.dataset.operators.contains(&op);
        let new_aff = !self.dataset.affiliates.contains(&aff);
        if !self.dataset.absorb(obs) {
            return;
        }
        events.push(DetectorEvent::PsTransaction { tx, contract });
        if new_op {
            events.push(DetectorEvent::OperatorObserved(op));
            queue.push_back(op);
        }
        if new_aff {
            events.push(DetectorEvent::AffiliateObserved(aff));
            queue.push_back(aff);
        }
        let mut seen: HashSet<Address> = queue.iter().copied().collect();
        while let Some(account) = queue.pop_front() {
            let new_members = self.scan_account(chain, account, events);
            for member in new_members {
                if seen.insert(member) {
                    queue.push_back(member);
                }
            }
        }
    }

    /// Scans an account's *confirmed* history (up to the cursor) for
    /// profit-sharing transactions, admitting new contracts by the
    /// expansion rule. Returns newly observed operator/affiliate
    /// accounts.
    fn scan_account(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) -> Vec<Address> {
        let mut new_members = Vec::new();
        let history: Vec<TxId> = chain
            .txs_of(account)
            .iter()
            .copied()
            .filter(|&id| id < self.cursor)
            .collect();
        for txid in history {
            let Some(obs) = self.cache.classify(chain, txid, &self.cfg.classifier) else {
                continue;
            };
            let contract = obs.contract;
            let known = self.dataset.contracts.contains(&contract);
            if !known {
                let guard_ok = !self.cfg.expansion_guard
                    || previously_interacted_online(chain, &self.dataset, contract, txid);
                if !guard_ok {
                    continue;
                }
                events.push(DetectorEvent::ContractAdmitted {
                    contract,
                    via: Admission::Expansion,
                });
            }
            let (op, aff) = (obs.operator, obs.affiliate);
            let new_op = !self.dataset.operators.contains(&op);
            let new_aff = !self.dataset.affiliates.contains(&aff);
            if self.dataset.absorb(obs) {
                events.push(DetectorEvent::PsTransaction { tx: txid, contract });
                if new_op {
                    events.push(DetectorEvent::OperatorObserved(op));
                    new_members.push(op);
                }
                if new_aff {
                    events.push(DetectorEvent::AffiliateObserved(aff));
                    new_members.push(aff);
                }
            }
            if !known {
                // New contract: sweep its own confirmed history too.
                let more = self.backfill_account_collect(chain, contract, events);
                new_members.extend(more);
            }
        }
        new_members
    }

    fn backfill_account(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) {
        let mut queue: VecDeque<Address> = VecDeque::from([account]);
        let mut seen: HashSet<Address> = queue.iter().copied().collect();
        while let Some(acc) = queue.pop_front() {
            for member in self.scan_account(chain, acc, events) {
                if seen.insert(member) {
                    queue.push_back(member);
                }
            }
        }
    }

    fn backfill_account_collect(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) -> Vec<Address> {
        self.scan_account(chain, account, events)
    }
}

/// The temporal expansion guard, online flavour: identical logic to the
/// batch version (a dataset contact strictly before the surfacing
/// transaction), re-evaluated against the *current* dataset.
fn previously_interacted_online(
    chain: &Chain,
    dataset: &Dataset,
    contract: Address,
    surfacing_tx: TxId,
) -> bool {
    for &txid in chain.txs_of(contract) {
        if txid >= surfacing_tx {
            break;
        }
        let tx = chain.tx(txid);
        for address in tx.touched_addresses() {
            if address != contract && dataset.contains(address) {
                return true;
            }
        }
    }
    false
}
