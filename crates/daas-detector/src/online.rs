//! Online (streaming) dataset construction.
//!
//! The paper's collection ran continuously for 21 months; a deployed
//! pipeline does not re-run batch snowball sampling on every block.
//! [`OnlineDetector`] is the incremental equivalent: it keeps a cursor
//! into the chain, classifies new transactions as they confirm, admits
//! new profit-sharing contracts by the same seed-label and
//! guarded-expansion rules as [`crate::build_dataset`], and backfills a
//! newly admitted account's history so the maintained dataset converges
//! to exactly what the batch construction would produce.
//!
//! Membership and prior-contact state are keyed by interned
//! [`AddrId`]s, and each poll *batches* the member-contact probe: the
//! window's member-touching transactions are enumerated once from the
//! sharded history index (a `partition_point` per member), so the
//! per-transaction loop only pays the full admissibility check for
//! transactions that can actually change the dataset — everything else
//! takes a seed-label-only fast path with zero membership probes.
//!
//! The poll-based shape (caller drives, detector returns the events
//! since the last poll) follows the workspace's event-driven style.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use daas_chain::{Chain, LabelStore, TxId};
use eth_types::{AddrId, Address};
use serde::{Deserialize, Serialize};

use crate::cache::ClassificationCache;
use crate::classify::PsObservation;
use crate::dataset::Dataset;
use crate::snowball::SnowballConfig;

/// How a contract entered the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Publicly labeled as phishing (the step-1 seed rule).
    SeedLabel,
    /// Admitted by the guarded expansion rule (step 4).
    Expansion,
}

/// An event produced by [`OnlineDetector::poll`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorEvent {
    /// A new profit-sharing contract entered the dataset.
    ContractAdmitted {
        /// The contract.
        contract: Address,
        /// Which rule admitted it.
        via: Admission,
    },
    /// A new profit-sharing transaction was attributed (including
    /// backfilled history of a just-admitted contract).
    PsTransaction {
        /// The transaction.
        tx: TxId,
        /// Its contract.
        contract: Address,
    },
    /// A new operator account was observed.
    OperatorObserved(Address),
    /// A new affiliate account was observed.
    AffiliateObserved(Address),
}

/// The member-touching transactions of the current poll window, marked
/// once up front from the history index instead of probed per
/// transaction. Live only for the duration of one `poll_until` call.
#[derive(Debug, Clone)]
struct WindowMask {
    base: TxId,
    limit: TxId,
    mask: Vec<bool>,
}

impl WindowMask {
    /// Marks `member`'s window transactions at or after `from`.
    fn mark(&mut self, history: &[TxId], from: TxId) {
        let from = from.max(self.base);
        let lo = history.partition_point(|&t| t < from);
        for &t in &history[lo..] {
            if t >= self.limit {
                break;
            }
            self.mask[(t - self.base) as usize] = true;
        }
    }

    #[inline]
    fn marked(&self, txid: TxId) -> bool {
        self.mask[(txid - self.base) as usize]
    }
}

/// Serialized [`OnlineDetector`] state (DESIGN.md §13).
///
/// Every field is *address*-keyed: interned [`AddrId`]s are instance-
/// local to one chain arena and never appear in a checkpoint. On save,
/// ids are resolved to addresses; on restore, the (deterministically
/// rebuilt) chain re-interns them, so the restored detector is
/// byte-equivalent to the one that was checkpointed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorCheckpoint {
    /// Transactions processed so far (exclusive upper bound).
    pub cursor: TxId,
    /// The maintained dataset at the cursor.
    pub dataset: Dataset,
    /// The first-contact index, resolved to addresses and sorted by
    /// address (the in-memory map shards are unordered; sorting makes
    /// checkpoint bytes deterministic).
    pub touch_min: Vec<(Address, TxId)>,
}

/// Incremental detector state.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    cfg: SnowballConfig,
    dataset: Dataset,
    cursor: TxId,
    cache: Arc<ClassificationCache>,
    /// For each interned address: the earliest confirmed transaction
    /// that touches both it and a *current* dataset member other than
    /// the address itself. This is the expansion guard's "prior dataset
    /// contact", maintained incrementally (as the cursor passes each
    /// transaction, and by a one-time history walk when a member joins)
    /// so the guard is an O(1) lookup instead of an O(history) rescan
    /// per candidate.
    touch_min: txgraph::CowMap<AddrId, TxId>,
    /// Flat union of the dataset's contract/operator/affiliate sets as
    /// interned ids — the membership probe hashes 4 bytes. Maintained by
    /// [`Self::absorb_noting`], the only place the detector's dataset
    /// grows.
    members: txgraph::FxHashSet<AddrId>,
    /// Present only while a poll is in flight (see [`WindowMask`]).
    window: Option<WindowMask>,
    /// Scratch buffer for touched-id extraction, reused across
    /// transactions.
    touched_scratch: Vec<AddrId>,
}

impl OnlineDetector {
    /// Creates a detector starting at the chain's first transaction.
    pub fn new(cfg: SnowballConfig) -> Self {
        Self::with_cache(cfg, Arc::new(ClassificationCache::new()))
    }

    /// Creates a detector sharing a classification cache — typically
    /// one warmed by a batch [`crate::build_dataset_with_cache`] run
    /// over the same chain, so polling skips re-classification. The
    /// cache must match `cfg.classifier`.
    pub fn with_cache(cfg: SnowballConfig, cache: Arc<ClassificationCache>) -> Self {
        OnlineDetector {
            cfg,
            dataset: Dataset::default(),
            cursor: 0,
            cache,
            touch_min: txgraph::CowMap::new(),
            members: txgraph::FxHashSet::default(),
            window: None,
            touched_scratch: Vec::new(),
        }
    }

    /// The dataset maintained so far.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Exports the detector's full live state as an address-keyed
    /// checkpoint. Never call mid-poll (the window mask is transient
    /// poll state); between polls the mask is absent and the detector
    /// is exactly (cursor, dataset, touch_min) — the member set is the
    /// interned union of the dataset's role sets and is rebuilt on
    /// restore rather than serialized.
    pub fn checkpoint(&self, chain: &Chain) -> DetectorCheckpoint {
        debug_assert!(self.window.is_none(), "checkpoint taken mid-poll");
        let mut touch_min: Vec<(Address, TxId)> = self
            .touch_min
            .iter()
            .map(|(&id, &tx)| (chain.resolve_addr(id), tx))
            .collect();
        touch_min.sort_unstable();
        DetectorCheckpoint { cursor: self.cursor, dataset: self.dataset.clone(), touch_min }
    }

    /// Rebuilds a detector from a checkpoint against a chain that must
    /// be (a deterministic rebuild of) the chain the checkpoint was
    /// taken on — every address in the checkpoint re-interns to the id
    /// it had, so the restored state is byte-equivalent. `cfg` and
    /// `cache` follow the same contract as [`Self::with_cache`].
    pub fn restore(
        cfg: SnowballConfig,
        cache: Arc<ClassificationCache>,
        chain: &Chain,
        ckpt: &DetectorCheckpoint,
    ) -> Result<Self, String> {
        let mut detector = Self::with_cache(cfg, cache);
        detector.cursor = ckpt.cursor;
        detector.dataset = ckpt.dataset.clone();
        for (addr, tx) in &ckpt.touch_min {
            let id = chain
                .addr_id(*addr)
                .ok_or_else(|| format!("checkpoint address {addr} is not interned"))?;
            detector.touch_min.insert(id, *tx);
        }
        // Members are exactly the interned union of the role sets (the
        // only writer is `absorb_noting`, which inserts every role
        // address the chain has interned).
        let roles = ckpt
            .dataset
            .contracts
            .iter()
            .chain(&ckpt.dataset.operators)
            .chain(&ckpt.dataset.affiliates);
        for &addr in roles {
            if let Some(id) = chain.addr_id(addr) {
                detector.members.insert(id);
            }
        }
        Ok(detector)
    }

    /// Transactions processed so far.
    pub fn cursor(&self) -> TxId {
        self.cursor
    }

    /// Processes every transaction confirmed since the last poll.
    /// Returns the events, in admission order.
    pub fn poll(&mut self, chain: &Chain, labels: &LabelStore) -> Vec<DetectorEvent> {
        self.poll_until(chain, labels, chain.transactions().len() as TxId)
    }

    /// Processes transactions up to (exclusive) `limit` — lets callers
    /// simulate block-by-block delivery.
    pub fn poll_until(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        limit: TxId,
    ) -> Vec<DetectorEvent> {
        let limit = limit.min(chain.transactions().len() as TxId);
        let _poll_span =
            daas_obs::span!("detector.poll", from = self.cursor, to = limit);
        let mut events = Vec::new();
        if self.cursor < limit {
            let base = self.cursor;
            let window = (limit - base) as usize;
            // Batch the membership probe when the window is large enough
            // to amortise it: one history `partition_point` per member
            // marks every member-touching transaction up front. For tiny
            // windows over a big member set (block-by-block delivery
            // late in a run) the per-tx probe is cheaper — fall through
            // with no mask and probe inline.
            if self.members.len() <= window.saturating_mul(4) {
                let mut win = WindowMask { base, limit, mask: vec![false; window] };
                for &m in self.members.iter() {
                    win.mark(chain.txs_of_id(m), base);
                }
                self.window = Some(win);
            }
            let store = chain.transactions();
            let mut scratch = std::mem::take(&mut self.touched_scratch);
            while self.cursor < limit {
                let txid = self.cursor;
                self.cursor += 1;
                // With a mask: unmarked transactions touch no member, so
                // only the seed rule can apply — check the public flag
                // and skip all membership work otherwise.
                let marked = self.window.as_ref().is_none_or(|w| w.marked(txid));
                if !marked {
                    let Some(to_id) = store.view(txid).to_id().get() else { continue };
                    let to = store.resolve(to_id);
                    if !(labels.publicly_flagged(to) && chain.is_contract(to)) {
                        continue;
                    }
                }
                store.touched_ids_into(txid, &mut scratch);
                self.step_tx(chain, labels, txid, &scratch, &mut events);
                // Index this transaction's dataset contacts *after* its
                // own admission decision — the guard requires a contact
                // strictly before the surfacing transaction.
                self.note_tx(txid, &scratch);
            }
            self.touched_scratch = scratch;
            self.window = None;
        }
        daas_obs::add("detector.events", events.len() as u64);
        events
    }

    /// One transaction's classification + admission decision.
    fn step_tx(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        txid: TxId,
        touched: &[AddrId],
        events: &mut Vec<DetectorEvent>,
    ) {
        // Pre-filter before paying for classification: the classifier's
        // contract is always `tx.to`, so every admission path is
        // decidable up front — absorb needs a known contract, expansion
        // needs a touched member besides the contract plus the O(1)
        // prior-contact guard, seed needs a public flag. Anything else
        // cannot change the dataset regardless of the verdict.
        let Some(to_id) = chain.tx(txid).to_id().get() else { return };
        let to = chain.resolve_addr(to_id);
        let admissible = self.dataset.contracts.contains(&to)
            || (touched.iter().any(|&a| a != to_id && self.members.contains(&a))
                && (!self.cfg.expansion_guard || self.prior_contact_id(to_id, txid)))
            || (labels.publicly_flagged(to) && chain.is_contract(to));
        if !admissible {
            return;
        }
        let Some(obs) = self.cache.classify(chain, txid, &self.cfg.classifier) else {
            return;
        };
        let contract = obs.contract;

        if self.dataset.contracts.contains(&contract) {
            self.absorb_and_backfill(chain, &obs, events);
            return;
        }

        // Seed rule: the contract is publicly labeled as phishing.
        let seed = labels.publicly_flagged(contract) && chain.is_contract(contract);
        // Expansion rule: the transaction touches an account already
        // in the dataset, and the contract has a *prior* interaction
        // with the dataset (identical to the batch guard).
        let expansion = !seed && {
            let contract_id = chain.addr_id(contract);
            let touches_dataset = touched
                .iter()
                .any(|&a| Some(a) != contract_id && self.members.contains(&a));
            touches_dataset
                && (!self.cfg.expansion_guard || self.prior_contact(chain, contract, txid))
        };
        if !(seed || expansion) {
            return;
        }

        events.push(DetectorEvent::ContractAdmitted {
            contract,
            via: if seed { Admission::SeedLabel } else { Admission::Expansion },
        });
        self.absorb_and_backfill(chain, &obs, events);
        // Backfill the contract's own earlier history (step 2 on the
        // just-admitted contract), bounded by what has confirmed.
        self.backfill_account(chain, contract, &mut *events);
    }

    /// The expansion guard: has the interned contract a dataset contact
    /// strictly before `surfacing_tx`, against the *current* dataset?
    /// O(1) via the incrementally maintained first-contact index.
    fn prior_contact_id(&self, contract: AddrId, surfacing_tx: TxId) -> bool {
        self.touch_min.get(&contract).is_some_and(|&t| t < surfacing_tx)
    }

    /// [`Self::prior_contact_id`] from an address (an address the chain
    /// has never interned can have no contacts at all).
    fn prior_contact(&self, chain: &Chain, contract: Address, surfacing_tx: TxId) -> bool {
        chain.addr_id(contract).is_some_and(|id| self.prior_contact_id(id, surfacing_tx))
    }

    /// Records `txid` as a dataset contact for every address it touches
    /// alongside a current member (rule 1 of the index: transactions are
    /// indexed once, as the cursor passes them).
    fn note_tx(&mut self, txid: TxId, touched: &[AddrId]) {
        let members = touched.iter().filter(|a| self.members.contains(a)).count();
        if members == 0 {
            return;
        }
        for &a in touched {
            // `a` needs a member *other than itself* in the same tx.
            if members > 1 || !self.members.contains(&a) {
                self.note_touch(a, txid);
            }
        }
    }

    /// A new dataset member: every already-confirmed transaction in its
    /// history becomes a dataset contact for the other parties (rule 2
    /// of the index: one bounded walk per join covers the member's past;
    /// rule 1 covers its future). Mid-poll, the member's *upcoming*
    /// window transactions are marked too, so the batched mask stays an
    /// over-approximation of "touches a member".
    fn note_member(&mut self, chain: &Chain, member: AddrId) {
        let store = chain.transactions();
        let history = chain.txs_of_id(member);
        let confirmed = &history[..history.partition_point(|&id| id < self.cursor)];
        let mut scratch = Vec::new();
        for &txid in confirmed {
            store.touched_ids_into(txid, &mut scratch);
            for &a in &scratch {
                if a != member {
                    self.note_touch(a, txid);
                }
            }
        }
        if let Some(win) = self.window.as_mut() {
            win.mark(history, self.cursor);
        }
    }

    fn note_touch(&mut self, addr: AddrId, txid: TxId) {
        let slot = self.touch_min.get_or_insert_with(addr, || txid);
        if *slot > txid {
            *slot = txid;
        }
    }

    /// [`Dataset::absorb`] plus first-contact index maintenance for any
    /// member the observation introduced.
    fn absorb_noting(&mut self, chain: &Chain, obs: &PsObservation) -> bool {
        let (c, o, a) = (obs.contract, obs.operator, obs.affiliate);
        let new_c = !self.dataset.contracts.contains(&c);
        let new_o = !self.dataset.operators.contains(&o);
        let new_a = !self.dataset.affiliates.contains(&a);
        if !self.dataset.absorb_ref(obs) {
            return false;
        }
        for (is_new, addr) in [(new_c, c), (new_o, o), (new_a, a)] {
            if !is_new {
                continue;
            }
            // Members come from a classified transaction, so the chain
            // has interned them.
            if let Some(id) = chain.addr_id(addr) {
                self.members.insert(id);
                self.note_member(chain, id);
            }
        }
        true
    }

    /// Absorbs one observation, emitting role events, and backfills the
    /// histories of any newly seen operators/affiliates (the streaming
    /// equivalent of the batch fixpoint).
    fn absorb_and_backfill(
        &mut self,
        chain: &Chain,
        obs: &PsObservation,
        events: &mut Vec<DetectorEvent>,
    ) {
        let mut queue: VecDeque<Address> = VecDeque::new();
        let (tx, contract, op, aff) = (obs.tx, obs.contract, obs.operator, obs.affiliate);
        let new_op = !self.dataset.operators.contains(&op);
        let new_aff = !self.dataset.affiliates.contains(&aff);
        if !self.absorb_noting(chain, obs) {
            return;
        }
        events.push(DetectorEvent::PsTransaction { tx, contract });
        if new_op {
            events.push(DetectorEvent::OperatorObserved(op));
            queue.push_back(op);
        }
        if new_aff {
            events.push(DetectorEvent::AffiliateObserved(aff));
            queue.push_back(aff);
        }
        let mut seen: HashSet<Address> = queue.iter().copied().collect();
        while let Some(account) = queue.pop_front() {
            let new_members = self.scan_account(chain, account, events);
            for member in new_members {
                if seen.insert(member) {
                    queue.push_back(member);
                }
            }
        }
    }

    /// Scans an account's *confirmed* history (up to the cursor) for
    /// profit-sharing transactions, admitting new contracts by the
    /// expansion rule. Returns newly observed operator/affiliate
    /// accounts.
    fn scan_account(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) -> Vec<Address> {
        let mut new_members = Vec::new();
        let history: Vec<TxId> = chain
            .txs_of(account)
            .iter()
            .copied()
            .filter(|&id| id < self.cursor)
            .collect();
        for txid in history {
            let Some(obs) = self.cache.classify(chain, txid, &self.cfg.classifier) else {
                continue;
            };
            let contract = obs.contract;
            let known = self.dataset.contracts.contains(&contract);
            if !known {
                let guard_ok =
                    !self.cfg.expansion_guard || self.prior_contact(chain, contract, txid);
                if !guard_ok {
                    continue;
                }
                events.push(DetectorEvent::ContractAdmitted {
                    contract,
                    via: Admission::Expansion,
                });
            }
            let (op, aff) = (obs.operator, obs.affiliate);
            let new_op = !self.dataset.operators.contains(&op);
            let new_aff = !self.dataset.affiliates.contains(&aff);
            if self.absorb_noting(chain, &obs) {
                events.push(DetectorEvent::PsTransaction { tx: txid, contract });
                if new_op {
                    events.push(DetectorEvent::OperatorObserved(op));
                    new_members.push(op);
                }
                if new_aff {
                    events.push(DetectorEvent::AffiliateObserved(aff));
                    new_members.push(aff);
                }
            }
            if !known {
                // New contract: sweep its own confirmed history too.
                let more = self.backfill_account_collect(chain, contract, events);
                new_members.extend(more);
            }
        }
        new_members
    }

    fn backfill_account(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) {
        let mut queue: VecDeque<Address> = VecDeque::from([account]);
        let mut seen: HashSet<Address> = queue.iter().copied().collect();
        while let Some(acc) = queue.pop_front() {
            for member in self.scan_account(chain, acc, events) {
                if seen.insert(member) {
                    queue.push_back(member);
                }
            }
        }
    }

    fn backfill_account_collect(
        &mut self,
        chain: &Chain,
        account: Address,
        events: &mut Vec<DetectorEvent>,
    ) -> Vec<Address> {
        self.scan_account(chain, account, events)
    }
}
