//! Snowball-sampling dataset construction (§5.1, steps 1–4).

use std::collections::{HashSet, VecDeque};

use daas_chain::{Chain, LabelSource, LabelStore};
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::cache::ClassificationCache;
use crate::classify::{ClassifierConfig, PsObservation};
use crate::dataset::Dataset;

/// Snowball parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnowballConfig {
    /// Transaction-level classifier settings.
    pub classifier: ClassifierConfig,
    /// Minimum classified transactions for a contract to qualify as
    /// profit-sharing (the paper requires observed profit-sharing
    /// behaviour; one transaction suffices).
    pub min_ps_txs: usize,
    /// The §5.1 step-4 guard: only admit a new contract if it has
    /// previously interacted with *another* account already in the
    /// dataset. Disabling this is ablation A3.
    pub expansion_guard: bool,
    /// Safety bound on expansion rounds.
    pub max_rounds: usize,
    /// Worker threads for the per-round classification fan-out: `0`
    /// uses all available cores, `1` is the sequential oracle path.
    /// The discovered dataset is byte-identical at every setting
    /// (enforced by `tests/parallel_equivalence.rs`).
    pub threads: usize,
}

impl Default for SnowballConfig {
    fn default() -> Self {
        SnowballConfig {
            classifier: ClassifierConfig::default(),
            min_ps_txs: 1,
            expansion_guard: true,
            max_rounds: 64,
            threads: 0,
        }
    }
}

impl SnowballConfig {
    /// Resolves `threads`: `0` means all available cores.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

/// Builds the DaaS dataset from public labels and the chain, per §5.1:
///
/// 1. collect phishing *contracts* from the four public label sources;
/// 2. qualify each as profit-sharing by classifying its history;
/// 3. extract operator and affiliate accounts from the classified
///    transactions (seed dataset — counts snapshotted);
/// 4. iteratively scan the accounts' histories for new profit-sharing
///    contracts (guarded), until no new account emerges.
///
/// Expansion is round-synchronous: with `cfg.threads != 1` each round's
/// frontier histories are classified in parallel into a fresh
/// [`ClassificationCache`] before the coordinator absorbs them in batch
/// order, so the result is byte-identical at any thread count.
pub fn build_dataset(chain: &Chain, labels: &LabelStore, cfg: &SnowballConfig) -> Dataset {
    build_dataset_with_cache(chain, labels, cfg, &ClassificationCache::new())
}

/// [`build_dataset`] over a caller-supplied classification cache, so
/// repeated runs (benchmarks, the online detector hand-off) skip
/// re-classifying known transactions. The cache must have been warmed —
/// if at all — under the same `cfg.classifier`.
pub fn build_dataset_with_cache(
    chain: &Chain,
    labels: &LabelStore,
    cfg: &SnowballConfig,
    cache: &ClassificationCache,
) -> Dataset {
    let threads = cfg.effective_threads();
    let _build_span = daas_obs::span!("snowball.build", threads = threads);
    let stats_before = daas_obs::enabled().then(|| cache.stats());
    let mut dataset = Dataset::default();
    let mut rejected: HashSet<Address> = HashSet::new();

    // ---- Step 1: candidate contracts from public sources. ----
    let mut candidates: Vec<Address> = Vec::new();
    let mut seen = HashSet::new();
    for source in LabelSource::PUBLIC {
        for address in labels.phishing_addresses(source) {
            if chain.is_contract(address) && seen.insert(address) {
                candidates.push(address);
            }
        }
    }
    candidates.sort_unstable();

    // ---- Steps 2–3: qualify candidates, build the seed dataset. ----
    cache.prewarm(chain, &candidates, &cfg.classifier, threads);
    for contract in candidates {
        let observations = qualify_contract(chain, contract, cfg, cache);
        for obs in observations {
            dataset.absorb_ref(&obs);
        }
    }
    dataset.seed = dataset.counts();

    // ---- Step 4: expansion to fixpoint. ----
    let mut queue: VecDeque<Address> = dataset
        .operators
        .iter()
        .chain(dataset.affiliates.iter())
        .copied()
        .collect();
    let mut processed: HashSet<Address> = queue.iter().copied().collect();
    let mut rounds = 0;

    while !queue.is_empty() && rounds < cfg.max_rounds {
        rounds += 1;
        let batch: Vec<Address> = queue.drain(..).collect();
        let _round_span = daas_obs::span!("snowball.round", round = rounds, frontier = batch.len());
        // Parallel phase: warm the cache over the whole frontier, then
        // over the histories of every contract the frontier could
        // surface, so step-2 re-qualification also hits the cache. The
        // candidate set over-approximates what the replay will qualify
        // — warming a pure cache more than needed cannot change the
        // output.
        cache.prewarm(chain, &batch, &cfg.classifier, threads);
        if threads > 1 {
            let mut surfaced: Vec<Address> = batch
                .iter()
                .flat_map(|&a| chain.txs_of(a).iter().copied())
                .filter_map(|txid| cache.classify(chain, txid, &cfg.classifier))
                .map(|obs| obs.contract)
                .filter(|c| !dataset.contracts.contains(c) && !rejected.contains(c))
                .collect();
            surfaced.sort_unstable();
            surfaced.dedup();
            cache.prewarm(chain, &surfaced, &cfg.classifier, threads);
        }
        // Sequential phase: absorb in batch order, classifying through
        // the cache (a hit for every tx the prewarm covered).
        for account in batch {
            for &txid in chain.txs_of(account) {
                let Some(obs) = cache.classify(chain, txid, &cfg.classifier) else { continue };
                let contract = obs.contract;
                if dataset.contracts.contains(&contract) {
                    // Known contract: absorb the transaction anyway so
                    // the dataset's transaction set converges.
                    absorb_and_enqueue(&mut dataset, &obs, &mut queue, &mut processed);
                    continue;
                }
                if rejected.contains(&contract) {
                    continue;
                }
                if cfg.expansion_guard && !previously_interacted(chain, &dataset, contract, txid) {
                    continue;
                }
                // Re-apply step 2 on the new contract.
                let observations = qualify_contract(chain, contract, cfg, cache);
                if observations.is_empty() {
                    rejected.insert(contract);
                    continue;
                }
                for o in observations {
                    absorb_and_enqueue(&mut dataset, &o, &mut queue, &mut processed);
                }
            }
        }
    }

    dataset.rounds = rounds;
    if let Some(before) = stats_before {
        // Report the cache traffic this build generated (not the
        // cache's lifetime totals — a shared cache may predate us).
        let stats = cache.stats();
        daas_obs::add("cache.classify.hit", stats.hits.saturating_sub(before.hits));
        daas_obs::add("cache.classify.miss", stats.misses.saturating_sub(before.misses));
        daas_obs::gauge("cache.classify.entries", stats.entries as f64);
        daas_obs::add("snowball.rounds", rounds as u64);
    }
    dataset
}

fn absorb_and_enqueue(
    dataset: &mut Dataset,
    obs: &PsObservation,
    queue: &mut VecDeque<Address>,
    processed: &mut HashSet<Address>,
) {
    let (op, aff) = (obs.operator, obs.affiliate);
    if dataset.absorb_ref(obs) {
        for account in [op, aff] {
            if processed.insert(account) {
                queue.push_back(account);
            }
        }
    }
}

/// Step 2: a contract qualifies as profit-sharing if at least
/// `min_ps_txs` of its historical transactions classify, with the
/// contract as the invoked target. Returns the qualifying observations
/// (empty if it does not qualify).
fn qualify_contract(
    chain: &Chain,
    contract: Address,
    cfg: &SnowballConfig,
    cache: &ClassificationCache,
) -> Vec<std::sync::Arc<PsObservation>> {
    let mut observations = Vec::new();
    // The contract appears in its own history, so it is interned; the
    // invoked-target filter compares interned ids without resolving.
    let contract_id = chain.addr_id(contract);
    for &txid in chain.txs_of(contract) {
        if chain.tx(txid).to_id().get() != contract_id {
            continue;
        }
        if let Some(obs) = cache.classify(chain, txid, &cfg.classifier) {
            observations.push(obs);
        }
    }
    if observations.len() >= cfg.min_ps_txs.max(1) {
        observations
    } else {
        Vec::new()
    }
}

/// The step-4 guard: has `contract` *previously* — in a transaction
/// strictly before the one that surfaced it — interacted with a phishing
/// account already in the dataset? Transaction ids are chronological, so
/// "previously" is an id comparison. A contract deployment by a dataset
/// operator counts (that is exactly how rotated drainer contracts are
/// linked); a one-off ratio-shaped payment through a benign contract
/// does not.
fn previously_interacted(
    chain: &Chain,
    dataset: &Dataset,
    contract: Address,
    surfacing_tx: daas_chain::TxId,
) -> bool {
    let store = chain.transactions();
    let contract_id = chain.addr_id(contract);
    let mut touched: Vec<eth_types::AddrId> = Vec::new();
    for &txid in chain.txs_of(contract) {
        if txid >= surfacing_tx {
            break; // histories are in chain order
        }
        store.touched_ids_into(txid, &mut touched);
        for &id in &touched {
            if Some(id) != contract_id && dataset.contains(store.resolve(id)) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec};
    use eth_types::units::ether;
    use eth_types::U256;

    /// A hand-built two-family micro-world exercising seed + expansion.
    struct Micro {
        chain: Chain,
        labels: LabelStore,
        labeled_contract: Address,
        hidden_contract: Address,
        operator: Address,
        affiliates: [Address; 2],
    }

    fn micro() -> Micro {
        let mut chain = Chain::new();
        let mut labels = LabelStore::new();
        let operator = chain.create_eoa_funded(b"op", ether(10)).unwrap();
        let aff1 = chain.create_eoa(b"aff1").unwrap();
        let aff2 = chain.create_eoa(b"aff2").unwrap();
        let spec = |op| ProfitSharingSpec {
            operator: op,
            operator_bps: 2000,
            entry: EntryStyle::PayableFallback,
        };
        let labeled_contract =
            chain.deploy_contract(operator, ContractKind::ProfitSharing(spec(operator))).unwrap();
        let hidden_contract =
            chain.deploy_contract(operator, ContractKind::ProfitSharing(spec(operator))).unwrap();

        // Victims hit both contracts; the same operator links them.
        for (i, (contract, aff)) in
            [(labeled_contract, aff1), (hidden_contract, aff2)].iter().enumerate()
        {
            let victim = chain
                .create_eoa_funded(format!("victim{i}").as_bytes(), ether(100))
                .unwrap();
            chain.advance(12);
            chain.claim_eth(victim, *contract, ether(10), *aff).unwrap();
        }

        labels.add_phishing(labeled_contract, LabelSource::Chainabuse, "reported");
        Micro { chain, labels, labeled_contract, hidden_contract, operator, affiliates: [aff1, aff2] }
    }

    #[test]
    fn seed_contains_only_labeled_contract() {
        let m = micro();
        let ds = build_dataset(&m.chain, &m.labels, &SnowballConfig::default());
        assert_eq!(ds.seed.contracts, 1);
        assert!(ds.contracts.contains(&m.labeled_contract));
    }

    #[test]
    fn expansion_discovers_hidden_contract_via_operator() {
        let m = micro();
        let ds = build_dataset(&m.chain, &m.labels, &SnowballConfig::default());
        assert!(ds.contracts.contains(&m.hidden_contract), "expansion missed hidden contract");
        assert_eq!(ds.counts().contracts, 2);
        assert!(ds.operators.contains(&m.operator));
        for aff in m.affiliates {
            assert!(ds.affiliates.contains(&aff));
        }
        assert_eq!(ds.counts().ps_txs, 2);
        assert!(ds.rounds >= 1);
    }

    #[test]
    fn no_labels_no_dataset() {
        let m = micro();
        let empty = LabelStore::new();
        let ds = build_dataset(&m.chain, &empty, &SnowballConfig::default());
        assert_eq!(ds.counts().daas_accounts(), 0);
        assert_eq!(ds.seed.ps_txs, 0);
    }

    #[test]
    fn labeled_eoa_is_not_a_seed_contract() {
        // Step 1 collects phishing *contracts*; a labeled EOA seeds
        // nothing by itself.
        let m = micro();
        let mut labels = LabelStore::new();
        labels.add_phishing(m.operator, LabelSource::Etherscan, "Fake_Phishing1");
        let ds = build_dataset(&m.chain, &labels, &SnowballConfig::default());
        assert_eq!(ds.counts().daas_accounts(), 0);
    }

    #[test]
    fn benign_contract_with_label_does_not_qualify() {
        // A mislabeled benign splitter with a non-table ratio never
        // produces observations, so step 2 rejects it.
        let mut chain = Chain::new();
        let owner = chain.create_eoa_funded(b"owner", ether(10)).unwrap();
        let a = chain.create_eoa(b"a").unwrap();
        let b = chain.create_eoa(b"b").unwrap();
        let splitter = chain.deploy_contract(owner, ContractKind::Benign).unwrap();
        let payer = chain.create_eoa_funded(b"payer", ether(50)).unwrap();
        chain.split_payment(payer, splitter, ether(10), &[(a, 5_000), (b, 5_000)]).unwrap();
        let mut labels = LabelStore::new();
        labels.add_phishing(splitter, LabelSource::Chainabuse, "false report");
        let ds = build_dataset(&chain, &labels, &SnowballConfig::default());
        assert_eq!(ds.counts().contracts, 0, "false report must not qualify");
    }

    #[test]
    fn guard_blocks_unconnected_ratio_contract() {
        // A 70/30 benign splitter used once by the operator: ratio
        // matches, but with the guard on it has no *other* dataset
        // contact, so it is rejected; with the guard off it leaks in.
        let mut m = micro();
        let sink1 = m.chain.create_eoa(b"sink1").unwrap();
        let sink2 = m.chain.create_eoa(b"sink2").unwrap();
        let owner = m.chain.create_eoa_funded(b"sowner", ether(1)).unwrap();
        let splitter = m.chain.deploy_contract(owner, ContractKind::Benign).unwrap();
        m.chain.advance(12);
        m.chain
            .split_payment(m.operator, splitter, ether(5), &[(sink1, 3_000), (sink2, 7_000)])
            .unwrap();

        let guarded = build_dataset(&m.chain, &m.labels, &SnowballConfig::default());
        assert!(!guarded.contracts.contains(&splitter), "guard failed");

        let unguarded = build_dataset(
            &m.chain,
            &m.labels,
            &SnowballConfig { expansion_guard: false, ..Default::default() },
        );
        assert!(
            unguarded.contracts.contains(&splitter),
            "without the guard the ratio-shaped benign contract is a false positive"
        );
    }

    #[test]
    fn guard_admits_contract_with_second_dataset_contact() {
        // Two dataset accounts touching the same new contract satisfies
        // the "previously interacted with another phishing account" rule.
        let mut m = micro();
        let sink1 = m.chain.create_eoa(b"sink1").unwrap();
        let sink2 = m.chain.create_eoa(b"sink2").unwrap();
        let owner = m.chain.create_eoa_funded(b"sowner", ether(1)).unwrap();
        let splitter = m.chain.deploy_contract(owner, ContractKind::Benign).unwrap();
        // Both the operator and an affiliate (fund it first) use it.
        m.chain.advance(12);
        m.chain
            .split_payment(m.operator, splitter, ether(2), &[(sink1, 3_000), (sink2, 7_000)])
            .unwrap();
        m.chain.advance(12);
        m.chain
            .split_payment(m.affiliates[0], splitter, ether(2), &[(sink1, 3_000), (sink2, 7_000)])
            .unwrap();
        let ds = build_dataset(&m.chain, &m.labels, &SnowballConfig::default());
        assert!(
            ds.contracts.contains(&splitter),
            "the guard admits doubly-connected contracts (the paper's FP exposure)"
        );
    }

    #[test]
    fn min_ps_txs_threshold() {
        let m = micro();
        // Each contract has exactly one PS tx; requiring two rejects all.
        let strict = SnowballConfig { min_ps_txs: 2, ..Default::default() };
        let ds = build_dataset(&m.chain, &m.labels, &strict);
        assert_eq!(ds.counts().contracts, 0);
    }

    #[test]
    fn dataset_absorbs_known_contract_txs_found_late() {
        // A second tx on the labeled contract arriving via expansion is
        // still absorbed exactly once.
        let mut m = micro();
        let victim = m.chain.create_eoa_funded(b"victim-extra", ether(20)).unwrap();
        m.chain.advance(12);
        m.chain.claim_eth(victim, m.labeled_contract, ether(5), m.affiliates[0]).unwrap();
        let ds = build_dataset(&m.chain, &m.labels, &SnowballConfig::default());
        assert_eq!(ds.counts().ps_txs, 3);
        let distinct: std::collections::HashSet<_> =
            ds.observations.iter().map(|o| o.tx).collect();
        assert_eq!(distinct.len(), ds.observations.len());
        let _ = U256::ZERO;
    }
}
