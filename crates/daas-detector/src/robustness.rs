//! Scenario-robustness scoring: family-assignment and loss-attribution
//! metrics for the adversarial scenario pack (`exp_robustness`).
//!
//! Dataset membership is already covered by [`crate::evaluate`]; this
//! module adds the two pipeline stages downstream of it:
//!
//! * **Family assignment** ([`pairwise_family_scores`]): compares a
//!   predicted partition of accounts into families against the
//!   ground-truth partition with the standard pairwise clustering
//!   metric. Every unordered account pair placed in one predicted
//!   family is a predicted-positive; every pair sharing a truth family
//!   is a truth-positive. The counts fold into the same
//!   [`ClassScores`] shape the membership scores use, so
//!   precision/recall/F1 read identically.
//! * **Loss attribution** ([`LossAttribution`]): measured total USD
//!   losses against the ground-truth incident sum, as a relative
//!   error (§6's headline number is a dollar total, not a set).
//!
//! Both take plain slices/floats so this crate stays decoupled from
//! the world generator and the clustering crate — the bench harness
//! bridges them.

use std::collections::{BTreeMap, BTreeSet};

use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::evaluate::ClassScores;

/// Unordered pairs among `n` items.
fn pairs(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Resolves possibly-overlapping member lists into disjoint sets by
/// first-assignment-wins (ground truth can share an affiliate across
/// families; the pairwise metric needs a partition).
fn disjoint(sets: &[Vec<Address>]) -> Vec<BTreeSet<Address>> {
    let mut seen: BTreeSet<Address> = BTreeSet::new();
    sets.iter()
        .map(|s| s.iter().copied().filter(|&a| seen.insert(a)).collect())
        .collect()
}

/// Pairwise family-assignment scores: `predicted` and `truth` are
/// per-family member-account lists (any role). Returns pair-level
/// true/false positives and false negatives; a predicted family that
/// lumps two truth families together shows up as pair false positives,
/// a truth family split across predicted families as false negatives.
/// Accounts appearing on only one side contribute only that side's
/// pairs — extra predicted members (e.g. payout hop wallets admitted as
/// operators) therefore depress pair precision.
pub fn pairwise_family_scores(predicted: &[Vec<Address>], truth: &[Vec<Address>]) -> ClassScores {
    let predicted = disjoint(predicted);
    let truth = disjoint(truth);

    let mut truth_of: BTreeMap<Address, usize> = BTreeMap::new();
    for (j, fam) in truth.iter().enumerate() {
        for &a in fam {
            truth_of.insert(a, j);
        }
    }

    let predicted_pairs: usize = predicted.iter().map(|f| pairs(f.len())).sum();
    let truth_pairs: usize = truth.iter().map(|f| pairs(f.len())).sum();

    // tp = Σ_ij C(|P_i ∩ T_j|, 2): pairs that share both a predicted
    // and a truth family.
    let mut tp = 0usize;
    for fam in &predicted {
        let mut overlap: BTreeMap<usize, usize> = BTreeMap::new();
        for a in fam {
            if let Some(&j) = truth_of.get(a) {
                *overlap.entry(j).or_default() += 1;
            }
        }
        tp += overlap.values().map(|&n| pairs(n)).sum::<usize>();
    }

    ClassScores {
        true_positives: tp,
        false_positives: predicted_pairs - tp,
        false_negatives: truth_pairs - tp,
    }
}

/// §6 loss attribution: the measured USD loss total against the
/// ground-truth incident sum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossAttribution {
    /// Total USD losses the measurement pipeline reports.
    pub measured_usd: f64,
    /// Ground-truth sum of incident losses.
    pub truth_usd: f64,
}

impl LossAttribution {
    /// Relative error `|measured - truth| / truth` (0.0 when both are
    /// zero, infinite when only the truth side is zero).
    pub fn relative_error(&self) -> f64 {
        if self.truth_usd == 0.0 {
            if self.measured_usd == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured_usd - self.truth_usd).abs() / self.truth_usd
        }
    }

    /// Attributed fraction `measured / truth` (1.0 when both are zero) —
    /// the "how much of the shadow economy did we see" number.
    pub fn attributed_fraction(&self) -> f64 {
        if self.truth_usd == 0.0 {
            if self.measured_usd == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured_usd / self.truth_usd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    #[test]
    fn identical_partitions_score_perfect() {
        let part = vec![vec![addr(1), addr(2), addr(3)], vec![addr(4), addr(5)]];
        let s = pairwise_family_scores(&part, &part);
        assert_eq!(s.true_positives, 3 + 1);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn merged_families_cost_precision_split_costs_recall() {
        let truth = vec![vec![addr(1), addr(2)], vec![addr(3), addr(4)]];
        // Everything lumped into one predicted family: all truth pairs
        // found (recall 1) but 4 cross-family false-positive pairs.
        let merged = vec![vec![addr(1), addr(2), addr(3), addr(4)]];
        let s = pairwise_family_scores(&merged, &truth);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 4);
        assert_eq!(s.false_negatives, 0);
        assert!(s.precision() < 1.0 && s.recall() == 1.0);

        // One truth family split into singletons: its pair is missed.
        let split = vec![vec![addr(1), addr(2)], vec![addr(3)], vec![addr(4)]];
        let s = pairwise_family_scores(&split, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 1);
        assert!(s.precision() == 1.0 && s.recall() < 1.0);
    }

    #[test]
    fn extra_predicted_members_depress_precision() {
        let truth = vec![vec![addr(1), addr(2)]];
        // A hop wallet (addr 9) admitted into the family: 2 extra pairs.
        let pred = vec![vec![addr(1), addr(2), addr(9)]];
        let s = pairwise_family_scores(&pred, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 2);
        assert_eq!(s.false_negatives, 0);
    }

    #[test]
    fn overlapping_truth_members_resolve_first_wins() {
        // addr(3) affiliates for both truth families; the metric must
        // not double-count its pairs.
        let truth = vec![vec![addr(1), addr(3)], vec![addr(2), addr(3)]];
        let pred = vec![vec![addr(1), addr(3)], vec![addr(2)]];
        let s = pairwise_family_scores(&pred, &truth);
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
    }

    #[test]
    fn empty_partitions_score_perfect() {
        let s = pairwise_family_scores(&[], &[]);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn loss_attribution_relative_error() {
        let l = LossAttribution { measured_usd: 90.0, truth_usd: 100.0 };
        assert!((l.relative_error() - 0.1).abs() < 1e-12);
        assert!((l.attributed_fraction() - 0.9).abs() < 1e-12);
        let zero = LossAttribution { measured_usd: 0.0, truth_usd: 0.0 };
        assert_eq!(zero.relative_error(), 0.0);
        assert_eq!(zero.attributed_fraction(), 1.0);
        let phantom = LossAttribution { measured_usd: 5.0, truth_usd: 0.0 };
        assert!(phantom.relative_error().is_infinite());
    }

    #[test]
    fn f1_is_zero_when_nothing_matches() {
        let s = ClassScores { true_positives: 0, false_positives: 3, false_negatives: 2 };
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }
}
