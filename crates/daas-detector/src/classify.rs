//! The profit-sharing transaction classifier (§4.3 / §5.1 step 2).

use daas_chain::{Asset, AssetRef, Timestamp, TxId, TxView};
use eth_types::{AddrId, Address, U256};
use serde::{Deserialize, Serialize};

/// The nine operator ratios observed in the wild (§4.3), in basis points.
pub const DEFAULT_RATIOS_BPS: [u32; 9] = [1000, 1250, 1500, 1750, 2000, 2500, 3000, 3300, 4000];

/// Classifier parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Accepted operator ratios in basis points.
    pub ratios_bps: Vec<u32>,
    /// Relative tolerance when matching the observed split against a
    /// ratio (absorbs integer-division dust; ablation A1).
    pub tolerance: f64,
    /// Require the source account to have *exactly* two outgoing
    /// transfers in the transaction (ablation A5). When false, a
    /// two-transfer subset that fits a ratio among extra dust transfers
    /// is accepted.
    pub strict_two_transfers: bool,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            ratios_bps: DEFAULT_RATIOS_BPS.to_vec(),
            tolerance: 0.005,
            strict_two_transfers: true,
        }
    }
}

/// A positive classification: one profit-sharing transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PsObservation {
    /// The classified transaction.
    pub tx: TxId,
    /// When it happened.
    pub timestamp: Timestamp,
    /// The account both transfers originate from (the contract for ETH
    /// payouts, the victim for `transferFrom` sweeps).
    pub source: Address,
    /// The invoked contract (`tx.to`) — the profit-sharing contract
    /// candidate.
    pub contract: Address,
    /// Smaller-share recipient.
    pub operator: Address,
    /// Larger-share recipient.
    pub affiliate: Address,
    /// Amount received by the operator.
    pub operator_amount: U256,
    /// Amount received by the affiliate.
    pub affiliate_amount: U256,
    /// The matched operator ratio, basis points.
    pub ratio_bps: u32,
    /// Asset class of the split (ETH or a token contract).
    pub asset: Asset,
}

/// Classifies one transaction. Returns the observation if the fund flow
/// has the profit-sharing shape, `None` otherwise.
///
/// The rule, per the paper:
/// * the fund flow consists of two transfers,
/// * both transfers originate from the same account,
/// * the amounts adhere to one of the known proportions, operator share
///   strictly the smaller one.
pub fn classify_tx(tx: TxView<'_>, cfg: &ClassifierConfig) -> Option<PsObservation> {
    let contract = tx.to_id().get()?;
    let cols = tx.transfer_columns();

    // Zero-allocation fast path: a split needs at least two fungible,
    // non-zero transfers; most transactions carry fewer. This is a
    // linear scan over the dense transfer columns — no pointer chasing,
    // no address materialization.
    let mut eligible = 0usize;
    for i in 0..cols.asset.len() {
        if cols.asset[i].is_fungible() && !cols.amount[i].is_zero() {
            eligible += 1;
        }
    }
    if eligible < 2 {
        return None;
    }

    // Group outgoing transfers by (source, fungible asset), in
    // first-appearance order. Transfer lists are short, so a linear
    // scan beats hashing — and the order is deterministic, which the
    // "first qualifying group wins" rule below relies on. Keys are
    // interned (4-byte ids), so each probe is an integer compare.
    let mut groups: Vec<((AddrId, AssetRef), Vec<usize>)> = Vec::new();
    for i in 0..cols.asset.len() {
        if !cols.asset[i].is_fungible() || cols.amount[i].is_zero() {
            continue;
        }
        let key = (cols.from[i], cols.asset[i]);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((key, vec![i])),
        }
    }

    let mut best: Option<PsObservation> = None;
    let mut best_from_contract = false;
    for ((source, asset), idxs) in groups {
        // The outer victim→contract deposit is part of the trace but not
        // of the *outgoing* split; a source with one transfer can never
        // qualify. In strict mode the source must have exactly two.
        let (a, b): (usize, usize) = match idxs.len() {
            2 => (idxs[0], idxs[1]),
            n if n > 2 && !cfg.strict_two_transfers => {
                // Relaxed: take the two largest transfers.
                let mut sorted = idxs.clone();
                sorted.sort_by(|&a, &b| cols.amount[b].cmp(&cols.amount[a]));
                (sorted[0], sorted[1])
            }
            _ => continue,
        };
        // Self-payments are not profit shares.
        if cols.to[a] == cols.to[b] || cols.to[a] == source || cols.to[b] == source {
            continue;
        }
        let (small, large) =
            if cols.amount[a] <= cols.amount[b] { (a, b) } else { (b, a) };
        let total = cols.amount[small].checked_add(cols.amount[large])?;
        let Some(ratio) = match_ratio(cols.amount[small], total, &cfg.ratios_bps, cfg.tolerance)
        else {
            continue;
        };
        // Prefer the group whose source is the invoked contract (the
        // canonical ETH-payout shape) if several qualify.
        let is_contract_source = source == contract;
        if best.is_none() || (is_contract_source && !best_from_contract) {
            // Addresses materialize only here, on the rare positive.
            let store = tx.store();
            best = Some(PsObservation {
                tx: tx.id(),
                timestamp: tx.timestamp(),
                source: store.resolve(source),
                contract: store.resolve(contract),
                operator: store.resolve(cols.to[small]),
                affiliate: store.resolve(cols.to[large]),
                operator_amount: cols.amount[small],
                affiliate_amount: cols.amount[large],
                ratio_bps: ratio,
                asset: store.resolve_asset(asset),
            });
            best_from_contract = is_contract_source;
        }
    }
    best
}

/// Matches `small / total` against the ratio list within relative
/// tolerance; returns the matched basis points.
fn match_ratio(small: U256, total: U256, ratios_bps: &[u32], tolerance: f64) -> Option<u32> {
    if total.is_zero() {
        return None;
    }
    let observed = small.to_f64_lossy() / total.to_f64_lossy();
    let mut best: Option<(f64, u32)> = None;
    for &bps in ratios_bps {
        let target = bps as f64 / 10_000.0;
        let err = (observed - target).abs() / target;
        if err <= tolerance {
            match best {
                Some((prev, _)) if prev <= err => {}
                _ => best = Some((err, bps)),
            }
        }
    }
    best.map(|(_, bps)| bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{Approval, CallInfo, Transaction, Transfer, TxStore};
    use eth_types::H256;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    fn eth(n: u64) -> U256 {
        U256::from_u128(n as u128 * 1_000_000_000_000_000_000)
    }

    fn tx_with(transfers: Vec<Transfer>, to: Address) -> Transaction {
        Transaction {
            id: 0,
            hash: H256::ZERO,
            block: 0,
            timestamp: 100,
            from: addr(9),
            to: Some(to),
            value: U256::ZERO,
            call: CallInfo::plain(),
            transfers,
            approvals: Vec::<Approval>::new(),
            created: None,
        }
    }

    /// Loads one materialized transaction into an arena and classifies
    /// its columnar view.
    fn classify(tx: Transaction, cfg: &ClassifierConfig) -> Option<PsObservation> {
        let store = TxStore::from_transactions(vec![tx]);
        classify_tx(store.view(0), cfg)
    }

    fn t(from: Address, to: Address, amount: U256) -> Transfer {
        Transfer { asset: Asset::Eth, from, to, amount }
    }

    #[test]
    fn canonical_eth_payout_classifies() {
        // Figure 4: 27.1 ETH in, 5.418… to operator, 21.67… to affiliate.
        let contract = addr(1);
        let (victim, op, aff) = (addr(2), addr(3), addr(4));
        let value = U256::from_u128(27_100_000_000_000_000_000);
        let op_cut = value.mul_div(U256::from_u64(2000), U256::from_u64(10_000));
        let aff_cut = value.mul_div(U256::from_u64(8000), U256::from_u64(10_000));
        let tx = tx_with(
            vec![t(victim, contract, value), t(contract, op, op_cut), t(contract, aff, aff_cut)],
            contract,
        );
        let obs = classify(tx, &ClassifierConfig::default()).expect("classified");
        assert_eq!(obs.source, contract);
        assert_eq!(obs.contract, contract);
        assert_eq!(obs.operator, op);
        assert_eq!(obs.affiliate, aff);
        assert_eq!(obs.ratio_bps, 2000);
        assert_eq!(obs.asset, Asset::Eth);
    }

    #[test]
    fn erc20_sweep_classifies_with_victim_source() {
        let contract = addr(1);
        let (victim, op, aff) = (addr(2), addr(3), addr(4));
        let token = Asset::Erc20(addr(8));
        let mk = |to: Address, amount: u64| Transfer {
            asset: token,
            from: victim,
            to,
            amount: U256::from_u64(amount),
        };
        let tx = tx_with(vec![mk(op, 150_000), mk(aff, 850_000)], contract);
        let obs = classify(tx, &ClassifierConfig::default()).expect("classified");
        assert_eq!(obs.source, victim);
        assert_eq!(obs.ratio_bps, 1500);
        assert_eq!(obs.operator, op);
        assert_eq!(obs.asset, token);
    }

    #[test]
    fn all_nine_ratios_match() {
        let contract = addr(1);
        for bps in DEFAULT_RATIOS_BPS {
            let total = U256::from_u64(10_000_000);
            let small = total.mul_div(U256::from_u64(bps as u64), U256::from_u64(10_000));
            let large = total - small;
            let tx = tx_with(
                vec![t(contract, addr(3), small), t(contract, addr(4), large)],
                contract,
            );
            let obs = classify(tx, &ClassifierConfig::default())
                .unwrap_or_else(|| panic!("ratio {bps} unclassified"));
            assert_eq!(obs.ratio_bps, bps);
        }
    }

    #[test]
    fn fifty_fifty_split_rejected() {
        let contract = addr(1);
        let tx = tx_with(
            vec![t(contract, addr(3), eth(5)), t(contract, addr(4), eth(5))],
            contract,
        );
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn off_ratio_rejected_and_tolerance_configurable() {
        let contract = addr(1);
        // 22/78 split: not within 0.5% of 20/80, but within 15%.
        let tx = tx_with(
            vec![t(contract, addr(3), eth(22)), t(contract, addr(4), eth(78))],
            contract,
        );
        assert_eq!(classify(tx.clone(), &ClassifierConfig::default()), None);
        let loose = ClassifierConfig { tolerance: 0.15, ..Default::default() };
        assert!(classify(tx, &loose).is_some());
    }

    #[test]
    fn dust_within_tolerance_still_matches() {
        // Integer division dust: operator gets value*33/100 truncated.
        let contract = addr(1);
        let value = U256::from_u64(1_000_003);
        let op_cut = value.mul_div(U256::from_u64(3300), U256::from_u64(10_000));
        let aff_cut = value.mul_div(U256::from_u64(6700), U256::from_u64(10_000));
        let tx = tx_with(
            vec![t(contract, addr(3), op_cut), t(contract, addr(4), aff_cut)],
            contract,
        );
        let obs = classify(tx, &ClassifierConfig::default()).expect("classified");
        assert_eq!(obs.ratio_bps, 3300);
    }

    #[test]
    fn single_transfer_rejected() {
        let contract = addr(1);
        let tx = tx_with(vec![t(contract, addr(3), eth(1))], contract);
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn three_transfers_rejected_in_strict_mode() {
        let contract = addr(1);
        let transfers = vec![
            t(contract, addr(3), eth(20)),
            t(contract, addr(4), eth(80)),
            t(contract, addr(5), U256::from_u64(1)), // dust
        ];
        let tx = tx_with(transfers.clone(), contract);
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
        // Relaxed mode (A5) accepts the two largest.
        let relaxed = ClassifierConfig { strict_two_transfers: false, ..Default::default() };
        let obs = classify(tx_with(transfers, contract), &relaxed).expect("classified");
        assert_eq!(obs.ratio_bps, 2000);
    }

    #[test]
    fn different_sources_rejected() {
        // DEX-like: two transfers, different sources.
        let dex = addr(1);
        let tx = tx_with(vec![t(addr(2), dex, eth(20)), t(dex, addr(2), eth(80))], dex);
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn same_recipient_twice_rejected() {
        let contract = addr(1);
        let tx = tx_with(
            vec![t(contract, addr(3), eth(20)), t(contract, addr(3), eth(80))],
            contract,
        );
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn nft_transfers_ignored() {
        let contract = addr(1);
        let nft = |to: Address| Transfer {
            asset: Asset::Erc721 { token: addr(8), id: 1 },
            from: contract,
            to,
            amount: U256::ONE,
        };
        let tx = tx_with(vec![nft(addr(3)), nft(addr(4))], contract);
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn contract_creation_rejected() {
        let mut tx = tx_with(vec![], addr(1));
        tx.to = None;
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn mixed_assets_grouped_separately() {
        // One ETH + one token transfer from the same source: neither
        // group has two transfers.
        let contract = addr(1);
        let token_t = Transfer {
            asset: Asset::Erc20(addr(8)),
            from: contract,
            to: addr(4),
            amount: eth(8),
        };
        let tx = tx_with(vec![t(contract, addr(3), eth(2)), token_t], contract);
        assert_eq!(classify(tx, &ClassifierConfig::default()), None);
    }

    #[test]
    fn prefers_contract_source_group() {
        // Both the invoked contract and an unrelated account have
        // qualifying splits; the contract-sourced one wins.
        let contract = addr(1);
        let other = addr(7);
        let tx = tx_with(
            vec![
                t(other, addr(5), eth(20)),
                t(other, addr(6), eth(80)),
                t(contract, addr(3), eth(15)),
                t(contract, addr(4), eth(85)),
            ],
            contract,
        );
        let obs = classify(tx, &ClassifierConfig::default()).expect("classified");
        assert_eq!(obs.source, contract);
        assert_eq!(obs.ratio_bps, 1500);
    }

    #[test]
    fn zero_amount_transfers_ignored() {
        let contract = addr(1);
        let tx = tx_with(
            vec![
                t(contract, addr(3), U256::ZERO),
                t(contract, addr(4), eth(20)),
                t(contract, addr(5), eth(80)),
            ],
            contract,
        );
        // Zero transfer excluded → exactly two remain → classifies.
        let obs = classify(tx, &ClassifierConfig::default()).expect("classified");
        assert_eq!(obs.ratio_bps, 2000);
    }
}
