//! Scoring a discovered dataset against ground truth, and the §5.2
//! manual-validation sampling exercise.

use std::collections::{BTreeSet, HashSet};

use daas_chain::{Chain, TxId};
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Precision/recall for one account class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassScores {
    /// Correctly discovered members.
    pub true_positives: usize,
    /// Discovered members not in the ground truth.
    pub false_positives: usize,
    /// Ground-truth members the pipeline missed.
    pub false_negatives: usize,
}

impl ClassScores {
    fn score<T: Ord + Copy>(found: &BTreeSet<T>, truth: &BTreeSet<T>) -> Self {
        let tp = found.intersection(truth).count();
        ClassScores {
            true_positives: tp,
            false_positives: found.len() - tp,
            false_negatives: truth.len() - tp,
        }
    }

    /// Precision (1.0 when nothing was found).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall (1.0 when the truth set is empty).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1, the harmonic mean of precision and recall (0.0 when both
    /// vanish).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Full evaluation against ground truth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Evaluation {
    /// Profit-sharing contracts.
    pub contracts: ClassScores,
    /// Operator accounts.
    pub operators: ClassScores,
    /// Affiliate accounts.
    pub affiliates: ClassScores,
    /// Profit-sharing transactions.
    pub transactions: ClassScores,
}

/// Scores `dataset` against ground-truth account and transaction sets.
/// The caller supplies plain slices so this crate stays decoupled from
/// the world generator.
pub fn evaluate(
    dataset: &Dataset,
    true_contracts: &[Address],
    true_operators: &[Address],
    true_affiliates: &[Address],
    true_ps_txs: &[TxId],
) -> Evaluation {
    let tc: BTreeSet<_> = true_contracts.iter().copied().collect();
    let to: BTreeSet<_> = true_operators.iter().copied().collect();
    let ta: BTreeSet<_> = true_affiliates.iter().copied().collect();
    let tt: BTreeSet<_> = true_ps_txs.iter().copied().collect();
    Evaluation {
        contracts: ClassScores::score(&dataset.contracts, &tc),
        operators: ClassScores::score(&dataset.operators, &to),
        affiliates: ClassScores::score(&dataset.affiliates, &ta),
        transactions: ClassScores::score(&dataset.ps_txs, &tt),
    }
}

/// The §5.2 manual-validation sampling plan: for every DaaS account,
/// review its ten most recent profit-sharing transactions, skipping
/// transactions already reviewed. The paper reports 8,974 + 538 +
/// 29,525 = 39,037 reviewed transactions (44.8% of all).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationSample {
    /// Transactions first reviewed via a contract.
    pub contract_txs: usize,
    /// Transactions first reviewed via an operator account.
    pub operator_txs: usize,
    /// Transactions first reviewed via an affiliate account.
    pub affiliate_txs: usize,
    /// Distinct transactions reviewed.
    pub total: usize,
    /// Reviewed share of all profit-sharing transactions, percent.
    pub coverage_pct: f64,
}

/// Reproduces the validation sampling: accounts are visited in the
/// paper's order (contracts, then operators, then affiliates); each
/// contributes its ten most recent profit-sharing transactions that are
/// not yet reviewed.
pub fn validation_sample(chain: &Chain, dataset: &Dataset, per_account: usize) -> ValidationSample {
    let ps: HashSet<TxId> = dataset.ps_txs.iter().copied().collect();
    let mut reviewed: HashSet<TxId> = HashSet::new();
    let mut counts = [0usize; 3];

    let classes: [(&BTreeSet<Address>, usize); 3] = [
        (&dataset.contracts, 0),
        (&dataset.operators, 1),
        (&dataset.affiliates, 2),
    ];
    for (accounts, class) in classes {
        for &account in accounts.iter() {
            let mut taken = 0;
            // Most recent first.
            for &txid in chain.txs_of(account).iter().rev() {
                if taken == per_account {
                    break;
                }
                if !ps.contains(&txid) {
                    continue;
                }
                if reviewed.insert(txid) {
                    counts[class] += 1;
                    taken += 1;
                }
                // Already-reviewed transactions are skipped and a new one
                // selected — i.e. they do not count against the quota.
            }
        }
    }

    let total = reviewed.len();
    ValidationSample {
        contract_txs: counts[0],
        operator_txs: counts[1],
        affiliate_txs: counts[2],
        total,
        coverage_pct: 100.0 * total as f64 / dataset.ps_txs.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::PsObservation;
    use daas_chain::{Asset, Chain, ContractKind, EntryStyle, ProfitSharingSpec};
    use eth_types::units::ether;
    use eth_types::U256;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    #[test]
    fn precision_recall_math() {
        let mut ds = Dataset::default();
        ds.contracts.extend([addr(1), addr(2), addr(9)]); // 9 is an FP
        let eval = evaluate(&ds, &[addr(1), addr(2), addr(3)], &[], &[], &[]);
        assert_eq!(eval.contracts.true_positives, 2);
        assert_eq!(eval.contracts.false_positives, 1);
        assert_eq!(eval.contracts.false_negatives, 1);
        assert!((eval.contracts.precision() - 2.0 / 3.0).abs() < 1e-9);
        assert!((eval.contracts.recall() - 2.0 / 3.0).abs() < 1e-9);
        // Empty classes score perfect.
        assert_eq!(eval.operators.precision(), 1.0);
        assert_eq!(eval.operators.recall(), 1.0);
    }

    #[test]
    fn validation_sampling_dedupes_and_caps() {
        // Build a contract with 15 PS txs; the contract pass reviews 10,
        // the operator pass picks up the remaining 5 (its quota skips
        // already-reviewed ones).
        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"op", ether(1)).unwrap();
        let aff = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", ether(1_000)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut ds = Dataset::default();
        for i in 0..15 {
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, ether(1), aff).unwrap();
            ds.absorb(PsObservation {
                tx,
                timestamp: chain.now(),
                source: contract,
                contract,
                operator: op,
                affiliate: aff,
                operator_amount: U256::from_u64(2),
                affiliate_amount: U256::from_u64(8),
                ratio_bps: 2000,
                asset: Asset::Eth,
            });
            let _ = i;
        }
        let sample = validation_sample(&chain, &ds, 10);
        assert_eq!(sample.contract_txs, 10);
        assert_eq!(sample.operator_txs, 5);
        assert_eq!(sample.affiliate_txs, 0); // all 15 already reviewed
        assert_eq!(sample.total, 15);
        assert!((sample.coverage_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn validation_ignores_non_ps_txs() {
        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"op", ether(10)).unwrap();
        let other = chain.create_eoa(b"other").unwrap();
        chain.transfer_eth(op, other, ether(1)).unwrap();
        let mut ds = Dataset::default();
        ds.operators.insert(op);
        let sample = validation_sample(&chain, &ds, 10);
        assert_eq!(sample.total, 0);
    }
}
