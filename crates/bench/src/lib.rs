//! Shared scaffolding for benches and experiment harnesses: seed/scale
//! parsing from the environment so every `exp_*` binary behaves the
//! same.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads `DAAS_SEED` (default 42) and `DAAS_SCALE` (default 1.0 — the
/// paper's scale) from the environment.
pub fn env_config() -> (u64, f64) {
    let seed = std::env::var("DAAS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale = std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    (seed, scale)
}

/// The standard snowball configuration, honouring `DAAS_THREADS`
/// (default 0 = all cores; 1 = the sequential oracle path). The
/// discovered dataset is byte-identical at every setting.
pub fn snowball_config() -> daas_detector::SnowballConfig {
    let threads = std::env::var("DAAS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    daas_detector::SnowballConfig { threads, ..Default::default() }
}

/// The standard clustering configuration, honouring `DAAS_THREADS`
/// like [`snowball_config`]. The clustering is byte-identical at every
/// setting.
pub fn cluster_config() -> daas_cluster::ClusterConfig {
    let threads = std::env::var("DAAS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    daas_cluster::ClusterConfig { threads }
}

/// The standard measurement configuration, honouring `DAAS_THREADS`
/// like [`snowball_config`]. The report bundle is byte-identical at
/// every setting.
pub fn measure_config() -> daas_measure::MeasureConfig {
    let threads = std::env::var("DAAS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    daas_measure::MeasureConfig { threads }
}

/// Reads `DAAS_SHARDS` (default 0 = the built-in default): the single
/// shard knob for the chain's history and asset-state maps and the
/// detector's classification memo. Panics on a non-power-of-two so a
/// typo fails loudly instead of silently misconfiguring the layout.
pub fn shard_count() -> usize {
    let shards: usize =
        std::env::var("DAAS_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    assert!(shards == 0 || shards.is_power_of_two(), "DAAS_SHARDS must be a power of two");
    shards
}

/// Builds the standard pipeline at the env-configured seed/scale,
/// honouring `DAAS_THREADS` and `DAAS_SHARDS`.
pub fn standard_pipeline() -> daas_cli::Pipeline {
    let (seed, scale) = env_config();
    let snowball = snowball_config();
    let shards = shard_count();
    let config = daas_world::WorldConfig { scale, ..daas_world::WorldConfig::paper_scale(seed) };
    eprintln!("[exp] seed {seed}, scale {scale}, threads {}", snowball.effective_threads());
    daas_cli::run_pipeline_sharded(&config, &snowball, shards).expect("pipeline builds")
}
