//! Shared scaffolding for benches and experiment harnesses: seed/scale
//! parsing from the environment so every `exp_*` binary behaves the
//! same.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Observability plumbing for the experiment harnesses, mirroring the
/// CLI's `--trace-out` / `--metrics-out` flags as environment knobs:
/// `DAAS_TRACE=FILE` writes the JSONL span trace, `DAAS_METRICS=FILE`
/// writes the JSON metrics summary plus a Prometheus exposition at
/// `FILE.prom`. Hold the guard for the whole run — the sinks are
/// written when it drops. With neither variable set the recorder stays
/// off and the guard is inert.
pub struct ObsGuard {
    trace: Option<String>,
    metrics: Option<String>,
}

/// Arms [`ObsGuard`] from `DAAS_TRACE` / `DAAS_METRICS`; call first in
/// `main` so every pipeline stage is recorded.
pub fn obs_from_env() -> ObsGuard {
    let trace = std::env::var("DAAS_TRACE").ok().filter(|p| !p.is_empty());
    let metrics = std::env::var("DAAS_METRICS").ok().filter(|p| !p.is_empty());
    if trace.is_some() || metrics.is_some() {
        daas_obs::set_enabled(true);
    }
    ObsGuard { trace, metrics }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.trace.is_none() && self.metrics.is_none() {
            return;
        }
        let report = daas_obs::drain();
        if let Some(path) = &self.trace {
            let sink = std::fs::File::create(path).map(std::io::BufWriter::new);
            let written = sink.and_then(|mut out| {
                daas_obs::write_trace_jsonl(&report, &mut out)?;
                std::io::Write::flush(&mut out)
            });
            match written {
                Ok(()) => eprintln!("[obs] trace written to {path} ({} spans)", report.spans.len()),
                Err(e) => eprintln!("[obs] trace sink {path} failed: {e}"),
            }
        }
        if let Some(path) = &self.metrics {
            let prom_path = format!("{path}.prom");
            let written = std::fs::write(path, daas_obs::summary_json(&report)).and_then(|()| {
                std::fs::write(&prom_path, daas_obs::prometheus_text(&report.metrics))
            });
            match written {
                Ok(()) => eprintln!("[obs] metrics written to {path} (+ {prom_path})"),
                Err(e) => eprintln!("[obs] metrics sink {path} failed: {e}"),
            }
        }
    }
}

/// Reads `DAAS_SEED` (default 42) and `DAAS_SCALE` (default 1.0 — the
/// paper's scale) from the environment.
pub fn env_config() -> (u64, f64) {
    let seed = std::env::var("DAAS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale = std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    (seed, scale)
}

/// The standard snowball configuration, honouring `DAAS_THREADS`
/// (default 0 = all cores; 1 = the sequential oracle path). The
/// discovered dataset is byte-identical at every setting.
pub fn snowball_config() -> daas_detector::SnowballConfig {
    let threads = std::env::var("DAAS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    daas_detector::SnowballConfig { threads, ..Default::default() }
}

/// The standard clustering configuration, honouring `DAAS_THREADS`
/// like [`snowball_config`]. The clustering is byte-identical at every
/// setting.
pub fn cluster_config() -> daas_cluster::ClusterConfig {
    let threads = std::env::var("DAAS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    daas_cluster::ClusterConfig { threads }
}

/// The standard measurement configuration, honouring `DAAS_THREADS`
/// like [`snowball_config`]. The report bundle is byte-identical at
/// every setting.
pub fn measure_config() -> daas_measure::MeasureConfig {
    let threads = std::env::var("DAAS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    daas_measure::MeasureConfig { threads }
}

/// Reads `DAAS_SHARDS` (default 0 = the built-in default): the single
/// shard knob for the chain's history and asset-state maps and the
/// detector's classification memo. Panics on a non-power-of-two so a
/// typo fails loudly instead of silently misconfiguring the layout.
pub fn shard_count() -> usize {
    let shards: usize =
        std::env::var("DAAS_SHARDS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    assert!(shards == 0 || shards.is_power_of_two(), "DAAS_SHARDS must be a power of two");
    shards
}

/// Builds the standard pipeline at the env-configured seed/scale,
/// honouring `DAAS_THREADS` and `DAAS_SHARDS`.
pub fn standard_pipeline() -> daas_cli::Pipeline {
    let (seed, scale) = env_config();
    let snowball = snowball_config();
    let shards = shard_count();
    let config = daas_world::WorldConfig { scale, ..daas_world::WorldConfig::paper_scale(seed) };
    eprintln!("[exp] seed {seed}, scale {scale}, threads {}", snowball.effective_threads());
    daas_cli::run_pipeline_sharded(&config, &snowball, shards).expect("pipeline builds")
}
