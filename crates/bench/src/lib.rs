//! Shared scaffolding for benches and experiment harnesses: seed/scale
//! parsing from the environment so every `exp_*` binary behaves the
//! same.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads `DAAS_SEED` (default 42) and `DAAS_SCALE` (default 1.0 — the
/// paper's scale) from the environment.
pub fn env_config() -> (u64, f64) {
    let seed = std::env::var("DAAS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale = std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    (seed, scale)
}

/// Builds the standard pipeline at the env-configured seed/scale.
pub fn standard_pipeline() -> daas_cli::Pipeline {
    let (seed, scale) = env_config();
    let config = daas_world::WorldConfig { scale, ..daas_world::WorldConfig::paper_scale(seed) };
    eprintln!("[exp] seed {seed}, scale {scale}");
    daas_cli::run_pipeline(&config, &daas_detector::SnowballConfig::default())
        .expect("pipeline builds")
}
