//! Regenerates Table 1: dataset collection results (seed vs expanded).

fn main() {
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_table1(&p, scale));
}
