//! Regenerates Table 1: dataset collection results (seed vs expanded).

fn main() {
    let _obs = daas_bench::obs_from_env();
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_table1(&p, scale));
}
