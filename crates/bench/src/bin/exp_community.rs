//! Regenerates the §8 community-contribution statistics: label coverage,
//! website detection counts, fingerprint growth.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    let web = daas_cli::run_website_pipeline(&p.world, 0.8);
    let m = p.measured(&daas_bench::measure_config());
    println!("{}", daas_cli::render_community(&p, &m, &web, scale));
}
