//! §9 countermeasures, quantified: how much of the DaaS damage would
//! the paper's proposed wallet-side defenses have prevented?
//!
//! * **Blocklist counterfactual** — deploy the reported dataset as a
//!   wallet blocklist at different dates; count the profit-sharing
//!   transactions (and USD) that postdate it and would have been
//!   refused.
//! * **Simulation shape heuristic** — with *no* blocklist at all, how
//!   many ground-truth drainer contracts does pre-signing simulation
//!   flag by their split shape?

use daas_cli::render_ablations;
use daas_measure::MeasureCtx;
use daas_reporting::Blocklist;
use daas_world::{collection_end, collection_start};
use eth_types::units::ether;
use wallet_guard::{SignRequest, SimulationVerdict, WalletGuard};

fn main() {
    let _obs = daas_bench::obs_from_env();
    let p = daas_bench::standard_pipeline();
    let ctx = MeasureCtx::new(&p.world.chain, &p.dataset, &p.world.oracle);

    // --- Blocklist deployment date sweep. ---
    let start = collection_start();
    let end = collection_end();
    let mut rows = Vec::new();
    for quarter in 0..=8 {
        let at = start + (end - start) * quarter / 8;
        let blocklist = Blocklist::from_dataset(&p.dataset, at);
        let (prevented, total_after) = blocklist.prevented(&p.world.chain, &p.dataset);
        let usd_saved: f64 = ctx
            .incidents()
            .iter()
            .filter(|i| i.timestamp >= at)
            .map(|i| i.usd)
            .sum();
        rows.push((
            daas_chain::format_date(at),
            format!("{prevented}/{total_after} txs refused"),
            format!("${:.1}M at stake", usd_saved / 1e6),
        ));
    }
    println!(
        "{}",
        render_ablations(
            "§9 — Blocklist counterfactual (reported dataset enforced from date)",
            ["enforced from", "prevented", "exposure after date"],
            &rows
        )
    );

    // --- Shape heuristic with an empty blocklist. ---
    let guard = WalletGuard::new();
    let mut chain = p.world.chain.clone();
    let probe = chain.create_eoa_funded(b"exp/probe", ether(1_000_000)).expect("probe");
    let contracts = p.world.truth.all_contracts();
    let mut flagged = 0usize;
    for &contract in &contracts {
        let request = SignRequest {
            to: contract,
            value: ether(1),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: Some(probe),
        };
        if matches!(
            guard.simulate(&chain, probe, &request),
            SimulationVerdict::SuspiciousShape { .. }
        ) {
            flagged += 1;
        }
    }
    let rows = vec![(
        "pre-signing simulation, empty blocklist".to_owned(),
        format!("{flagged}/{} drainer contracts flagged", contracts.len()),
        format!("{:.1}% coverage", 100.0 * flagged as f64 / contracts.len().max(1) as f64),
    )];
    println!(
        "{}",
        render_ablations(
            "§9 — Simulation shape heuristic (no threat intelligence needed)",
            ["defense", "result", "coverage"],
            &rows
        )
    );
}
