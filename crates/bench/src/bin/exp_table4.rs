//! Regenerates Table 4: top-10 TLDs among detected phishing domains.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let p = daas_bench::standard_pipeline();
    let web = daas_cli::run_website_pipeline(&p.world, 0.8);
    println!("{}", daas_cli::render_table4(&web));
}
