//! Ablations A1–A5 (DESIGN.md §4): how each design choice in the
//! pipeline affects precision/recall.
//!
//! Runs at `DAAS_SCALE` (default 1.0 — the round-parallel snowball
//! makes repeated full-scale rebuilds affordable; lower it for a quick
//! pass). `DAAS_THREADS` picks the snowball worker count (0 = all
//! cores); the datasets are byte-identical at every setting.

use daas_cli::{render_ablations, run_website_pipeline};
use daas_detector::{build_dataset, evaluate, ClassifierConfig, SnowballConfig};
use daas_world::{World, WorldConfig};

fn main() {
    let _obs = daas_bench::obs_from_env();
    let seed = std::env::var("DAAS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale = std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let base = daas_bench::snowball_config();
    eprintln!("[exp_ablations] seed {seed}, scale {scale}, threads {}", base.effective_threads());
    let config = WorldConfig { scale, ..WorldConfig::paper_scale(seed) };
    let world = World::build(&config).expect("world");
    let truth = (
        world.truth.all_contracts(),
        world.truth.all_operators(),
        world.truth.all_affiliates(),
        world.truth.ps_tx_ids(),
    );
    let score = |ds: &daas_detector::Dataset| {
        let e = evaluate(ds, &truth.0, &truth.1, &truth.2, &truth.3);
        (e.transactions.recall(), e.contracts.false_positives + e.transactions.false_positives)
    };

    // ---- A1: ratio tolerance sweep. ----
    let mut rows = Vec::new();
    for tol in [0.0, 0.001, 0.005, 0.02, 0.10] {
        let cfg = SnowballConfig {
            classifier: ClassifierConfig { tolerance: tol, ..Default::default() },
            ..base.clone()
        };
        let ds = build_dataset(&world.chain, &world.labels, &cfg);
        let (recall, fps) = score(&ds);
        rows.push((format!("ε = {tol}"), format!("{recall:.4}"), fps.to_string()));
    }
    println!(
        "{}",
        render_ablations("A1 — Ratio-match tolerance", ["tolerance", "tx recall", "false positives"], &rows)
    );

    // ---- A2: seed label coverage sweep. ----
    let mut rows = Vec::new();
    for frac in [0.02, 0.05, 0.10, 391.0 / 1_910.0, 0.40] {
        let cfg = WorldConfig { label_contract_frac: frac, ..config.clone() };
        let w = World::build(&cfg).expect("world");
        let ds = build_dataset(&w.chain, &w.labels, &base);
        let e = evaluate(
            &ds,
            &w.truth.all_contracts(),
            &w.truth.all_operators(),
            &w.truth.all_affiliates(),
            &w.truth.ps_tx_ids(),
        );
        rows.push((
            format!("{:.1}% of contracts labeled", frac * 100.0),
            format!("seed {} → expanded {}", ds.seed.contracts, ds.counts().contracts),
            format!("{:.4}", e.contracts.recall()),
        ));
    }
    println!(
        "{}",
        render_ablations(
            "A2 — Seed coverage (snowball recall vs label availability)",
            ["seed coverage", "contracts", "contract recall"],
            &rows
        )
    );

    // ---- A3: expansion guard vs ratio-shaped benign noise. ----
    let noisy_cfg = WorldConfig { operator_splitter_noise: true, ..config.clone() };
    let noisy = World::build(&noisy_cfg).expect("noisy world");
    let noisy_truth = (
        noisy.truth.all_contracts(),
        noisy.truth.all_operators(),
        noisy.truth.all_affiliates(),
        noisy.truth.ps_tx_ids(),
    );
    let mut rows = Vec::new();
    for (label, guard) in [("guard on (paper)", true), ("guard off", false)] {
        let cfg = SnowballConfig { expansion_guard: guard, ..base.clone() };
        let ds = build_dataset(&noisy.chain, &noisy.labels, &cfg);
        let e = evaluate(&ds, &noisy_truth.0, &noisy_truth.1, &noisy_truth.2, &noisy_truth.3);
        rows.push((
            label.to_owned(),
            format!("{} contract FPs", e.contracts.false_positives),
            format!("recall {:.4}", e.contracts.recall()),
        ));
    }
    println!(
        "{}",
        render_ablations(
            "A3 — Expansion guard (world with operators donating via a 70/30 benign splitter)",
            ["variant", "false positives", "recall"],
            &rows
        )
    );

    // ---- A4: Levenshtein threshold sweep. ----
    let mut rows = Vec::new();
    for threshold in [0.6, 0.7, 0.8, 0.9, 1.0] {
        let web = run_website_pipeline(&world, threshold);
        rows.push((
            format!("threshold {threshold}"),
            format!("{} triaged, {} confirmed", web.triaged, web.report.confirmed),
            format!(
                "{} crawled clean (benign load)",
                web.report.clean
            ),
        ));
    }
    println!(
        "{}",
        render_ablations(
            "A4 — Domain-triage similarity threshold (paper: 0.8)",
            ["variant", "detections", "crawl overhead"],
            &rows
        )
    );

    // ---- A5: strict two-transfer rule. ----
    let mut rows = Vec::new();
    for (label, strict) in [("exactly two transfers (paper)", true), ("two largest of many", false)] {
        let cfg = SnowballConfig {
            classifier: ClassifierConfig { strict_two_transfers: strict, ..Default::default() },
            ..base.clone()
        };
        let ds = build_dataset(&world.chain, &world.labels, &cfg);
        let (recall, fps) = score(&ds);
        rows.push((label.to_owned(), format!("{recall:.4}"), fps.to_string()));
    }
    println!(
        "{}",
        render_ablations("A5 — Two-transfer strictness", ["variant", "tx recall", "false positives"], &rows)
    );
}
