//! Regenerates the §4.3 profit-sharing ratio histogram.

fn main() {
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_ratios(&p));
}
