//! Scale sweep: prove the columnar chain sustains multi-× worlds with
//! bounded memory, and record where the bytes and milliseconds go.
//!
//! Runs the full batch pipeline (world → snowball → clustering → §6
//! measurement → full-chain classification sweep) once per requested
//! scale and writes `BENCH_scale_sweep.json` with wall clocks, the
//! arena's per-column heap footprint, and the process peak RSS
//! (`VmHWM` from `/proc/self/status`).
//!
//! Environment:
//! * `DAAS_SCALES` — comma-separated scale multipliers (default `2`;
//!   scale 1.0 is the paper-calibrated world, ~218k txs).
//! * `DAAS_THREADS` / `DAAS_SHARDS` — as everywhere else.
//! * `DAAS_RSS_CEILING_MB` — optional gate: exit non-zero if peak RSS
//!   exceeds the ceiling after the sweep (the ci.sh smoke sets this).
//! * `DAAS_SCALE_SWEEP_OUT` — output path (default
//!   `BENCH_scale_sweep.json` in the working directory).

use std::fmt::Write as _;
use std::time::Instant;

use daas_cluster::{cluster_with, ClusterConfig};
use daas_detector::{build_dataset_with_cache, ClassificationCache};
use daas_measure::{MeasureConfig, MeasureCtx};
use daas_world::{collection_end, World, WorldConfig};

/// Peak resident set size in bytes (`VmHWM`), or 0 where `/proc` is
/// unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

struct Run {
    scale: f64,
    txs: usize,
    accounts: usize,
    world_ms: f64,
    snowball_ms: f64,
    cluster_ms: f64,
    measure_ms: f64,
    classify_ms: f64,
    arena: Vec<(&'static str, usize)>,
    peak_rss_bytes: u64,
}

fn run_at(scale: f64) -> Run {
    let config = WorldConfig { scale, ..WorldConfig::paper_scale(7) };
    let snowball = daas_bench::snowball_config();

    let t = Instant::now();
    let world = World::build(&config).expect("world builds");
    let world_ms = ms(t);

    let t = Instant::now();
    let cache = ClassificationCache::new();
    let dataset = build_dataset_with_cache(&world.chain, &world.labels, &snowball, &cache);
    let snowball_ms = ms(t);

    let t = Instant::now();
    let clustering = cluster_with(
        &world.chain,
        &world.labels,
        &dataset,
        &ClusterConfig::sequential(),
    );
    let cluster_ms = ms(t);

    let t = Instant::now();
    let reports = MeasureCtx::new(&world.chain, &dataset, &world.oracle).reports(
        &world.labels,
        30 * 86_400,
        collection_end(),
        &MeasureConfig::sequential(),
    );
    let measure_ms = ms(t);

    // The headline hot path: classify every transaction once, cold.
    let t = Instant::now();
    let fresh = ClassificationCache::new();
    let n = world.chain.transactions().len() as daas_chain::TxId;
    let mut positives = 0usize;
    for id in 0..n {
        if fresh.classify(&world.chain, id, &snowball.classifier).is_some() {
            positives += 1;
        }
    }
    let classify_ms = ms(t);

    eprintln!(
        "scale {scale}: {} txs, {} families, {} victims, {} positives — \
         world {world_ms:.0}ms snowball {snowball_ms:.0}ms cluster {cluster_ms:.0}ms \
         measure {measure_ms:.0}ms classify {classify_ms:.0}ms",
        n,
        clustering.families.len(),
        reports.victims.victims,
        positives,
    );

    Run {
        scale,
        txs: n as usize,
        accounts: world.chain.transactions().interner().len(),
        world_ms,
        snowball_ms,
        cluster_ms,
        measure_ms,
        classify_ms,
        arena: world.chain.transactions().column_bytes(),
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let scales: Vec<f64> = std::env::var("DAAS_SCALES")
        .unwrap_or_else(|_| "2".to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!scales.is_empty(), "DAAS_SCALES parsed to nothing");

    let runs: Vec<Run> = scales.iter().map(|&s| run_at(s)).collect();

    let mut out = String::from("{\n \"group\": \"scale_sweep\",\n \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\n   \"scale\": {},\n   \"txs\": {},\n   \"interned_accounts\": {},\n   \
             \"world_ms\": {:.1},\n   \"snowball_ms\": {:.1},\n   \"cluster_ms\": {:.1},\n   \
             \"measure_ms\": {:.1},\n   \"classify_full_chain_ms\": {:.1},\n   \
             \"arena_bytes\": {{",
            r.scale,
            r.txs,
            r.accounts,
            r.world_ms,
            r.snowball_ms,
            r.cluster_ms,
            r.measure_ms,
            r.classify_ms,
        );
        for (j, (column, bytes)) in r.arena.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{column}\": {bytes}");
        }
        let total: usize = r.arena.iter().map(|(_, b)| b).sum();
        let _ = write!(
            out,
            ", \"total\": {total}}},\n   \"peak_rss_bytes\": {}\n  }}",
            r.peak_rss_bytes
        );
    }
    out.push_str("\n ]\n}\n");

    let path = std::env::var("DAAS_SCALE_SWEEP_OUT")
        .unwrap_or_else(|_| "BENCH_scale_sweep.json".to_owned());
    std::fs::write(&path, &out).expect("write sweep artifact");
    println!("scale_sweep: wrote {path}");

    // Optional CI gate: the whole sweep must have stayed under the RSS
    // ceiling. Peak RSS is monotone over the process lifetime, so one
    // check at the end covers every run.
    if let Ok(ceiling_mb) = std::env::var("DAAS_RSS_CEILING_MB") {
        let ceiling_mb: u64 = ceiling_mb.parse().expect("DAAS_RSS_CEILING_MB not a number");
        let peak = peak_rss_bytes();
        let peak_mb = peak / (1024 * 1024);
        if peak_mb > ceiling_mb {
            eprintln!(
                "scale_sweep: FAIL: peak RSS {peak_mb} MiB exceeds ceiling {ceiling_mb} MiB"
            );
            std::process::exit(1);
        }
        println!("scale_sweep: peak RSS {peak_mb} MiB within ceiling {ceiling_mb} MiB");
    }
}
