//! Adversarial-robustness experiment: every scenario in `scenarios/`
//! runs through the full pipeline (world → snowball → clustering →
//! measurement) and is scored against its ground truth — dataset
//! membership per account class, pairwise family assignment, and §6
//! loss attribution, each as precision/recall/F1.
//!
//! Outputs:
//! * a machine-readable `BENCH_robustness.json` (path override via
//!   `DAAS_ROBUSTNESS_OUT`), and
//! * a human scenario-matrix report on stdout.
//!
//! Environment: `DAAS_SCALE` multiplies every scenario's own scale
//! (CI smoke runs use a fraction); `DAAS_THREADS` / `DAAS_SHARDS` /
//! `DAAS_TRACE` / `DAAS_METRICS` behave as in every other `exp_*`
//! harness. Scenario seeds are pinned by the scenario files themselves
//! so the scores are reproducible artifacts, not run-dependent noise.

use daas_cli::run_pipeline_sharded;
use daas_detector::{evaluate, pairwise_family_scores, ClassScores, LossAttribution};
use daas_world::WorldConfig;
use serde::Serialize;

/// Per-scenario scores, serialised into `BENCH_robustness.json`.
#[derive(Debug, Serialize)]
struct ScenarioScores {
    scenario: String,
    seed: u64,
    scale: f64,
    adversarial: bool,
    /// Dataset-membership scores per account class.
    contracts: Scores,
    operators: Scores,
    affiliates: Scores,
    transactions: Scores,
    /// Pairwise family-assignment scores over member accounts.
    family_pairs: Scores,
    /// §6 loss attribution.
    loss_measured_usd: f64,
    loss_truth_usd: f64,
    loss_relative_error: f64,
}

/// One precision/recall/F1 triple with its raw counts.
#[derive(Debug, Serialize)]
struct Scores {
    true_positives: usize,
    false_positives: usize,
    false_negatives: usize,
    precision: f64,
    recall: f64,
    f1: f64,
}

impl From<ClassScores> for Scores {
    fn from(s: ClassScores) -> Scores {
        Scores {
            true_positives: s.true_positives,
            false_positives: s.false_positives,
            false_negatives: s.false_negatives,
            precision: s.precision(),
            recall: s.recall(),
            f1: s.f1(),
        }
    }
}

#[derive(Debug, Serialize)]
struct Report {
    scale_multiplier: f64,
    scenarios: Vec<ScenarioScores>,
}

fn scenario_dir() -> std::path::PathBuf {
    match std::env::var("DAAS_SCENARIOS") {
        Ok(dir) if !dir.is_empty() => dir.into(),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios"),
    }
}

fn main() {
    let _obs = daas_bench::obs_from_env();
    let scale_mult: f64 =
        std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let snowball = daas_bench::snowball_config();
    let shards = daas_bench::shard_count();
    let measure = daas_bench::measure_config();

    let dir = scenario_dir();
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read scenario dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no scenario files in {}", dir.display());
    eprintln!(
        "[exp_robustness] {} scenario(s), scale x{scale_mult}, threads {}",
        paths.len(),
        snowball.effective_threads()
    );

    let mut scenarios = Vec::new();
    for path in &paths {
        let name = path.file_stem().unwrap_or_default().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let mut config: WorldConfig = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        config.scale *= scale_mult;
        let adversarial = !config.adversarial.is_default()
            || config.families.iter().any(|f| f.kind_mix.is_some());

        let pipeline = run_pipeline_sharded(&config, &snowball, shards)
            .unwrap_or_else(|e| panic!("scenario {name} failed: {e}"));
        let truth = &pipeline.world.truth;
        let eval = evaluate(
            &pipeline.dataset,
            &truth.all_contracts(),
            &truth.all_operators(),
            &truth.all_affiliates(),
            &truth.ps_tx_ids(),
        );

        // Family assignment: predicted member sets against the truth
        // families' member sets.
        let truth_sets: Vec<Vec<_>> = truth
            .families
            .iter()
            .map(|f| {
                let mut v: Vec<_> = f.operators.clone();
                v.extend(f.contracts.iter().map(|c| c.address));
                v.extend(f.affiliates.iter().copied());
                v
            })
            .collect();
        let family_pairs =
            pairwise_family_scores(&pipeline.clustering.member_sets(), &truth_sets);

        // §6 loss attribution: the measured victim-loss total against
        // the ground-truth incident sum.
        let measured = pipeline.measured(&measure);
        let loss = LossAttribution {
            measured_usd: measured.reports.victims.total_usd,
            truth_usd: truth.incidents.iter().map(|i| i.loss_usd).sum(),
        };

        eprintln!(
            "[exp_robustness] {name}: contracts P {:.3} R {:.3}, txs R {:.3}, pairs F1 {:.3}",
            eval.contracts.precision(),
            eval.contracts.recall(),
            eval.transactions.recall(),
            family_pairs.f1(),
        );
        scenarios.push(ScenarioScores {
            scenario: name,
            seed: config.seed,
            scale: config.scale,
            adversarial,
            contracts: eval.contracts.into(),
            operators: eval.operators.into(),
            affiliates: eval.affiliates.into(),
            transactions: eval.transactions.into(),
            family_pairs: family_pairs.into(),
            loss_measured_usd: measured.reports.victims.total_usd,
            loss_truth_usd: loss.truth_usd,
            loss_relative_error: loss.relative_error(),
        });
    }

    let report = Report { scale_multiplier: scale_mult, scenarios };
    let out = std::env::var("DAAS_ROBUSTNESS_OUT")
        .ok()
        .filter(|p| !p.is_empty())
        .unwrap_or_else(|| "BENCH_robustness.json".to_owned());
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("[exp_robustness] scores written to {out}");

    println!("{}", render_matrix(&report));
}

/// The human scenario matrix: one row per scenario, the four headline
/// numbers per row.
fn render_matrix(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("Adversarial scenario matrix — pipeline scores per scenario\n");
    out.push_str(&format!("(scenario scale multiplier x{})\n\n", report.scale_multiplier));
    out.push_str(&format!(
        "{:<24} {:>5} {:>11} {:>11} {:>8} {:>9} {:>9}\n",
        "scenario", "adv", "contracts", "contracts", "tx", "family", "loss"
    ));
    out.push_str(&format!(
        "{:<24} {:>5} {:>11} {:>11} {:>8} {:>9} {:>9}\n",
        "", "", "precision", "recall", "recall", "pairs F1", "rel.err"
    ));
    for s in &report.scenarios {
        out.push_str(&format!(
            "{:<24} {:>5} {:>11.4} {:>11.4} {:>8.4} {:>9.4} {:>9.4}\n",
            s.scenario,
            if s.adversarial { "yes" } else { "no" },
            s.contracts.precision,
            s.contracts.recall,
            s.transactions.recall,
            s.family_pairs.f1,
            s.loss_relative_error,
        ));
    }
    out.push_str(
        "\nA calibrated scenario scores 1.0 everywhere; adversarial rows show where\n\
         the §4.3 exact-ratio rule, the snowball guard, or the operator-clustering\n\
         heuristics degrade under each evasion strategy.\n",
    );
    out
}
