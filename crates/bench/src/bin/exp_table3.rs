//! Regenerates Table 3: phishing functions of the dominant families.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_table3(&p));
}
