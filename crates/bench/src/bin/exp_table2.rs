//! Regenerates Table 2: the nine-family overview.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    let m = p.measured(&daas_bench::measure_config());
    println!("{}", daas_cli::render_table2(&p, &m, scale));
}
