//! Regenerates the §7.2 primary-contract lifecycle comparison.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    let min_txs = ((100.0 * scale) as usize).max(5);
    println!("{}", daas_cli::render_lifecycles(&p, min_txs));
}
