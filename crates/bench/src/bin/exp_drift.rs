//! Model-drift experiment — the limitation §5.2 discusses: "shifts in
//! market dynamics [or] attacker strategies … could prevent us from
//! identifying new profit-sharing transactions."
//!
//! One family (Medusa, index 6) switches every contract to a 22%
//! operator ratio that is NOT in the §4.3 table. The stock pipeline goes
//! blind to that family; extending the classifier's ratio list restores
//! recall — quantifying both the decay and the fix.

use daas_cli::render_ablations;
use daas_detector::{build_dataset, evaluate, ClassifierConfig, SnowballConfig};
use daas_world::{World, WorldConfig};

const DRIFTED_FAMILY: usize = 6; // Medusa
const NOVEL_BPS: u32 = 2_200; // 22% — off the known table

fn main() {
    let _obs = daas_bench::obs_from_env();
    let seed = std::env::var("DAAS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
    let scale = std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.2);
    eprintln!("[exp_drift] seed {seed}, scale {scale}");
    let config = WorldConfig {
        novel_ratio: Some((DRIFTED_FAMILY, NOVEL_BPS)),
        scale,
        ..WorldConfig::paper_scale(seed)
    };
    let world = World::build(&config).expect("world");
    let truth = (
        world.truth.all_contracts(),
        world.truth.all_operators(),
        world.truth.all_affiliates(),
        world.truth.ps_tx_ids(),
    );
    let drifted = &world.truth.families[DRIFTED_FAMILY];
    eprintln!(
        "[exp_drift] {} drifted to {}bps: {} contracts",
        drifted.display_name(),
        NOVEL_BPS,
        drifted.contracts.len()
    );

    let mut rows = Vec::new();
    // Stock classifier: the drifted family's transactions no longer
    // match any known ratio.
    let stock = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let e = evaluate(&stock, &truth.0, &truth.1, &truth.2, &truth.3);
    rows.push((
        "stock ratio table (paper §4.3)".to_owned(),
        format!("contract recall {:.4}", e.contracts.recall()),
        format!("tx recall {:.4}", e.transactions.recall()),
    ));

    // Updated classifier: table extended with the newly observed ratio —
    // the maintenance loop §5.2 calls for.
    let mut ratios = daas_detector::DEFAULT_RATIOS_BPS.to_vec();
    ratios.push(NOVEL_BPS);
    let updated_cfg = SnowballConfig {
        classifier: ClassifierConfig { ratios_bps: ratios, ..Default::default() },
        ..Default::default()
    };
    let updated = build_dataset(&world.chain, &world.labels, &updated_cfg);
    let e = evaluate(&updated, &truth.0, &truth.1, &truth.2, &truth.3);
    rows.push((
        format!("table + {}bps (refreshed)", NOVEL_BPS),
        format!("contract recall {:.4}", e.contracts.recall()),
        format!("tx recall {:.4}", e.transactions.recall()),
    ));

    // How much of the loss is specifically the drifted family.
    let missed_contracts: usize = drifted
        .contracts
        .iter()
        .filter(|c| !stock.contracts.contains(&c.address))
        .count();
    rows.push((
        "drifted-family contracts missed by stock table".to_owned(),
        format!("{missed_contracts}/{}", drifted.contracts.len()),
        String::new(),
    ));

    println!(
        "{}",
        render_ablations(
            "Model drift — one family adopts an off-table 22% ratio (§5.2 limitation)",
            ["classifier", "contracts", "transactions"],
            &rows
        )
    );
}
