//! Regenerates Figure 6: the victim-loss distribution.

fn main() {
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_fig6(&p));
}
