//! CI smoke gate for the streaming pipeline: replays a small world
//! through [`daas_cli::Pipeline::live`] with the obs recorder on, then
//! fails if the incremental clusterer's total window-update time exceeds
//! what re-clustering every window from scratch would have cost.
//!
//! The baseline is measured in the *same run* (a relative gate), so the
//! verdict is stable across machine speeds: both sides see the same
//! container, the same build and the same world.
//!
//! Environment: `DAAS_SCALE` (default 0.05) scales the world;
//! `DAAS_SMOKE_WINDOW` (default 720 blocks) sets the poll window. The
//! smoke window is deliberately smaller than the production 7 200-block
//! window so even a small world replays enough polls for the relative
//! gate to be meaningful.

use std::time::Instant;

use daas_chain::TxId;
use daas_cluster::{cluster_prefix, ClusterConfig};
use daas_measure::MeasureConfig;
use daas_world::WorldConfig;

fn fail(msg: &str) -> ! {
    eprintln!("live_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let scale: f64 =
        std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.05);
    let window_blocks: u64 = std::env::var("DAAS_SMOKE_WINDOW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(720);
    let config = WorldConfig { scale, ..WorldConfig::paper_scale(7) };
    let snowball = daas_bench::snowball_config();

    daas_obs::set_enabled(true);
    let run = daas_cli::Pipeline::live(
        &config,
        &snowball,
        0,
        window_blocks,
        &MeasureConfig::sequential(),
        |_| {},
    )
    .unwrap_or_else(|e| fail(&format!("pipeline failed: {e}")));
    daas_obs::set_enabled(false);
    let report = daas_obs::drain();

    if !run.batch_matches {
        fail("streaming artifacts diverged from the batch oracle");
    }
    let n_windows = run.windows.len();
    if n_windows < 2 {
        fail(&format!("world too small to exercise streaming ({n_windows} windows)"));
    }

    let hist = report
        .metrics
        .histograms
        .get("live.window.update_ms{stage=cluster}")
        .unwrap_or_else(|| fail("recorder saw no live.window.update_ms{stage=cluster} samples"));
    let incremental_ms = hist.sum_ms;

    // The naive per-poll baseline, measured here and now: batch-cluster
    // the full prefix from scratch (what every poll would pay without
    // the incremental clusterer), best of three to shave scheduler
    // noise, times the number of windows the replay actually ran.
    let at = run.world.chain.transactions().len() as TxId;
    let scratch_ms = (0..3)
        .map(|_| {
            let t = Instant::now();
            let clustering = cluster_prefix(
                &run.world.chain,
                &run.world.labels,
                &run.dataset,
                at,
                &ClusterConfig::sequential(),
            );
            assert!(!clustering.families.is_empty(), "smoke world produced no families");
            t.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min);
    let naive_ms = scratch_ms * n_windows as f64;

    let p50 = hist.quantile_ms(0.5).unwrap_or(0.0);
    let p95 = hist.quantile_ms(0.95).unwrap_or(0.0);
    println!(
        "live_smoke: scale {scale}, {n_windows} windows, {families} families | \
         incremental cluster total {incremental_ms:.2} ms (p50 {p50:.3} ms, p95 {p95:.3} ms) \
         vs scratch baseline {naive_ms:.2} ms ({scratch_ms:.2} ms/window)",
        families = run.clustering.families.len(),
    );

    if incremental_ms > naive_ms {
        fail(&format!(
            "incremental window updates ({incremental_ms:.2} ms) cost more than \
             re-clustering from scratch every window ({naive_ms:.2} ms)"
        ));
    }
    println!("live_smoke: OK");
}
