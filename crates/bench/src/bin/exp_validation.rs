//! Regenerates the §5.2 validation: precision/recall against ground
//! truth plus the manual-review sampling plan.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_validation(&p, scale));
}
