//! Regenerates the monthly activity timeline (victims / profit-sharing
//! transactions / USD stolen per calendar month).

fn main() {
    let _obs = daas_bench::obs_from_env();
    let p = daas_bench::standard_pipeline();
    let m = p.measured(&daas_bench::measure_config());
    println!("{}", daas_cli::render_timeline(&m));
}
