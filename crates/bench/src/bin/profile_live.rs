//! Dev profiler for the streaming pipeline: per-window split of
//! detect / cluster-ingest / cluster-snapshot / measure time, the raw
//! classification sweep, and the batch stage breakdown for comparison.
//!
//! Unlike the Criterion bench this prints every window, so regressions
//! localise to a stage and a point in the stream. `DAAS_SCALE`
//! overrides the world scale (default 1.0).

use std::sync::Arc;
use std::time::{Duration, Instant};

use daas_detector::{ClassificationCache, OnlineDetector};
use daas_measure::LiveMeasure;
use daas_world::{World, WorldConfig};

fn main() {
    let scale: f64 =
        std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let config = WorldConfig { scale, ..WorldConfig::paper_scale(7) };
    let world = World::build(&config).expect("world builds");
    let snowball = daas_bench::snowball_config();
    let blocks = world.chain.blocks();

    let cache = Arc::new(ClassificationCache::new());
    let mut detector = OnlineDetector::with_cache(snowball.clone(), Arc::clone(&cache));
    let mut clusterer = daas_cluster::OnlineClusterer::with_cache(
        snowball.classifier.clone(),
        Arc::clone(&cache),
    );
    let mut measure = LiveMeasure::with_cache(snowball.classifier.clone(), Arc::clone(&cache));

    let mut tot = [Duration::ZERO; 4];
    let mut start = 0usize;
    let mut w = 0;
    while start < blocks.len() {
        let end = (start + 7_200).min(blocks.len());
        let last = &blocks[end - 1];
        let watermark = last.first_tx + last.tx_count;
        let t0 = Instant::now();
        let events = detector.poll_until(&world.chain, &world.labels, watermark);
        let t1 = Instant::now();
        clusterer.ingest(&world.chain, &world.labels, detector.dataset(), &events, watermark);
        let t2 = Instant::now();
        clusterer.clustering(&world.labels);
        let t3 = Instant::now();
        measure.ingest(&world.chain, &world.oracle, &events);
        let t4 = Instant::now();
        let d = [t1 - t0, t2 - t1, t3 - t2, t4 - t3];
        println!(
            "w{w:02} txs={:>6} ev={:>6} | detect {:>7.2?} ingest {:>7.2?} snapshot {:>7.2?} measure {:>7.2?}",
            watermark, events.len(), d[0], d[1], d[2], d[3],
        );
        for i in 0..4 {
            tot[i] += d[i];
        }
        start = end;
        w += 1;
    }
    println!(
        "TOTAL detect {:.2?} ingest {:.2?} snapshot {:.2?} measure {:.2?}",
        tot[0], tot[1], tot[2], tot[3]
    );
    println!("{:?}", clusterer.stats());
    println!("STREAM cache entries {}", cache.len());

    // Raw ingredient costs, for calibrating the numbers above.
    let n_txs = world.chain.transactions().len() as daas_chain::TxId;
    let t = Instant::now();
    let fresh = daas_detector::ClassificationCache::new();
    let mut pos = 0u64;
    for id in 0..n_txs {
        if fresh.classify(&world.chain, id, &snowball.classifier).is_some() {
            pos += 1;
        }
    }
    println!("CLASSIFY all {n_txs} txs in {:.2?} ({pos} positive)", t.elapsed());

    // Batch stage breakdown for comparison.
    let as_of = daas_world::collection_end();
    let t0 = Instant::now();
    let bcache = daas_detector::ClassificationCache::new();
    let dataset =
        daas_detector::build_dataset_with_cache(&world.chain, &world.labels, &snowball, &bcache);
    let t1 = Instant::now();
    let clustering = daas_cluster::cluster_with(
        &world.chain,
        &world.labels,
        &dataset,
        &daas_cluster::ClusterConfig::sequential(),
    );
    let t2 = Instant::now();
    let reports = daas_measure::MeasureCtx::new(&world.chain, &dataset, &world.oracle).reports(
        &world.labels,
        30 * 86_400,
        as_of,
        &daas_measure::MeasureConfig::sequential(),
    );
    let t3 = Instant::now();
    println!("BATCH cache entries {}", bcache.len());
    println!(
        "BATCH build {:.2?} cluster {:.2?} measure {:.2?} (families {} victims {})",
        t1 - t0,
        t2 - t1,
        t3 - t2,
        clustering.families.len(),
        reports.victims.victims,
    );
}
