//! §7.2 — the dominant-family comparison: contract implementation,
//! rotation cadence, affiliate reach, leveling tiers, and reward
//! payments, side by side for Angel / Inferno / Pink.

use daas_cli::render_ablations;
use daas_cluster::{contract_profile, primary_lifecycles};
use daas_measure::MeasureCtx;
use daas_world::collection_end;

fn main() {
    let _obs = daas_bench::obs_from_env();
    let (_, scale) = daas_bench::env_config();
    let p = daas_bench::standard_pipeline();
    let ctx = MeasureCtx::new(&p.world.chain, &p.dataset, &p.world.oracle);
    let min_txs = ((100.0 * scale) as usize).max(5);

    // Per-family §7.2 leveling thresholds (paper: Angel $100k/$1M/$5M,
    // Inferno $10k/$100k/$1M; Pink runs no documented program — shown
    // with Inferno's scale for comparison).
    let thresholds = [
        ("Angel Drainer", [100_000.0 * scale, 1_000_000.0 * scale, 5_000_000.0 * scale]),
        ("Inferno Drainer", [10_000.0 * scale, 100_000.0 * scale, 1_000_000.0 * scale]),
        ("Pink Drainer", [10_000.0 * scale, 100_000.0 * scale, 1_000_000.0 * scale]),
    ];

    let mut impl_rows = Vec::new();
    let mut cadence_rows = Vec::new();
    let mut tier_rows = Vec::new();
    let mut reward_rows = Vec::new();

    for (name, levels) in thresholds {
        let Some(family) = p.clustering.by_name(name) else { continue };

        let profile = contract_profile(&p.world.chain, &p.dataset, family);
        impl_rows.push((
            name.to_owned(),
            profile.eth_entry.unwrap_or_else(|| "-".into()),
            profile.token_entry.unwrap_or_else(|| "-".into()),
        ));

        let lc = primary_lifecycles(
            &p.world.chain,
            &p.dataset,
            family,
            min_txs,
            30 * 86_400,
            collection_end(),
        );
        cadence_rows.push((
            name.to_owned(),
            format!("{} primaries", lc.contracts.len()),
            format!("{:.1} day rotation", lc.mean_days),
        ));

        let census = ctx.affiliate_tiers(&family.affiliates, levels);
        tier_rows.push((
            name.to_owned(),
            format!(
                "L0 {} | L1 {} | L2 {} | L3 {}",
                census.levels[0], census.levels[1], census.levels[2], census.levels[3]
            ),
            format!(
                "thresholds ${:.0}k/${:.0}k/${:.0}k",
                levels[0] / 1e3,
                levels[1] / 1e3,
                levels[2] / 1e3
            ),
        ));

        let rewards = ctx.reward_transfers(&family.operators, &family.affiliates);
        reward_rows.push((
            name.to_owned(),
            format!("{} payments to {} affiliates", rewards.transfers, rewards.affiliates_rewarded),
            format!("{} ETH total", eth_types::units::format_ether(rewards.total_wei, 1)),
        ));
    }

    println!(
        "{}",
        render_ablations(
            "§7.2 — Contract implementation (Table 3, recovered behaviourally)",
            ["family", "ETH entry", "token sweep"],
            &impl_rows
        )
    );
    println!(
        "{}",
        render_ablations(
            "§7.2 — Contract rotation cadence (paper: 102.3 / 198.6 / 96.8 days)",
            ["family", "primaries", "cadence"],
            &cadence_rows
        )
    );
    println!(
        "{}",
        render_ablations(
            "§7.2 — Affiliate leveling census (thresholds scaled with the world)",
            ["family", "tier counts", "program"],
            &tier_rows
        )
    );
    println!(
        "{}",
        render_ablations(
            "§7.2 — Reward payments observed on-chain (Angel & Inferno run programs)",
            ["family", "payments", "volume"],
            &reward_rows
        )
    );
}
