//! Regenerates Figure 7: the affiliate-profit distribution.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let p = daas_bench::standard_pipeline();
    let m = p.measured(&daas_bench::measure_config());
    println!("{}", daas_cli::render_fig7(&m));
}
