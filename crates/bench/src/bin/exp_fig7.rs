//! Regenerates Figure 7: the affiliate-profit distribution.

fn main() {
    let p = daas_bench::standard_pipeline();
    println!("{}", daas_cli::render_fig7(&p));
}
