//! Regenerates Figure 4's worked example: one profit-sharing transaction
//! with its two fixed-proportion transfers.

fn main() {
    let _obs = daas_bench::obs_from_env();
    let p = daas_bench::standard_pipeline();
    let m = p.measured(&daas_bench::measure_config());
    println!("{}", daas_cli::render_fig4(&p, &m));
}
