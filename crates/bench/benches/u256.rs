//! Criterion: U256 arithmetic primitives (the ledger substrate's inner
//! loop — every transfer does add/sub, every split does mul_div).

use criterion::{criterion_group, criterion_main, Criterion};
use eth_types::{keccak256, U256};

fn bench_u256(c: &mut Criterion) {
    let a = U256::from_hex_str("0xdeadbeefcafebabe1234567890abcdef00112233445566778899aabbccddeeff")
        .unwrap();
    let b = U256::from_hex_str("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
        .unwrap();
    let wei = U256::from_u128(27_100_000_000_000_000_000);

    c.bench_function("u256_add", |bch| bch.iter(|| a.overflowing_add(b)));
    c.bench_function("u256_mul_div_split", |bch| {
        bch.iter(|| wei.mul_div(U256::from_u64(2000), U256::from_u64(10_000)))
    });
    c.bench_function("u256_div_rem_large", |bch| bch.iter(|| a.div_rem(U256::from_u64(1_000_003))));
    c.bench_function("u256_to_decimal_string", |bch| bch.iter(|| a.to_string()));
    c.bench_function("keccak256_136b", |bch| {
        let data = [0x42u8; 136];
        bch.iter(|| keccak256(&data))
    });
}

criterion_group!(benches, bench_u256);
criterion_main!(benches);
