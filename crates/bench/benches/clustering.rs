//! Criterion: family clustering (§7.1) and its union-find core.

use criterion::{criterion_group, criterion_main, Criterion};
use daas_cluster::cluster;
use daas_detector::{build_dataset, SnowballConfig};
use daas_world::{World, WorldConfig};
use eth_types::Address;
use txgraph::UnionFind;

fn bench_clustering(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(7)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());

    let mut group = c.benchmark_group("clustering");
    group.sample_size(20);
    group.bench_function("cluster_families", |b| {
        b.iter(|| cluster(&world.chain, &world.labels, &dataset))
    });
    group.finish();

    // Micro: union-find over a synthetic 100k-edge graph.
    let addrs: Vec<Address> =
        (0..20_000u32).map(|i| Address::from_key_seed(&i.to_be_bytes())).collect();
    let edges: Vec<(Address, Address)> = (0..100_000usize)
        .map(|i| (addrs[(i * 7) % addrs.len()], addrs[(i * 13 + 1) % addrs.len()]))
        .collect();
    c.bench_function("union_find_100k_edges", |b| {
        b.iter(|| {
            let mut uf = UnionFind::new();
            for &(x, y) in &edges {
                uf.union(x, y);
            }
            uf.components().len()
        })
    });
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
