//! Criterion: end-to-end snowball dataset construction (§5.1) at CI
//! scale, with and without the expansion guard.

use criterion::{criterion_group, criterion_main, Criterion};
use daas_detector::{build_dataset, SnowballConfig};
use daas_world::{World, WorldConfig};

fn bench_snowball(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(7)).expect("world");

    let mut group = c.benchmark_group("snowball");
    group.sample_size(20);
    group.bench_function("build_dataset_guarded", |b| {
        b.iter(|| build_dataset(&world.chain, &world.labels, &SnowballConfig::default()))
    });
    group.bench_function("build_dataset_unguarded", |b| {
        let cfg = SnowballConfig { expansion_guard: false, ..Default::default() };
        b.iter(|| build_dataset(&world.chain, &world.labels, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_snowball);
criterion_main!(benches);
