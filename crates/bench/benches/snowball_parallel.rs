//! Criterion: sequential-oracle vs round-parallel snowball sampling,
//! with a cold and a pre-warmed classification cache. Tracks the §5.1
//! throughput claim: parallel expansion must beat the oracle on
//! multi-core hosts while producing byte-identical datasets
//! (`crates/daas-detector/tests/parallel_equivalence.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daas_detector::{
    build_dataset, build_dataset_with_cache, ClassificationCache, SnowballConfig,
};
use daas_world::{World, WorldConfig};

fn cfg(threads: usize) -> SnowballConfig {
    SnowballConfig { threads, ..Default::default() }
}

fn bench_snowball_parallel(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(7)).expect("world");
    let transactions = world.chain.transactions().len() as u64;

    let mut group = c.benchmark_group("snowball_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(transactions));
    group.bench_function("sequential_cold", |b| {
        b.iter(|| build_dataset(&world.chain, &world.labels, &cfg(1)))
    });
    group.bench_function("parallel_cold", |b| {
        b.iter(|| build_dataset(&world.chain, &world.labels, &cfg(0)))
    });

    let warm = ClassificationCache::new();
    build_dataset_with_cache(&world.chain, &world.labels, &cfg(0), &warm);
    group.bench_function("sequential_warm", |b| {
        b.iter(|| build_dataset_with_cache(&world.chain, &world.labels, &cfg(1), &warm))
    });
    group.bench_function("parallel_warm", |b| {
        b.iter(|| build_dataset_with_cache(&world.chain, &world.labels, &cfg(0), &warm))
    });
    group.finish();
}

criterion_group!(benches, bench_snowball_parallel);
criterion_main!(benches);
