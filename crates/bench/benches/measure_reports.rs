//! Criterion: sequential-oracle vs parallel §6 report bundle. Cold
//! variants rebuild the measurement context per iteration (the feature
//! memo starts empty); warm variants reuse one context whose memo is
//! already filled, isolating pure report computation. The bundle is
//! byte-identical at every thread count
//! (`crates/daas-measure/tests/parallel_equivalence.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daas_detector::build_dataset;
use daas_measure::{MeasureConfig, MeasureCtx};
use daas_world::{collection_end, World, WorldConfig};

const INACTIVE_SECS: u64 = 30 * 86_400;

fn bench_measure_reports(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(7)).expect("world builds");
    let dataset = build_dataset(&world.chain, &world.labels, &daas_bench::snowball_config());
    let observations = dataset.observations.len() as u64;
    let as_of = collection_end();
    let seq = MeasureConfig::sequential();
    let par = MeasureConfig::default();

    let mut group = c.benchmark_group("measure_reports");
    group.sample_size(10);
    group.throughput(Throughput::Elements(observations));
    group.bench_function("cold_sequential", |b| {
        b.iter(|| {
            let ctx = MeasureCtx::new(&world.chain, &dataset, &world.oracle);
            ctx.reports(&world.labels, INACTIVE_SECS, as_of, &seq)
        })
    });
    group.bench_function("cold_parallel", |b| {
        b.iter(|| {
            let ctx = MeasureCtx::new(&world.chain, &dataset, &world.oracle);
            ctx.reports(&world.labels, INACTIVE_SECS, as_of, &par)
        })
    });

    let warm = MeasureCtx::new(&world.chain, &dataset, &world.oracle);
    // One throwaway bundle fills the feature memo through the same path
    // the timed iterations use.
    warm.reports(&world.labels, INACTIVE_SECS, as_of, &par);
    group.bench_function("warm_sequential", |b| {
        b.iter(|| warm.reports(&world.labels, INACTIVE_SECS, as_of, &seq))
    });
    group.bench_function("warm_parallel", |b| {
        b.iter(|| warm.reports(&world.labels, INACTIVE_SECS, as_of, &par))
    });
    group.finish();
}

criterion_group!(benches, bench_measure_reports);
criterion_main!(benches);
