//! Criterion: sequential-oracle vs parallel family clustering and the
//! per-family forensics fan-out. Tracks the §7.1 throughput claim:
//! parallel extract → merge → fan-out must beat the oracle on
//! multi-core hosts while producing byte-identical clusterings
//! (`crates/daas-cluster/tests/parallel_equivalence.rs`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daas_cluster::{cluster_with, family_forensics, ClusterConfig};
use daas_detector::{build_dataset, SnowballConfig};
use daas_world::{collection_end, World, WorldConfig};

fn bench_cluster_parallel(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(7)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let operators = dataset.operators.len() as u64;

    let mut group = c.benchmark_group("cluster_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(operators));
    group.bench_function("sequential", |b| {
        b.iter(|| cluster_with(&world.chain, &world.labels, &dataset, &ClusterConfig::sequential()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| cluster_with(&world.chain, &world.labels, &dataset, &ClusterConfig::default()))
    });

    let clustering = cluster_with(&world.chain, &world.labels, &dataset, &ClusterConfig::default());
    let as_of = collection_end();
    group.bench_function("forensics_sequential", |b| {
        b.iter(|| {
            family_forensics(
                &world.chain,
                &dataset,
                &clustering,
                5,
                30 * 86_400,
                as_of,
                &ClusterConfig::sequential(),
            )
        })
    });
    group.bench_function("forensics_parallel", |b| {
        b.iter(|| {
            family_forensics(
                &world.chain,
                &dataset,
                &clustering,
                5,
                30 * 86_400,
                as_of,
                &ClusterConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_parallel);
criterion_main!(benches);
