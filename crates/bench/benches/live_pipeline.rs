//! Criterion: streaming vs batch end-to-end cost, and the per-window
//! incremental update against the re-cluster-from-scratch baseline a
//! naive live pipeline would pay every poll.
//!
//! * `batch_total` — one-shot snowball + clustering + §6 bundle.
//! * `streaming_total` — full block-window replay through the online
//!   detector, incremental clusterer and live accumulators, then the
//!   canonical bundle.
//! * `window_update` — apply one more window (poll + ingest + clustering
//!   snapshot) to a mid-chain streaming state; the state clone happens in
//!   the untimed setup, so this is the true steady-state per-poll cost
//!   (cloning is O(shards) Arc bumps on the persistent maps, but keeping
//!   it out of the measurement makes the number honest either way).
//! * `window_update_delta` — the clustering snapshot alone on a state
//!   with no pending changes: the floor a no-news poll pays, isolating
//!   snapshot cost (Arc-cached family reuse) from ingest cost.
//! * `recluster_scratch` — the baseline: batch-cluster the same prefix
//!   from scratch, which is what each poll would cost without the
//!   incremental clusterer.
//!
//! `DAAS_SCALE` overrides the world scale (default 1.0 — full paper
//! scale, per-window latency is the headline number).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use daas_cluster::{cluster_prefix, cluster_with, ClusterConfig, OnlineClusterer};
use daas_detector::{build_dataset_with_cache, ClassificationCache, OnlineDetector};
use daas_measure::{LiveMeasure, MeasureConfig, MeasureCtx};
use daas_world::{collection_end, World, WorldConfig};

const WINDOW_BLOCKS: usize = 7_200;
const INACTIVE_SECS: u64 = 30 * 86_400;

fn bench_live_pipeline(c: &mut Criterion) {
    let scale: f64 =
        std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let config = WorldConfig { scale, ..WorldConfig::paper_scale(7) };
    let world = World::build(&config).expect("world builds");
    let snowball = daas_bench::snowball_config();
    let as_of = collection_end();
    let measure_cfg = MeasureConfig::sequential();
    let blocks = world.chain.blocks();
    let txs = world.chain.transactions().len() as u64;

    let mut group = c.benchmark_group("live_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs));

    group.bench_function("batch_total", |b| {
        b.iter(|| {
            let cache = ClassificationCache::new();
            let dataset =
                build_dataset_with_cache(&world.chain, &world.labels, &snowball, &cache);
            let clustering = cluster_with(
                &world.chain,
                &world.labels,
                &dataset,
                &ClusterConfig::sequential(),
            );
            let reports = MeasureCtx::new(&world.chain, &dataset, &world.oracle).reports(
                &world.labels,
                INACTIVE_SECS,
                as_of,
                &measure_cfg,
            );
            (clustering.families.len(), reports.victims.victims)
        })
    });

    group.bench_function("streaming_total", |b| {
        b.iter(|| {
            let cache = Arc::new(ClassificationCache::new());
            let mut detector = OnlineDetector::with_cache(snowball.clone(), Arc::clone(&cache));
            let mut clusterer =
                OnlineClusterer::with_cache(snowball.classifier.clone(), Arc::clone(&cache));
            let mut measure =
                LiveMeasure::with_cache(snowball.classifier.clone(), Arc::clone(&cache));
            let mut start = 0usize;
            while start < blocks.len() {
                let end = (start + WINDOW_BLOCKS).min(blocks.len());
                let last = &blocks[end - 1];
                let watermark = last.first_tx + last.tx_count;
                let events = detector.poll_until(&world.chain, &world.labels, watermark);
                clusterer.ingest(
                    &world.chain,
                    &world.labels,
                    detector.dataset(),
                    &events,
                    watermark,
                );
                clusterer.clustering(&world.labels);
                measure.ingest(&world.chain, &world.oracle, &events);
                start = end;
            }
            let reports = measure.reports(
                &world.chain,
                detector.dataset(),
                &world.oracle,
                &world.labels,
                INACTIVE_SECS,
                as_of,
                &measure_cfg,
            );
            (clusterer.clustering(&world.labels).families.len(), reports.victims.victims)
        })
    });

    // Replay the first half of the windows once; the measured update is
    // the window that follows.
    let half_windows = (blocks.len() / WINDOW_BLOCKS / 2).max(1);
    let mid = (half_windows * WINDOW_BLOCKS).min(blocks.len());
    let next = (mid + WINDOW_BLOCKS).min(blocks.len());
    let mid_mark = blocks[mid - 1].first_tx + blocks[mid - 1].tx_count;
    let next_mark = blocks[next - 1].first_tx + blocks[next - 1].tx_count;
    let window_txs = (next_mark - mid_mark) as u64;

    let cache = Arc::new(ClassificationCache::new());
    let mut detector = OnlineDetector::with_cache(snowball.clone(), Arc::clone(&cache));
    let mut clusterer =
        OnlineClusterer::with_cache(snowball.classifier.clone(), Arc::clone(&cache));
    let mut measure = LiveMeasure::with_cache(snowball.classifier.clone(), Arc::clone(&cache));
    let mut start = 0usize;
    while start < mid {
        let end = (start + WINDOW_BLOCKS).min(mid);
        let last = &blocks[end - 1];
        let watermark = last.first_tx + last.tx_count;
        let events = detector.poll_until(&world.chain, &world.labels, watermark);
        clusterer.ingest(&world.chain, &world.labels, detector.dataset(), &events, watermark);
        clusterer.clustering(&world.labels);
        measure.ingest(&world.chain, &world.oracle, &events);
        start = end;
    }

    group.throughput(Throughput::Elements(window_txs.max(1)));
    group.bench_function("window_update", |b| {
        b.iter_batched(
            || (detector.clone(), clusterer.clone(), measure.clone()),
            |(mut detector, mut clusterer, mut measure)| {
                let events = detector.poll_until(&world.chain, &world.labels, next_mark);
                clusterer.ingest(
                    &world.chain,
                    &world.labels,
                    detector.dataset(),
                    &events,
                    next_mark,
                );
                measure.ingest(&world.chain, &world.oracle, &events);
                clusterer.clustering(&world.labels).families.len()
            },
            BatchSize::LargeInput,
        )
    });

    // Advance the live state through the measured window for the two
    // remaining cases.
    let events = detector.poll_until(&world.chain, &world.labels, next_mark);
    clusterer.ingest(&world.chain, &world.labels, detector.dataset(), &events, next_mark);
    clusterer.clustering(&world.labels);

    // The snapshot floor: nothing changed since the last poll, so the
    // snapshot should be served from the Arc-shared family cache.
    group.bench_function("window_update_delta", |b| {
        b.iter(|| clusterer.clustering(&world.labels).families.len())
    });

    // The naive per-poll baseline: re-cluster the same prefix from
    // scratch (dataset state as of the measured window's end).
    let dataset_at_next = detector.dataset().clone();
    group.bench_function("recluster_scratch", |b| {
        b.iter(|| {
            cluster_prefix(
                &world.chain,
                &world.labels,
                &dataset_at_next,
                next_mark,
                &ClusterConfig::sequential(),
            )
            .families
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_live_pipeline);
criterion_main!(benches);
