//! Criterion: sequential-oracle vs parallel world generation. Tracks
//! the ingestion tentpole: the two-phase planner (parallel per-family /
//! per-chunk event synthesis) plus the sharded, batch-sealed chain
//! store must beat the sequential oracle on multi-core hosts while
//! producing byte-identical worlds
//! (`crates/daas-world/tests/parallel_equivalence.rs`).
//!
//! `DAAS_SCALE` (default 0.4 here — full paper scale takes seconds per
//! iteration) and `DAAS_SHARDS` are honoured so CI can sweep layouts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daas_world::{World, WorldConfig};

fn bench_world_build(c: &mut Criterion) {
    let seed = 42;
    let scale: f64 =
        std::env::var("DAAS_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.4);
    let shards = daas_bench::shard_count();
    let config = WorldConfig { scale, ..WorldConfig::paper_scale(seed) };
    let txs = World::build(&config).expect("world builds").chain.stats().transactions as u64;

    let mut group = c.benchmark_group("world_build");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txs));
    group.bench_function("sequential", |b| {
        b.iter(|| World::build_opts(&config, 1, shards).expect("world builds"))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| World::build_opts(&config, 0, shards).expect("world builds"))
    });
    group.finish();
}

criterion_group!(benches, bench_world_build);
criterion_main!(benches);
