//! Criterion: the cost of the observability layer.
//!
//! Two families of numbers in `BENCH_obs_overhead.json`:
//!
//! * the per-site cost of *disabled* instrumentation — the single
//!   relaxed atomic load every hot-path check pays while the recorder
//!   is off (the "zero-cost-when-off" claim, in nanoseconds);
//! * a real stage (micro-world snowball construction) with the
//!   recorder off vs on, so the end-to-end overhead of recording is a
//!   ratio of two wall clocks rather than a microbenchmark guess.
//!
//! The recorder is process-global: the `_on` benchmarks enable it,
//! drain between samples to keep the span ring from evicting, and
//! disable it again before the `_off` numbers are taken.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use daas_detector::{build_dataset_with_cache, ClassificationCache, SnowballConfig};
use daas_world::{World, WorldConfig};

fn bench_obs_overhead(c: &mut Criterion) {
    let world = World::build(&WorldConfig::micro(7)).expect("world");
    let snowball = SnowballConfig { threads: 1, ..Default::default() };

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);

    // -- Disabled-path site costs. --
    daas_obs::set_enabled(false);
    group.bench_function("disabled_enabled_check", |b| b.iter(|| black_box(daas_obs::enabled())));
    group.bench_function("disabled_span_site", |b| {
        b.iter(|| {
            let _span = daas_obs::span!("bench.noop", i = 1);
        })
    });
    group.bench_function("disabled_counter_site", |b| b.iter(|| daas_obs::add("bench.noop", 1)));
    group.bench_function("disabled_timed_site", |b| {
        b.iter(|| daas_obs::timed("bench.noop_ms", "k", "v", || black_box(1 + 1)))
    });

    // -- Enabled-path site costs (what a recording run pays per site). --
    daas_obs::set_enabled(true);
    group.bench_function("enabled_span_site", |b| {
        b.iter(|| {
            let _span = daas_obs::span!("bench.noop", i = 1);
        })
    });
    group.bench_function("enabled_counter_site", |b| b.iter(|| daas_obs::add("bench.noop", 1)));
    let _ = daas_obs::drain();

    // -- A real stage, recorder off vs on. --
    daas_obs::set_enabled(false);
    group.bench_function("snowball_obs_off", |b| {
        b.iter(|| {
            let cache = ClassificationCache::new();
            build_dataset_with_cache(&world.chain, &world.labels, &snowball, &cache)
        })
    });
    daas_obs::set_enabled(true);
    group.bench_function("snowball_obs_on", |b| {
        b.iter(|| {
            let cache = ClassificationCache::new();
            let dataset = build_dataset_with_cache(&world.chain, &world.labels, &snowball, &cache);
            let _ = daas_obs::drain();
            dataset
        })
    });
    daas_obs::set_enabled(false);
    let _ = daas_obs::drain();

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
