//! Criterion: the §8.2 domain-triage hot path — Levenshtein similarity
//! and full keyword assessment per domain.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ct_watch::{levenshtein, DomainTriage};

fn bench_levenshtein(c: &mut Criterion) {
    c.bench_function("levenshtein_pair", |b| {
        b.iter(|| levenshtein("cla1m-rewards", "claim"))
    });

    let triage = DomainTriage::default();
    let domains: Vec<String> = (0..1_000)
        .map(|i| match i % 4 {
            0 => format!("claim-pepe-{i}.com"),
            1 => format!("weather-report-{i}.net"),
            2 => format!("a1rdrop-zk-{i}.xyz"),
            _ => format!("johns-bakery-{i}.org"),
        })
        .collect();
    let mut group = c.benchmark_group("triage");
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("assess_1k_domains", |b| {
        b.iter(|| domains.iter().filter(|d| triage.assess(d).is_some()).count())
    });
    group.finish();
}

criterion_group!(benches, bench_levenshtein);
criterion_main!(benches);
