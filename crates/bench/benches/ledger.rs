//! Criterion: ledger substrate throughput — world generation and the
//! account-history scans the snowball sampler leans on.

use criterion::{criterion_group, criterion_main, Criterion};
use daas_world::{World, WorldConfig};

fn bench_ledger(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger");
    group.sample_size(10);
    group.bench_function("build_world_tiny", |b| {
        b.iter(|| World::build(&WorldConfig::tiny(7)).expect("world"))
    });
    group.bench_function("build_world_small", |b| {
        b.iter(|| World::build(&WorldConfig::small(7)).expect("world"))
    });
    group.finish();

    let world = World::build(&WorldConfig::small(7)).expect("world");
    let contracts = world.truth.all_contracts();
    c.bench_function("history_scan_all_contracts", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &a in &contracts {
                total += world.chain.txs_of(a).len();
            }
            total
        })
    });
}

criterion_group!(benches, bench_ledger);
criterion_main!(benches);
