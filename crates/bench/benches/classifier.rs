//! Criterion: profit-sharing classifier throughput over a realistic
//! transaction mix (the inner loop of the whole pipeline).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use daas_detector::{classify_tx, ClassifierConfig};
use daas_world::{World, WorldConfig};

fn bench_classifier(c: &mut Criterion) {
    let world = World::build(&WorldConfig::small(7)).expect("world");
    let txs = world.chain.transactions();
    let cfg = ClassifierConfig::default();

    let mut group = c.benchmark_group("classifier");
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.bench_function("classify_full_chain", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for tx in txs {
                if classify_tx(tx, &cfg).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    // Positive-only path (worst case: full ratio matching every time).
    let positives: Vec<_> = txs.iter().filter(|t| classify_tx(*t, &cfg).is_some()).collect();
    group.throughput(Throughput::Elements(positives.len() as u64));
    group.bench_function("classify_positives", |b| {
        b.iter(|| positives.iter().filter(|t| classify_tx(**t, &cfg).is_some()).count())
    });

    // Relaxed two-transfer mode (ablation A5 cost).
    let relaxed = ClassifierConfig { strict_two_transfers: false, ..Default::default() };
    group.throughput(Throughput::Elements(txs.len() as u64));
    group.bench_function("classify_relaxed", |b| {
        b.iter_batched(
            || (),
            |_| txs.iter().filter(|t| classify_tx(*t, &relaxed).is_some()).count(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
