//! Measurement shape-checks against a generated world: the §6 statistics
//! must reproduce the paper's *shape* at reduced scale (exact-magnitude
//! comparisons run at paper scale in the bench harnesses).

use std::sync::OnceLock;

use daas_cluster::cluster;
use daas_detector::{build_dataset, Dataset, SnowballConfig};
use daas_measure::{dominant_share, family_table, ratio_histogram, MeasureCtx};
use daas_world::{collection_end, World, WorldConfig};

struct Fix {
    world: World,
    dataset: Dataset,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let world = World::build(&WorldConfig::small(11)).expect("world");
        let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
        Fix { world, dataset }
    })
}

fn ctx() -> MeasureCtx<'static> {
    let f = fix();
    MeasureCtx::new(&f.world.chain, &f.dataset, &f.world.oracle)
}

#[test]
fn victim_losses_match_fig6_shape() {
    let report = ctx().victim_report();
    // Paper: 50.9% under $100, 83.5% under $1k.
    let under_100 = report.loss_buckets[0].2;
    assert!((under_100 - 50.9).abs() < 6.0, "under-$100 {under_100}%");
    assert!((report.below_1k_pct - 83.5).abs() < 5.0, "under-$1k {}", report.below_1k_pct);
    // Buckets sum to 100%.
    let sum: f64 = report.loss_buckets.iter().map(|(_, _, p)| p).sum();
    assert!((sum - 100.0).abs() < 1e-6);
}

#[test]
fn total_losses_scale_to_135m() {
    // $134.9M at scale 0.05 → ~$6.75M.
    let report = ctx().victim_report();
    let ratio = report.total_usd / (134.9e6 * 0.05);
    assert!((0.85..1.15).contains(&ratio), "total {}", report.total_usd);
}

#[test]
fn victim_rate_scales() {
    // Paper: >100 victims/day at full scale → ~5/day at 5%.
    let report = ctx().victim_report();
    assert!(report.victims_per_day > 3.0, "rate {}", report.victims_per_day);
}

#[test]
fn repeat_victims_match_section_6_1() {
    let report = ctx().repeat_victim_report();
    let victims = ctx().victim_report().victims;
    let repeat_frac = report.repeat_victims as f64 / victims as f64;
    // Paper: 8,856 / 76,582 ≈ 11.6%.
    assert!((repeat_frac - 0.116).abs() < 0.03, "repeat fraction {repeat_frac}");
    // 78.1% simultaneous, 28.6% unrevoked.
    assert!((report.simultaneous_pct - 78.1).abs() < 8.0, "sim {}", report.simultaneous_pct);
    assert!((report.unrevoked_pct - 28.6).abs() < 8.0, "unrevoked {}", report.unrevoked_pct);
}

#[test]
fn operator_concentration_shape() {
    let report = ctx().operator_report();
    // Paper: top 25% of operators hold 75.7% of $23.1M. Small-scale
    // worlds have very few operators, so allow a wide band.
    assert!(report.operators > 0);
    assert!(
        report.top_quartile_share_pct > 50.0,
        "top-quartile share {}",
        report.top_quartile_share_pct
    );
    // Operator take over total: ratio mix gives ~17-18%.
    let victims_total = ctx().victim_report().total_usd;
    let share = report.total_usd / victims_total;
    assert!((0.14..0.24).contains(&share), "operator take {share}");
}

#[test]
fn operator_fund_flows_exist_with_multi_operator_families() {
    // At 5% scale every family collapses to one operator, so §6.2's
    // inter-operator fund flows need a slightly larger world.
    let cfg = WorldConfig { scale: 0.15, ..WorldConfig::paper_scale(5) };
    let world = World::build(&cfg).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let ctx = MeasureCtx::new(&world.chain, &dataset, &world.oracle);
    let report = ctx.operator_report();
    assert!(report.operators > 9, "expected multi-operator families");
    assert!(report.linked_pairs > 0, "no operator fund flows found");
}

#[test]
fn operator_lifecycles_span_days_to_hundreds() {
    let lc = ctx().operator_lifecycles(30 * 86_400, collection_end());
    assert!(lc.inactive_operators > 0);
    assert!(lc.max_days > 100.0, "max lifecycle {}", lc.max_days);
    assert!(lc.min_days < lc.max_days);
    assert!(lc.lifecycle_days.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn affiliate_report_matches_fig7_shape() {
    let report = ctx().affiliate_report();
    // Paper: 50.2% above $1k, 22.0% above $10k.
    assert!((report.above_1k_pct - 50.2).abs() < 12.0, "above 1k {}", report.above_1k_pct);
    assert!((report.above_10k_pct - 22.0).abs() < 10.0, "above 10k {}", report.above_10k_pct);
    // Affiliates hold the bulk of profits (~83%).
    let victims_total = ctx().victim_report().total_usd;
    let share = report.total_usd / victims_total;
    assert!((0.76..0.86).contains(&share), "affiliate take {share}");
    // Heavy tail: the top 7.4% hold well over a third.
    assert!(report.top_7_4_pct_share > 35.0, "tail {}", report.top_7_4_pct_share);
    // Few affiliates reach many victims (paper: 26.1% over 10 victims).
    assert!((report.over_10_victims_pct - 26.1).abs() < 20.0);
}

#[test]
fn ratio_histogram_matches_4_3() {
    let c = ctx();
    let rows = ratio_histogram(&c);
    assert_eq!(rows[0].bps, 2000, "dominant ratio should be 20%");
    assert!((rows[0].share_pct - 46.0).abs() < 6.0, "20%% share {}", rows[0].share_pct);
    let r15 = rows.iter().find(|r| r.bps == 1500).expect("15% present");
    assert!((r15.share_pct - 19.3).abs() < 5.0);
    let r175 = rows.iter().find(|r| r.bps == 1750).expect("17.5% present");
    assert!((r175.share_pct - 9.2).abs() < 4.0);
    // All nine ratios observed.
    assert_eq!(rows.len(), 9, "{rows:?}");
    let total: f64 = rows.iter().map(|r| r.share_pct).sum();
    assert!((total - 100.0).abs() < 1e-6);
}

#[test]
fn family_table_reproduces_table2() {
    let f = fix();
    let c = ctx();
    let clustering = cluster(&f.world.chain, &f.world.labels, &f.dataset);
    let rows = family_table(&c, &clustering, collection_end());
    assert_eq!(rows.len(), 9);
    // Ordered by victims: Angel first, Inferno second (paper's order).
    assert_eq!(rows[0].name, "Angel Drainer");
    assert_eq!(rows[1].name, "Inferno Drainer");
    // Dominant three hold ~93.9% of profits.
    let share = dominant_share(&rows, 3);
    assert!((share - 93.9).abs() < 3.0, "dominant share {share}");
    // Families active at the window end show "Now".
    let angel = rows.iter().find(|r| r.name == "Angel Drainer").unwrap();
    assert_eq!(angel.active_end, "Now");
    assert_eq!(angel.active_start, "2023-04");
    // Retired families show a month.
    let venom = rows.iter().find(|r| r.name == "Venom Drainer").unwrap();
    assert_ne!(venom.active_end, "Now");
}

#[test]
fn prewarmed_features_change_no_report() {
    let cold = ctx();
    let cold_ops = cold.operator_lifecycles(30 * 86_400, collection_end());
    let cold_repeat = cold.repeat_victim_report();

    let warm = ctx();
    warm.prewarm_features(4);
    assert!(!warm.features().is_empty(), "prewarm must fill the memo");
    let warm_ops = warm.operator_lifecycles(30 * 86_400, collection_end());
    let warm_repeat = warm.repeat_victim_report();

    assert_eq!(cold_ops.inactive_operators, warm_ops.inactive_operators);
    assert_eq!(cold_ops.lifecycle_days, warm_ops.lifecycle_days);
    assert_eq!(cold_repeat.repeat_victims, warm_repeat.repeat_victims);
    assert_eq!(cold_repeat.simultaneous_pct, warm_repeat.simultaneous_pct);
    assert_eq!(cold_repeat.unrevoked_pct, warm_repeat.unrevoked_pct);
}

#[test]
fn measured_counts_match_dataset() {
    let f = fix();
    let c = ctx();
    assert_eq!(c.incidents().len(), f.dataset.observations.len());
    let ops = c.profit_per_operator();
    assert!(ops.len() <= f.dataset.operators.len());
    for op in ops.keys() {
        assert!(f.dataset.operators.contains(op));
    }
}
