//! The sequential-oracle contract for the §6 report bundle:
//! [`MeasureCtx::reports`] must produce byte-identical serialized
//! reports at every thread count, and the bundle must equal the reports
//! computed one-by-one through the original per-report entry points.

use daas_detector::{build_dataset, SnowballConfig};
use daas_measure::{ratio_histogram, MeasureConfig, MeasureCtx, MeasureReports};
use daas_world::{collection_end, World, WorldConfig};

const INACTIVE_SECS: u64 = 30 * 86_400;

struct Fix {
    world: World,
}

fn fix(seed: u64) -> Fix {
    let world = World::build(&WorldConfig::tiny(seed)).expect("world builds");
    Fix { world }
}

fn json(reports: &MeasureReports) -> String {
    serde_json::to_string(reports).expect("reports serialise")
}

fn bundle(f: &Fix, threads: usize) -> String {
    let dataset = build_dataset(&f.world.chain, &f.world.labels, &SnowballConfig::default());
    let ctx = MeasureCtx::new(&f.world.chain, &dataset, &f.world.oracle);
    let cfg = MeasureConfig { threads };
    json(&ctx.reports(&f.world.labels, INACTIVE_SECS, collection_end(), &cfg))
}

#[test]
fn thread_counts_agree_on_tiny_worlds() {
    for seed in [7u64, 31, 99] {
        let f = fix(seed);
        let oracle = bundle(&f, 1);
        for threads in [2usize, 3, 4, 8, 0] {
            assert_eq!(
                bundle(&f, threads),
                oracle,
                "seed {seed}: report bundle diverged from the sequential oracle at threads={threads}"
            );
        }
    }
}

#[test]
fn repeat_parallel_runs_are_stable() {
    let f = fix(13);
    let first = bundle(&f, 0);
    for _ in 0..2 {
        assert_eq!(bundle(&f, 0), first, "parallel report bundle drifted across runs");
    }
}

#[test]
fn bundle_matches_per_report_entry_points() {
    // The fan-out is a scheduler, not a reimplementation: every slot of
    // the bundle must serialise exactly like the standalone report call
    // it wraps.
    let f = fix(7);
    let dataset = build_dataset(&f.world.chain, &f.world.labels, &SnowballConfig::default());
    let ctx = MeasureCtx::new(&f.world.chain, &dataset, &f.world.oracle);
    let reports =
        ctx.reports(&f.world.labels, INACTIVE_SECS, collection_end(), &MeasureConfig { threads: 0 });

    fn j<T: serde::Serialize>(v: &T) -> String {
        serde_json::to_string(v).expect("report serialises")
    }
    assert_eq!(j(&reports.victims), j(&ctx.victim_report()), "victim report diverged");
    assert_eq!(
        j(&reports.repeat_victims),
        j(&ctx.repeat_victim_report()),
        "repeat-victim report diverged"
    );
    assert_eq!(j(&reports.operators), j(&ctx.operator_report()), "operator report diverged");
    assert_eq!(
        j(&reports.operator_lifecycles),
        j(&ctx.operator_lifecycles(INACTIVE_SECS, collection_end())),
        "operator lifecycles diverged"
    );
    assert_eq!(j(&reports.affiliates), j(&ctx.affiliate_report()), "affiliate report diverged");
    let operators: Vec<_> = ctx.dataset.operators.iter().copied().collect();
    let affiliates: Vec<_> = ctx.dataset.affiliates.iter().copied().collect();
    assert_eq!(
        j(&reports.associations),
        j(&ctx.reward_transfers(&operators, &affiliates)),
        "associations diverged"
    );
    assert_eq!(j(&reports.ratios), j(&ratio_histogram(&ctx)), "ratio histogram diverged");
    assert_eq!(j(&reports.timeline), j(&ctx.monthly_series()), "timeline diverged");
    assert_eq!(
        j(&reports.laundering),
        j(&ctx.laundering_report(&f.world.labels)),
        "laundering report diverged"
    );
}

/// Full paper-scale equivalence — minutes of CPU, so opt-in:
/// `cargo test -p daas-measure --test parallel_equivalence --release -- --ignored`.
#[test]
#[ignore = "paper-scale world; run via ci.sh or -- --ignored"]
fn thread_counts_agree_at_paper_scale() {
    let f = Fix { world: World::build(&WorldConfig::paper_scale(42)).expect("world builds") };
    let oracle = bundle(&f, 1);
    assert_eq!(bundle(&f, 0), oracle, "parallel report bundle diverged at paper scale");
}
