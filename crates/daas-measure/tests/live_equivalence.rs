//! The streaming measurement accumulators must agree with the batch
//! context: counter-valued views exactly at every poll boundary, the
//! canonical report bundle byte-identically at the end.

use daas_chain::TxId;
use daas_detector::{OnlineDetector, SnowballConfig};
use daas_measure::{ratio_histogram, LiveMeasure, MeasureConfig, MeasureCtx};
use daas_world::{collection_end, World, WorldConfig};

fn replay(config: &WorldConfig, steps: &[u32], check_boundaries: bool) {
    let world = World::build(config).expect("world");
    let snowball = SnowballConfig::default();
    let mut detector = OnlineDetector::new(snowball.clone());
    let mut live = LiveMeasure::new(snowball.classifier.clone());
    let total = world.chain.transactions().len() as TxId;

    let mut at: TxId = 0;
    let mut step_iter = steps.iter().cycle();
    while at < total {
        at = (at + step_iter.next().expect("cycled")).min(total);
        let events = detector.poll_until(&world.chain, &world.labels, at);
        live.ingest(&world.chain, &world.oracle, &events);
        if check_boundaries {
            // Counter-valued views are exact at every boundary.
            let snapshot = detector.dataset().clone();
            let ctx = MeasureCtx::new(&world.chain, &snapshot, &world.oracle);
            assert_eq!(live.incident_count(), ctx.incidents().len(), "at tx {at}");
            assert_eq!(live.victim_count(), ctx.victims().len(), "at tx {at}");
            assert_eq!(live.ratio_histogram(), ratio_histogram(&ctx), "at tx {at}");
        }
    }

    // The canonical bundle is byte-identical to the batch bundle.
    let dataset = detector.dataset();
    let cfg = MeasureConfig::sequential();
    let batch = MeasureCtx::new(&world.chain, dataset, &world.oracle).reports(
        &world.labels,
        30 * 86_400,
        collection_end(),
        &cfg,
    );
    let streamed = live.reports(
        &world.chain,
        dataset,
        &world.oracle,
        &world.labels,
        30 * 86_400,
        collection_end(),
        &cfg,
    );
    assert_eq!(
        serde_json::to_string(&batch).unwrap(),
        serde_json::to_string(&streamed).unwrap(),
        "report bundle diverged"
    );
}

#[test]
fn micro_world_every_boundary_exact() {
    replay(&WorldConfig::micro(81), &[7, 1, 13], true);
}

#[test]
fn micro_world_window_1_every_boundary() {
    replay(&WorldConfig::micro(82), &[1], true);
}

#[test]
fn micro_world_single_poll() {
    replay(&WorldConfig::micro(83), &[u32::MAX], true);
}

#[test]
fn tiny_world_final_bundle_matches() {
    // Boundary re-contexting is O(n) per poll; at this scale only the
    // final byte-identity is asserted.
    replay(&WorldConfig::tiny(84), &[97, 3, 411, 64], false);
}

#[test]
#[ignore = "small world; run via ci.sh or -- --ignored"]
fn small_world_final_bundle_matches() {
    replay(&WorldConfig::small(85), &[613, 64, 2048], false);
}
