//! Victim-side measurements: Figure 6 and the §6.1 findings.

use std::collections::HashMap;

use daas_chain::days_between;
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;

/// Figure 6 buckets: `(label, low, high)` in USD.
pub const VICTIM_LOSS_BUCKETS: [(&str, f64, f64); 4] = [
    ("less than $100", 0.0, 100.0),
    ("between $100 and $1,000", 100.0, 1_000.0),
    ("between $1,000 and $5,000", 1_000.0, 5_000.0),
    ("more than $5,000", 5_000.0, f64::INFINITY),
];

/// The victim-side report (§6.1 / Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VictimReport {
    /// Distinct victim accounts.
    pub victims: usize,
    /// Figure 6 rows: `(label, count, percent)`.
    pub loss_buckets: Vec<(String, usize, f64)>,
    /// Share of victims losing under $1,000 (paper: 83.5%).
    pub below_1k_pct: f64,
    /// Mean distinct victims per day over the observed span (paper:
    /// "exceeding 100 per day").
    pub victims_per_day: f64,
    /// Total losses, USD.
    pub total_usd: f64,
}

/// Builds the Figure 6 / §6.1 report from per-victim losses and the
/// observed span — shared by the batch context and the streaming
/// accumulator's running loss map.
pub(crate) fn victim_report_from(
    losses: &std::collections::BTreeMap<Address, f64>,
    span_days: u64,
) -> VictimReport {
    let victims = losses.len();
    let mut counts = [0usize; 4];
    for &usd in losses.values() {
        let idx = VICTIM_LOSS_BUCKETS
            .iter()
            .position(|(_, lo, hi)| usd >= *lo && usd < *hi)
            .unwrap_or(3);
        counts[idx] += 1;
    }
    let pct = |n: usize| 100.0 * n as f64 / victims.max(1) as f64;
    let loss_buckets = VICTIM_LOSS_BUCKETS
        .iter()
        .zip(counts)
        .map(|((label, _, _), n)| ((*label).to_owned(), n, pct(n)))
        .collect();
    VictimReport {
        victims,
        loss_buckets,
        below_1k_pct: pct(counts[0] + counts[1]),
        victims_per_day: victims as f64 / span_days.max(1) as f64,
        total_usd: losses.values().sum(),
    }
}

/// The observed span in days for a `(first, last)` timestamp fold
/// (`u64::MAX` first means "no incidents"; empty spans count as one day).
pub(crate) fn span_days(first: u64, last: u64) -> u64 {
    if first == u64::MAX {
        1
    } else {
        days_between(first, last).max(1)
    }
}

impl<'a> MeasureCtx<'a> {
    /// Builds the Figure 6 / §6.1 victim report.
    pub fn victim_report(&self) -> VictimReport {
        let (first, last) = self
            .incidents()
            .iter()
            .fold((u64::MAX, 0u64), |(lo, hi), i| (lo.min(i.timestamp), hi.max(i.timestamp)));
        victim_report_from(&self.loss_per_victim(), span_days(first, last))
    }

    /// The §6.1 repeat-victim study.
    pub fn repeat_victim_report(&self) -> RepeatVictimReport {
        let mut txs_per_victim: HashMap<Address, Vec<(u64, u32)>> = HashMap::new();
        for inc in self.incidents() {
            txs_per_victim.entry(inc.victim).or_default().push((inc.timestamp, inc.tx));
        }
        let repeats: Vec<(&Address, &Vec<(u64, u32)>)> =
            txs_per_victim.iter().filter(|(_, txs)| txs.len() > 1).collect();

        // (a) simultaneous multi-sign: ≥ 2 profit-sharing txs in the same
        // block timestamp.
        let simultaneous = repeats
            .iter()
            .filter(|(_, txs)| {
                let mut ts: Vec<u64> = txs.iter().map(|(t, _)| *t).collect();
                ts.sort_unstable();
                ts.windows(2).any(|w| w[0] == w[1])
            })
            .count();

        // (b) unrevoked approvals: the victim still has an active
        // ERC-20 allowance or NFT operator approval toward a dataset
        // contract at the end of the observation window. The feature
        // cache memoises the approval-history replay per victim.
        let unrevoked = repeats
            .iter()
            .filter(|(victim, _)| {
                !self.features().features(**victim).live_approval_spenders.is_empty()
            })
            .count();

        RepeatVictimReport {
            repeat_victims: repeats.len(),
            simultaneous_pct: 100.0 * simultaneous as f64 / repeats.len().max(1) as f64,
            unrevoked_pct: 100.0 * unrevoked as f64 / repeats.len().max(1) as f64,
        }
    }

}

/// The §6.1 repeat-victim findings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RepeatVictimReport {
    /// Victims phished more than once (paper: 8,856).
    pub repeat_victims: usize,
    /// Share who signed multiple phishing txs simultaneously (paper:
    /// 78.1%).
    pub simultaneous_pct: f64,
    /// Share who never revoked approvals to profit-sharing contracts
    /// (paper: 28.6%).
    pub unrevoked_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_line() {
        // Boundary semantics: lows inclusive, highs exclusive; the last
        // bucket is open-ended.
        for (usd, expect) in [(0.0, 0), (99.99, 0), (100.0, 1), (999.0, 1), (1_000.0, 2), (5_000.0, 3), (1e9, 3)] {
            let idx = VICTIM_LOSS_BUCKETS
                .iter()
                .position(|(_, lo, hi)| usd >= *lo && usd < *hi)
                .unwrap_or(3);
            assert_eq!(idx, expect, "usd {usd}");
        }
    }
}
