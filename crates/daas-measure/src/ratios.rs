//! The §4.3 profit-sharing ratio histogram.

use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;

/// One ratio row: operator share and its transaction share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioRow {
    /// Operator share in basis points.
    pub bps: u32,
    /// Transactions split at this ratio.
    pub count: usize,
    /// Share of all profit-sharing transactions, percent.
    pub share_pct: f64,
}

/// Histogram of observed operator ratios over all profit-sharing
/// transactions, sorted by share descending (paper: 20% → 46.0%,
/// 15% → 19.3%, 17.5% → 9.2%).
pub fn ratio_histogram(ctx: &MeasureCtx<'_>) -> Vec<RatioRow> {
    let mut counts: std::collections::BTreeMap<u32, usize> = Default::default();
    for inc in ctx.incidents() {
        *counts.entry(inc.ratio_bps).or_default() += 1;
    }
    ratio_rows(&counts)
}

/// Builds the histogram rows from per-ratio counts — shared by the batch
/// path above and the streaming accumulator's running counters (counts
/// are integral, so both paths are exactly identical).
pub(crate) fn ratio_rows(counts: &std::collections::BTreeMap<u32, usize>) -> Vec<RatioRow> {
    let total: usize = counts.values().sum();
    let mut rows: Vec<RatioRow> = counts
        .iter()
        .map(|(&bps, &count)| RatioRow {
            bps,
            count,
            share_pct: 100.0 * count as f64 / total.max(1) as f64,
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.bps.cmp(&b.bps)));
    rows
}
