//! Post-theft fund-flow analysis (§8.1): once reported, DaaS accounts
//! cannot cash out at centralised exchanges, so they launder through
//! mixing services and bridges. This module measures where operator and
//! affiliate profits actually go.

use std::collections::HashMap;

use daas_chain::{Asset, ContractKind};
use eth_types::{Address, U256};
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;

/// Destination classes for DaaS outflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SinkKind {
    /// A mixing/bridging service (Tornado-style).
    Mixer,
    /// A labeled exchange hot wallet.
    Exchange,
    /// Another DaaS account in the dataset (internal shuffling).
    InternalDaas,
    /// Anything else (unattributed EOAs and contracts).
    Other,
}

/// The §8.1 laundering report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunderingReport {
    /// Outflow wei per sink class, from operator accounts.
    pub operator_outflows: HashMap<SinkKind, U256>,
    /// Share (percent of wei) of operator outflows reaching mixers.
    pub operator_mixer_pct: f64,
    /// Share of operator outflows reaching labeled exchanges.
    pub operator_exchange_pct: f64,
    /// Distinct operator accounts that touched a mixer.
    pub operators_using_mixers: usize,
}

impl<'a> MeasureCtx<'a> {
    /// Classifies every ETH outflow from dataset operator accounts by
    /// destination. `exchange_labels` decides what counts as a CEX (the
    /// paper's point: *labeled* accounts cannot cash out there, hence
    /// the mixer share).
    pub fn laundering_report(
        &self,
        labels: &daas_chain::LabelStore,
    ) -> LaunderingReport {
        let mut outflows: HashMap<SinkKind, U256> = HashMap::new();
        let mut mixer_users = std::collections::HashSet::new();

        for &op in self.dataset.operators.iter() {
            for &txid in self.chain.txs_of(op) {
                let tx = self.chain.tx(txid);
                for t in tx.transfers() {
                    if t.from != op || t.asset != Asset::Eth || t.to == op {
                        continue;
                    }
                    let sink = self.classify_sink(t.to, labels);
                    if sink == SinkKind::Mixer {
                        mixer_users.insert(op);
                    }
                    let entry = outflows.entry(sink).or_insert(U256::ZERO);
                    *entry = entry.saturating_add(t.amount);
                }
            }
        }

        let total: f64 = outflows.values().map(|v| v.to_f64_lossy()).sum();
        let pct = |kind: SinkKind| {
            if total <= 0.0 {
                0.0
            } else {
                100.0 * outflows.get(&kind).map(|v| v.to_f64_lossy()).unwrap_or(0.0) / total
            }
        };
        LaunderingReport {
            operator_mixer_pct: pct(SinkKind::Mixer),
            operator_exchange_pct: pct(SinkKind::Exchange),
            operators_using_mixers: mixer_users.len(),
            operator_outflows: outflows,
        }
    }

    /// Maximum value (wei) routable from `source` to `sink` through the
    /// ETH transfers of dataset accounts — the DenseFlow-style trace of
    /// how much of a contract's takings can reach a mixer through
    /// intermediate hops, not just directly.
    pub fn laundering_max_flow(&self, source: Address, sink: Address) -> u128 {
        let mut graph = txgraph::ValueGraph::new();
        let mut accounts: Vec<Address> = self.dataset.contracts.iter().copied().collect();
        accounts.extend(self.dataset.operators.iter().copied());
        accounts.extend(self.dataset.affiliates.iter().copied());
        let mut seen_tx = std::collections::HashSet::new();
        for acc in accounts {
            for &txid in self.chain.txs_of(acc) {
                if !seen_tx.insert(txid) {
                    continue;
                }
                let tx = self.chain.tx(txid);
                for t in tx.transfers() {
                    if t.asset == Asset::Eth {
                        graph.add_transfer(t.from, t.to, t.amount.low_u128());
                    }
                }
            }
        }
        graph.max_flow(source, sink)
    }

    fn classify_sink(&self, to: Address, labels: &daas_chain::LabelStore) -> SinkKind {
        if self.dataset.contains(to) {
            return SinkKind::InternalDaas;
        }
        if let Some(daas_chain::AccountKind::Contract(kind)) = self.chain.account_kind(to) {
            if matches!(kind, ContractKind::Mixer) {
                return SinkKind::Mixer;
            }
        }
        let is_exchange = labels
            .labels_of(to)
            .iter()
            .any(|l| l.category == daas_chain::LabelCategory::Benign);
        if is_exchange {
            return SinkKind::Exchange;
        }
        SinkKind::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{Chain, ContractKind, EntryStyle, LabelStore, ProfitSharingSpec};
    use daas_detector::{classify_tx, Dataset};
    use daas_pricing::Oracle;
    use eth_types::units::ether;

    #[test]
    fn outflows_classified_by_destination() {
        let mut chain = Chain::new();
        let mut labels = LabelStore::new();
        let op = chain.create_eoa_funded(b"l/op", ether(100)).unwrap();
        let aff = chain.create_eoa(b"l/aff").unwrap();
        let victim = chain.create_eoa_funded(b"l/v", ether(50)).unwrap();
        let deployer = chain.create_eoa_funded(b"l/d", ether(1)).unwrap();
        let mixer = chain.deploy_contract(deployer, ContractKind::Mixer).unwrap();
        let cex = chain.create_eoa(b"l/cex").unwrap();
        labels.add(daas_chain::Label {
            address: cex,
            source: daas_chain::LabelSource::Etherscan,
            category: daas_chain::LabelCategory::Benign,
            text: "Binance 14".into(),
        });
        let friend = chain.create_eoa(b"l/friend").unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();

        let mut dataset = Dataset::default();
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract, ether(10), aff).unwrap();
        dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());

        // Operator outflows: 60 to mixer, 20 to CEX, 5 to a friend,
        // 10 to the affiliate (internal).
        chain.advance(12);
        chain.transfer_eth(op, mixer, ether(60)).unwrap();
        chain.transfer_eth(op, cex, ether(20)).unwrap();
        chain.transfer_eth(op, friend, ether(5)).unwrap();
        chain.transfer_eth(op, aff, ether(10)).unwrap();

        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &dataset, &oracle);
        let report = ctx.laundering_report(&labels);
        assert_eq!(report.operator_outflows[&SinkKind::Mixer], ether(60));
        assert_eq!(report.operator_outflows[&SinkKind::Exchange], ether(20));
        assert_eq!(report.operator_outflows[&SinkKind::Other], ether(5));
        assert_eq!(report.operator_outflows[&SinkKind::InternalDaas], ether(10));
        assert!((report.operator_mixer_pct - 60.0 / 95.0 * 100.0).abs() < 0.1);
        assert!((report.operator_exchange_pct - 20.0 / 95.0 * 100.0).abs() < 0.1);
        assert_eq!(report.operators_using_mixers, 1);
    }

    #[test]
    fn max_flow_traces_through_intermediaries() {
        // victim → contract (split to op+aff) … op → mixer: the flow
        // from the CONTRACT to the mixer goes through the operator hop.
        let (chain, ds, mixer, op, contract) = {
            let mut chain = Chain::new();
            let op = chain.create_eoa_funded(b"f/op", ether(1)).unwrap();
            let aff = chain.create_eoa(b"f/aff").unwrap();
            let victim = chain.create_eoa_funded(b"f/v", ether(50)).unwrap();
            let deployer = chain.create_eoa_funded(b"f/d", ether(1)).unwrap();
            let mixer = chain.deploy_contract(deployer, ContractKind::Mixer).unwrap();
            let contract = chain
                .deploy_contract(
                    op,
                    ContractKind::ProfitSharing(ProfitSharingSpec {
                        operator: op,
                        operator_bps: 2000,
                        entry: EntryStyle::PayableFallback,
                    }),
                )
                .unwrap();
            let mut ds = Dataset::default();
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, ether(10), aff).unwrap();
            ds.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
            chain.advance(12);
            chain.transfer_eth(op, mixer, ether(2)).unwrap();
            (chain, ds, mixer, op, contract)
        };
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &ds, &oracle);
        // Operator received 2 ETH of the split and sent 2 to the mixer.
        assert_eq!(ctx.laundering_max_flow(op, mixer), ether(2).low_u128());
        // From the contract, the 2 ETH reach the mixer via the operator.
        assert_eq!(ctx.laundering_max_flow(contract, mixer), ether(2).low_u128());
        // Nothing flows backwards.
        assert_eq!(ctx.laundering_max_flow(mixer, contract), 0);
    }

    #[test]
    fn empty_dataset_reports_zero() {
        let chain = Chain::new();
        let labels = LabelStore::new();
        let dataset = Dataset::default();
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &dataset, &oracle);
        let report = ctx.laundering_report(&labels);
        assert_eq!(report.operator_mixer_pct, 0.0);
        assert!(report.operator_outflows.is_empty());
    }
}
