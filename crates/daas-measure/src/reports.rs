//! The §6 report bundle: every independent measurement report computed
//! in one pass, optionally fanned across a worker pool.
//!
//! The reports — victims, repeat victims, operators, lifecycles,
//! affiliates, associations, ratios, timeline, laundering — all read the
//! same immutable [`MeasureCtx`] and never each other, so they are
//! embarrassingly parallel. With `threads > 1` the bundle prewarms the
//! shared feature memo and then distributes the report tasks across the
//! pool; each task is a pure function of the context, so the bundle is
//! byte-identical for every thread count (`threads == 1` is the
//! sequential oracle the equivalence suite diffs against).
//!
//! This bundle is the *single* implementation of every report: the
//! streaming path (`LiveMeasure::reports`) materialises a context from
//! its running incident set and calls the same nine tasks, so batch and
//! live never fork per-report logic.

use daas_chain::{LabelStore, Timestamp};
use eth_types::Address;

use crate::affiliates::AffiliateReport;
use crate::incidents::MeasureCtx;
use crate::laundering::LaunderingReport;
use crate::management::RewardReport;
use crate::operators::{OperatorLifecycles, OperatorReport};
use crate::ratios::{ratio_histogram, RatioRow};
use crate::timeline::MonthRow;
use crate::victims::{RepeatVictimReport, VictimReport};

/// Parallelism knob for the report bundle. `threads == 0` uses every
/// core; `threads == 1` is the sequential oracle the equivalence suite
/// diffs against. The thread count is a schedule, never data: the
/// bundle is byte-identical at every setting.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Worker threads for the report fan-out (0 = all cores).
    pub threads: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig { threads: 0 }
    }
}

impl MeasureConfig {
    /// The sequential oracle configuration.
    pub fn sequential() -> Self {
        MeasureConfig { threads: 1 }
    }

    /// Resolves `threads == 0` to the host's available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

/// Every independent §6 report, bundled. Construction order (and the
/// merged result) is fixed regardless of how the tasks are scheduled.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MeasureReports {
    /// Figure 6: victim losses.
    pub victims: VictimReport,
    /// §6.1: repeat-victim study.
    pub repeat_victims: RepeatVictimReport,
    /// §6.2: operator profits and concentration.
    pub operators: OperatorReport,
    /// §6.2: operator activity lifecycles.
    pub operator_lifecycles: OperatorLifecycles,
    /// Figure 7 / §6.3: affiliate profits and associations.
    pub affiliates: AffiliateReport,
    /// §7.2: operator→affiliate reward associations across the dataset.
    pub associations: RewardReport,
    /// §4.3: the profit-sharing ratio histogram.
    pub ratios: Vec<RatioRow>,
    /// Monthly activity series.
    pub timeline: Vec<MonthRow>,
    /// §8.1: where operator funds exit.
    pub laundering: LaunderingReport,
}

/// One report task's result. The enum exists so heterogeneous report
/// closures can ride a single worker queue; [`assemble`] maps the slots
/// back to bundle fields by variant, independent of completion order.
enum Slot {
    Victims(VictimReport),
    RepeatVictims(RepeatVictimReport),
    Operators(OperatorReport),
    Lifecycles(OperatorLifecycles),
    Affiliates(AffiliateReport),
    Associations(RewardReport),
    Ratios(Vec<RatioRow>),
    Timeline(Vec<MonthRow>),
    Laundering(LaunderingReport),
}

impl<'a> MeasureCtx<'a> {
    /// Computes the full §6 report bundle. With `cfg.threads > 1` the
    /// shared feature memo is prewarmed and the independent reports fan
    /// out across the pool; results are merged in a fixed task order, so
    /// the bundle is identical to the sequential (`threads == 1`) run.
    ///
    /// `inactive_secs` / `as_of` parameterise the operator-lifecycle
    /// report (the callers' inactivity threshold and census date).
    pub fn reports(
        &self,
        labels: &LabelStore,
        inactive_secs: u64,
        as_of: Timestamp,
        cfg: &MeasureConfig,
    ) -> MeasureReports {
        let threads = cfg.effective_threads();
        let _bundle_span = daas_obs::span!("measure.reports", threads = threads);
        let feat_before = daas_obs::enabled().then(|| self.features().stats());
        // Reward associations scan operators × affiliates of the whole
        // dataset (BTreeSet iteration: already deterministic order).
        let operators: Vec<Address> = self.dataset.operators.iter().copied().collect();
        let affiliates: Vec<Address> = self.dataset.affiliates.iter().copied().collect();

        type Task<'t> = Box<dyn FnOnce() -> Slot + Send + 't>;
        // Each task is timed into `measure.report_ms{report=<name>}`
        // (a no-op clock-free call while the recorder is off).
        let tasks: Vec<Task<'_>> = vec![
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "victims", || {
                    Slot::Victims(self.victim_report())
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "repeat_victims", || {
                    Slot::RepeatVictims(self.repeat_victim_report())
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "operators", || {
                    Slot::Operators(self.operator_report())
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "operator_lifecycles", || {
                    Slot::Lifecycles(self.operator_lifecycles(inactive_secs, as_of))
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "affiliates", || {
                    Slot::Affiliates(self.affiliate_report())
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "associations", || {
                    Slot::Associations(self.reward_transfers(&operators, &affiliates))
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "ratios", || Slot::Ratios(ratio_histogram(self)))
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "timeline", || {
                    Slot::Timeline(self.monthly_series())
                })
            }),
            Box::new(move || {
                daas_obs::timed("measure.report_ms", "report", "laundering", || {
                    Slot::Laundering(self.laundering_report(labels))
                })
            }),
        ];

        let slots: Vec<Slot> = if threads <= 1 {
            tasks.into_iter().map(|t| t()).collect()
        } else {
            // Warm the per-account feature memo once across the pool so
            // the report tasks read memoised features instead of racing
            // to fill the cache behind its shard locks.
            self.prewarm_features(threads);
            let workers = threads.min(tasks.len());
            let chunk = tasks.len().div_ceil(workers);
            let mut parts: Vec<Vec<Task<'_>>> = Vec::with_capacity(workers);
            let mut rest = tasks;
            while !rest.is_empty() {
                let tail = rest.split_off(chunk.min(rest.len()));
                parts.push(rest);
                rest = tail;
            }
            crossbeam::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .map(|part| {
                        scope.spawn(move |_| part.into_iter().map(|t| t()).collect::<Vec<_>>())
                    })
                    .collect();
                // Joining in spawn order restores the task order, so the
                // assembly below never observes the schedule.
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("report workers do not panic"))
                    .collect()
            })
            .expect("report scope does not panic")
        };
        if let Some(before) = feat_before {
            // Feature-memo traffic this bundle generated (deltas — the
            // context's cache persists across live windows).
            let stats = self.features().stats();
            daas_obs::add("cache.features.hit", stats.hits.saturating_sub(before.hits));
            daas_obs::add("cache.features.miss", stats.misses.saturating_sub(before.misses));
            daas_obs::gauge("cache.features.entries", stats.entries as f64);
        }
        assemble(slots)
    }
}

/// Folds task results into the bundle by variant.
fn assemble(slots: Vec<Slot>) -> MeasureReports {
    let mut victims = None;
    let mut repeat_victims = None;
    let mut operators = None;
    let mut operator_lifecycles = None;
    let mut affiliates = None;
    let mut associations = None;
    let mut ratios = None;
    let mut timeline = None;
    let mut laundering = None;
    for slot in slots {
        match slot {
            Slot::Victims(r) => victims = Some(r),
            Slot::RepeatVictims(r) => repeat_victims = Some(r),
            Slot::Operators(r) => operators = Some(r),
            Slot::Lifecycles(r) => operator_lifecycles = Some(r),
            Slot::Affiliates(r) => affiliates = Some(r),
            Slot::Associations(r) => associations = Some(r),
            Slot::Ratios(r) => ratios = Some(r),
            Slot::Timeline(r) => timeline = Some(r),
            Slot::Laundering(r) => laundering = Some(r),
        }
    }
    MeasureReports {
        victims: victims.expect("victim task ran"),
        repeat_victims: repeat_victims.expect("repeat-victim task ran"),
        operators: operators.expect("operator task ran"),
        operator_lifecycles: operator_lifecycles.expect("lifecycle task ran"),
        affiliates: affiliates.expect("affiliate task ran"),
        associations: associations.expect("association task ran"),
        ratios: ratios.expect("ratio task ran"),
        timeline: timeline.expect("timeline task ran"),
        laundering: laundering.expect("laundering task ran"),
    }
}
