//! Operator-side measurements (§6.2): profit concentration, lifecycles,
//! inter-operator fund flows.

use daas_chain::{days_between, Timestamp};
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;
use crate::stats::{top_share, Concentration};

/// The §6.2 operator report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperatorReport {
    /// Operator accounts observed in profit-sharing transactions.
    pub operators: usize,
    /// Total operator profits, USD (paper: $23.1M).
    pub total_usd: f64,
    /// Concentration summary (paper: 25.0% of operators hold 75.7%).
    pub concentration: Concentration,
    /// Number of dominant operators = top quartile count (paper: 14).
    pub top_quartile_count: usize,
    /// USD held by the top-quartile operators (paper: $17.4M).
    pub top_quartile_usd: f64,
    /// Share held by the top quartile, percent.
    pub top_quartile_share_pct: f64,
    /// Ordered pairs of operators with direct fund flows between them.
    pub linked_pairs: usize,
}

/// Operator account lifecycles (§6.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperatorLifecycles {
    /// Operators inactive for over a month at `as_of` (paper: 48).
    pub inactive_operators: usize,
    /// Their lifecycles in days (first to last transaction), sorted
    /// ascending.
    pub lifecycle_days: Vec<f64>,
    /// Shortest lifecycle (paper: 2 days).
    pub min_days: f64,
    /// Longest lifecycle (paper: 383 days).
    pub max_days: f64,
}

impl<'a> MeasureCtx<'a> {
    /// Builds the §6.2 operator report.
    pub fn operator_report(&self) -> OperatorReport {
        let profits = self.profit_per_operator();
        let values: Vec<f64> = profits.values().copied().collect();
        let concentration = Concentration::from_values(&values);
        let top_quartile_count = (values.len() as f64 * 0.25).round().max(1.0) as usize;
        let top_quartile_share_pct = top_share(&values, top_quartile_count);
        let total_usd: f64 = values.iter().sum();

        // Direct operator→operator fund flows.
        let ops: std::collections::HashSet<Address> = profits.keys().copied().collect();
        let mut pairs = std::collections::HashSet::new();
        for &op in &ops {
            for &txid in self.chain.txs_of(op) {
                let tx = self.chain.tx(txid);
                for t in tx.transfers() {
                    if t.from == op && ops.contains(&t.to) && t.to != op {
                        let (a, b) = if t.from < t.to { (t.from, t.to) } else { (t.to, t.from) };
                        pairs.insert((a, b));
                    }
                }
            }
        }

        OperatorReport {
            operators: values.len(),
            total_usd,
            concentration,
            top_quartile_count,
            top_quartile_usd: total_usd * top_quartile_share_pct / 100.0,
            top_quartile_share_pct,
            linked_pairs: pairs.len(),
        }
    }

    /// Lifecycles of operators already inactive for `inactive_secs`
    /// at `as_of` (§6.2: one month, 48 such operators).
    pub fn operator_lifecycles(&self, inactive_secs: u64, as_of: Timestamp) -> OperatorLifecycles {
        let mut lifecycle_days = Vec::new();
        for &op in self.dataset.operators.iter() {
            let f = self.features().features(op);
            let (Some(first_ts), Some(last_ts)) = (f.first_tx_ts, f.last_tx_ts) else { continue };
            if as_of.saturating_sub(last_ts) <= inactive_secs {
                continue; // still active
            }
            lifecycle_days.push(days_between(first_ts, last_ts) as f64);
        }
        lifecycle_days.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        OperatorLifecycles {
            inactive_operators: lifecycle_days.len(),
            min_days: lifecycle_days.first().copied().unwrap_or(0.0),
            max_days: lifecycle_days.last().copied().unwrap_or(0.0),
            lifecycle_days,
        }
    }
}
