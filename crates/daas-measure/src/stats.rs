//! Concentration statistics (the "few accounts dominate" results of §6).

use serde::{Deserialize, Serialize};

/// Concentration summary over a set of per-account values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Concentration {
    /// Number of accounts.
    pub accounts: usize,
    /// Sum of all values.
    pub total: f64,
    /// Share of the total held by the top 25% of accounts, percent.
    pub top_quartile_share_pct: f64,
    /// Smallest number of accounts holding ≥ 75% of the total.
    pub accounts_for_75pct: usize,
    /// Share of accounts needed for 75% of the total, percent.
    pub accounts_for_75pct_share: f64,
}

/// Computes the share of `total` held by the top `k` accounts, percent.
pub fn top_share(values: &[f64], k: usize) -> f64 {
    if values.is_empty() || k == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let top: f64 = sorted.iter().take(k).sum();
    100.0 * top / total
}

impl Concentration {
    /// Builds the summary from per-account values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
        let total: f64 = sorted.iter().sum();
        let quartile = (sorted.len() as f64 * 0.25).round().max(1.0) as usize;
        let top_quartile: f64 = sorted.iter().take(quartile).sum();
        let mut acc = 0.0;
        let mut accounts_for_75pct = sorted.len();
        for (i, v) in sorted.iter().enumerate() {
            acc += v;
            if total > 0.0 && acc >= 0.75 * total {
                accounts_for_75pct = i + 1;
                break;
            }
        }
        Concentration {
            accounts: sorted.len(),
            total,
            top_quartile_share_pct: if total > 0.0 { 100.0 * top_quartile / total } else { 0.0 },
            accounts_for_75pct,
            accounts_for_75pct_share: if sorted.is_empty() {
                0.0
            } else {
                100.0 * accounts_for_75pct as f64 / sorted.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_share_basics() {
        let v = [50.0, 30.0, 15.0, 5.0];
        assert!((top_share(&v, 1) - 50.0).abs() < 1e-9);
        assert!((top_share(&v, 2) - 80.0).abs() < 1e-9);
        assert!((top_share(&v, 10) - 100.0).abs() < 1e-9);
        assert_eq!(top_share(&[], 3), 0.0);
        assert_eq!(top_share(&v, 0), 0.0);
    }

    #[test]
    fn concentration_summary() {
        // 4 accounts: top quartile = 1 account with 70 of 100 → 70%.
        let v = [70.0, 15.0, 10.0, 5.0];
        let c = Concentration::from_values(&v);
        assert_eq!(c.accounts, 4);
        assert!((c.total - 100.0).abs() < 1e-9);
        assert!((c.top_quartile_share_pct - 70.0).abs() < 1e-9);
        // 75% needs accounts 70+15 = 85 ≥ 75 → 2 accounts = 50%.
        assert_eq!(c.accounts_for_75pct, 2);
        assert!((c.accounts_for_75pct_share - 50.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_distribution_needs_most_accounts() {
        let v = [1.0; 100];
        let c = Concentration::from_values(&v);
        assert_eq!(c.accounts_for_75pct, 75);
        assert!((c.top_quartile_share_pct - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_values() {
        let c = Concentration::from_values(&[]);
        assert_eq!(c.accounts, 0);
        assert_eq!(c.total, 0.0);
        let c = Concentration::from_values(&[0.0, 0.0]);
        assert_eq!(c.top_quartile_share_pct, 0.0);
    }
}
