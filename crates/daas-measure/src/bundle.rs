//! The §6 quick-stat bundle computed from an incident set alone.
//!
//! A daas-serve reader answers the `stats` endpoint from a published
//! snapshot, which carries the incident set but not the (engine-owned)
//! running accumulators. [`stat_bundle`] rebuilds the cheap §6 views
//! from incidents in canonical (transaction-id) order — deterministic
//! for a given watermark, independent of event arrival order, and
//! computable without the chain.

use std::collections::BTreeMap;

use daas_chain::format_year_month;
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::incidents::MeasuredIncident;
use crate::ratios::{ratio_rows, RatioRow};
use crate::stats::Concentration;
use crate::timeline::{month_rows, MonthAccum, MonthRow};
use crate::victims::{span_days, victim_report_from, VictimReport};

/// The quick §6 views derivable from an incident set: Figure 6 victim
/// losses, the §4.3 ratio histogram, the monthly timeline and the §6.2
/// / §6.3 profit concentrations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatBundle {
    /// Attributed incidents.
    pub incidents: usize,
    /// Distinct victims.
    pub victims: usize,
    /// Total USD stolen (summed in transaction order).
    pub total_usd: f64,
    /// Figure 6: the victim-loss report.
    pub victim_report: VictimReport,
    /// §4.3: the profit-sharing ratio histogram.
    pub ratios: Vec<RatioRow>,
    /// Monthly activity series.
    pub timeline: Vec<MonthRow>,
    /// §6.2: operator profit concentration.
    pub operator_concentration: Concentration,
    /// §6.3: affiliate profit concentration.
    pub affiliate_concentration: Concentration,
}

/// Builds the bundle from incidents. Callers pass the set in canonical
/// (transaction-id) order; the float sums then depend only on the
/// incident set, so any two readers of the same snapshot — or the same
/// engine before and after a checkpoint/restore cycle — agree
/// byte-for-byte.
pub fn stat_bundle(incidents: &[MeasuredIncident]) -> StatBundle {
    let mut loss_per_victim: BTreeMap<Address, f64> = BTreeMap::new();
    let mut profit_per_operator: BTreeMap<Address, f64> = BTreeMap::new();
    let mut profit_per_affiliate: BTreeMap<Address, f64> = BTreeMap::new();
    let mut ratio_counts: BTreeMap<u32, usize> = BTreeMap::new();
    let mut by_month = MonthAccum::new();
    let (mut first_ts, mut last_ts) = (u64::MAX, 0u64);
    let mut total_usd = 0.0;
    for inc in incidents {
        *loss_per_victim.entry(inc.victim).or_insert(0.0) += inc.usd;
        *profit_per_operator.entry(inc.operator).or_insert(0.0) += inc.operator_usd;
        *profit_per_affiliate.entry(inc.affiliate).or_insert(0.0) += inc.affiliate_usd;
        *ratio_counts.entry(inc.ratio_bps).or_default() += 1;
        let month = by_month.entry(format_year_month(inc.timestamp)).or_default();
        month.0.insert(inc.victim);
        month.1 += 1;
        month.2 += inc.usd;
        first_ts = first_ts.min(inc.timestamp);
        last_ts = last_ts.max(inc.timestamp);
        total_usd += inc.usd;
    }
    StatBundle {
        incidents: incidents.len(),
        victims: loss_per_victim.len(),
        total_usd,
        victim_report: victim_report_from(&loss_per_victim, span_days(first_ts, last_ts)),
        ratios: ratio_rows(&ratio_counts),
        timeline: month_rows(&by_month),
        operator_concentration: Concentration::from_values(
            &profit_per_operator.values().copied().collect::<Vec<_>>(),
        ),
        affiliate_concentration: Concentration::from_values(
            &profit_per_affiliate.values().copied().collect::<Vec<_>>(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_incident_set_builds_an_empty_bundle() {
        let bundle = stat_bundle(&[]);
        assert_eq!(bundle.incidents, 0);
        assert_eq!(bundle.victims, 0);
        assert_eq!(bundle.total_usd, 0.0);
        assert!(bundle.timeline.is_empty());
    }
}
