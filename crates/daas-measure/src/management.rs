//! Affiliate-management observables (§7.2): leveling-system tiers and
//! on-chain reward payments.

use std::collections::HashSet;

use daas_chain::Asset;
use eth_types::{Address, U256};
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;

/// Tier census for one family's affiliates under its leveling
/// thresholds (level 0 = below the first threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierCensus {
    /// Affiliates per level `[0, 1, 2, 3]`.
    pub levels: [usize; 4],
}

impl TierCensus {
    /// Total affiliates counted.
    pub fn total(&self) -> usize {
        self.levels.iter().sum()
    }
}

/// Observed operator→affiliate reward payments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewardReport {
    /// Direct (non-profit-sharing) ETH transfers from operators to
    /// affiliates.
    pub transfers: usize,
    /// Total rewarded, wei.
    pub total_wei: U256,
    /// Distinct affiliates rewarded.
    pub affiliates_rewarded: usize,
}

impl<'a> MeasureCtx<'a> {
    /// Buckets `affiliates` into leveling tiers by their measured USD
    /// profits against the given thresholds (§7.2: Angel uses
    /// $100k/$1M/$5M, Inferno $10k/$100k/$1M).
    pub fn affiliate_tiers(&self, affiliates: &[Address], thresholds_usd: [f64; 3]) -> TierCensus {
        let profits = self.profit_per_affiliate();
        let mut levels = [0usize; 4];
        for aff in affiliates {
            let usd = profits.get(aff).copied().unwrap_or(0.0);
            let level = thresholds_usd.iter().take_while(|&&t| usd >= t).count();
            levels[level] += 1;
        }
        TierCensus { levels }
    }

    /// Finds direct operator→affiliate ETH transfers that are not part
    /// of profit-sharing transactions — the on-chain footprint of the
    /// §7.2 reward mechanisms. Restricted to `operators`/`affiliates`
    /// (e.g. one clustered family's members).
    pub fn reward_transfers(&self, operators: &[Address], affiliates: &[Address]) -> RewardReport {
        let ops: HashSet<Address> = operators.iter().copied().collect();
        let affs: HashSet<Address> = affiliates.iter().copied().collect();
        let ps: HashSet<_> = self.dataset.ps_txs.iter().copied().collect();
        let mut transfers = 0usize;
        let mut total = U256::ZERO;
        let mut rewarded = HashSet::new();
        for &op in &ops {
            for &txid in self.chain.txs_of(op) {
                if ps.contains(&txid) {
                    continue;
                }
                let tx = self.chain.tx(txid);
                for t in tx.transfers() {
                    if t.asset == Asset::Eth && t.from == op && affs.contains(&t.to) {
                        transfers += 1;
                        total = total.saturating_add(t.amount);
                        rewarded.insert(t.to);
                    }
                }
            }
        }
        RewardReport { transfers, total_wei: total, affiliates_rewarded: rewarded.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{Chain, ContractKind, EntryStyle, ProfitSharingSpec};
    use daas_detector::{classify_tx, Dataset};
    use daas_pricing::Oracle;
    use eth_types::units::ether;

    fn setup() -> (Chain, Dataset, Address, Address, Address) {
        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"m/op", ether(100)).unwrap();
        let aff1 = chain.create_eoa(b"m/aff1").unwrap();
        let aff2 = chain.create_eoa(b"m/aff2").unwrap();
        let victim = chain.create_eoa_funded(b"m/v", ether(1_000)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut ds = Dataset::default();
        chain.advance(12);
        // aff1 earns a lot (500 ETH), aff2 a little (1 ETH).
        let tx = chain.claim_eth(victim, contract, ether(625), aff1).unwrap();
        ds.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract, ether(1), aff2).unwrap();
        ds.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        (chain, ds, op, aff1, aff2)
    }

    #[test]
    fn tiers_bucket_by_thresholds() {
        let (chain, ds, _op, aff1, aff2) = setup();
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &ds, &oracle);
        // aff1 earned 500 ETH ≈ $800k at genesis prices; aff2 ≈ $1.3k.
        let census = ctx.affiliate_tiers(&[aff1, aff2], [10_000.0, 100_000.0, 1_000_000.0]);
        assert_eq!(census.total(), 2);
        assert_eq!(census.levels, [1, 0, 1, 0]);
        // Stricter thresholds push everyone down.
        let census = ctx.affiliate_tiers(&[aff1, aff2], [100_000.0, 1_000_000.0, 5_000_000.0]);
        assert_eq!(census.levels, [1, 1, 0, 0]);
    }

    #[test]
    fn rewards_exclude_profit_sharing_txs() {
        let (mut chain, ds, op, aff1, aff2) = setup();
        // A reward payment and an unrelated payment to a stranger.
        let stranger = chain.create_eoa(b"m/stranger").unwrap();
        chain.advance(12);
        chain.transfer_eth(op, aff1, ether(3)).unwrap();
        chain.transfer_eth(op, stranger, ether(1)).unwrap();
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &ds, &oracle);
        let report = ctx.reward_transfers(&[op], &[aff1, aff2]);
        assert_eq!(report.transfers, 1);
        assert_eq!(report.total_wei, ether(3));
        assert_eq!(report.affiliates_rewarded, 1);
    }

    #[test]
    fn no_rewards_when_none_paid() {
        let (chain, ds, op, aff1, aff2) = setup();
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &ds, &oracle);
        let report = ctx.reward_transfers(&[op], &[aff1, aff2]);
        assert_eq!(report.transfers, 0);
        assert_eq!(report.total_wei, U256::ZERO);
    }
}
