//! Streaming measurement: the §6 view maintained incrementally from the
//! online detector's event feed.
//!
//! [`LiveMeasure`] consumes [`DetectorEvent`]s and keeps running
//! accumulators — attributed incidents, per-victim losses, per-account
//! profits, the ratio histogram and the monthly timeline — so a deployed
//! observatory can publish cheap per-poll numbers without re-walking the
//! chain. Counter-valued views (`ratio_histogram`, incident/victim
//! counts) are *exactly* the batch values; float-valued running views
//! (`victim_report`, `timeline`, the concentration summaries) accumulate
//! in event-arrival order and are monitoring-grade (ulp-level) only.
//!
//! The canonical numbers come from [`LiveMeasure::reports`]: it hands a
//! [`MeasureCtx`] the *cached* canonical incident vector (sorted to
//! transaction order — the same canonical order `MeasureCtx::new`
//! produces) and routes through the identical §6 report bundle, so the
//! streaming path and the batch path share one implementation per
//! report and agree byte-for-byte. See DESIGN.md §10.
//!
//! The incident set lives on a [`txgraph::CowMap`], and the canonical
//! vector is `Arc`-shared and revision-stamped: polls that add no
//! incidents re-serve the previous allocation, so `reports()` between
//! quiet windows re-canonicalises nothing. Float accumulators stay on
//! plain ordered maps — their values depend on accumulation order, and
//! the ordered in-place updates keep every poll deterministic.

use std::collections::BTreeMap;
use std::sync::Arc;

use daas_chain::{format_year_month, Chain, LabelStore, Timestamp, TxId};
use daas_detector::{ClassificationCache, ClassifierConfig, Dataset, DetectorEvent};
use daas_pricing::Oracle;
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::incidents::{measure_observation, MeasureCtx, MeasuredIncident};
use crate::ratios::{ratio_rows, RatioRow};
use crate::reports::{MeasureConfig, MeasureReports};
use crate::stats::Concentration;
use crate::timeline::{month_rows, MonthAccum, MonthRow};
use crate::victims::{span_days, victim_report_from, VictimReport};

/// What one [`LiveMeasure::ingest`] call added.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LiveDelta {
    /// Newly measured profit-sharing incidents.
    pub incidents: usize,
    /// Victims seen for the first time.
    pub new_victims: usize,
    /// USD stolen across the new incidents.
    pub usd: f64,
}

/// One month's accumulator in a [`MeasureCheckpoint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthCheckpoint {
    /// `YYYY-MM` key.
    pub month: String,
    /// Distinct victims that month (sorted).
    pub victims: Vec<Address>,
    /// Incident count.
    pub incidents: usize,
    /// USD stolen (exact running value — the JSON float round-trips
    /// bit-for-bit through the workspace serializer).
    pub usd: f64,
}

/// Serialized [`LiveMeasure`] state (DESIGN.md §13).
///
/// The float accumulators depend on event-arrival order, so they are
/// serialized *exactly* rather than recomputed: the workspace JSON
/// shim renders `f64` with shortest-round-trip formatting and parses it
/// back bit-for-bit, which makes a restored accumulator — including the
/// monitoring-grade running views — indistinguishable from one that
/// never stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureCheckpoint {
    /// Attributed incidents, sorted by transaction id.
    pub incidents: Vec<MeasuredIncident>,
    /// Per-victim running losses (sorted by address).
    pub loss_per_victim: Vec<(Address, f64)>,
    /// Per-operator running profits.
    pub profit_per_operator: Vec<(Address, f64)>,
    /// Per-affiliate running profits.
    pub profit_per_affiliate: Vec<(Address, f64)>,
    /// Ratio histogram counters.
    pub ratio_counts: Vec<(u32, usize)>,
    /// Monthly accumulators.
    pub by_month: Vec<MonthCheckpoint>,
    /// Earliest incident timestamp (`u64::MAX` when empty).
    pub first_ts: u64,
    /// Latest incident timestamp.
    pub last_ts: u64,
    /// Running USD total.
    pub total_usd: f64,
}

/// Incremental measurement accumulators over a detector event stream.
#[derive(Clone)]
pub struct LiveMeasure {
    cfg: ClassifierConfig,
    cache: Arc<ClassificationCache>,
    /// Attributed incidents keyed by transaction id, on copy-on-write
    /// shards: cloning the accumulator (bench setup, reader snapshots)
    /// is O(shards), and a post-clone window copies only the shards it
    /// writes.
    incidents: txgraph::CowMap<TxId, MeasuredIncident>,
    /// Bumped whenever `incidents` changes; stamps the canonical cache.
    rev: u64,
    /// The canonical (transaction-ordered) incident vector served to
    /// [`MeasureCtx::from_incidents`], rebuilt only when `rev` moved.
    canonical: Option<(u64, Arc<Vec<MeasuredIncident>>)>,
    loss_per_victim: BTreeMap<Address, f64>,
    profit_per_operator: BTreeMap<Address, f64>,
    profit_per_affiliate: BTreeMap<Address, f64>,
    ratio_counts: BTreeMap<u32, usize>,
    by_month: MonthAccum,
    first_ts: u64,
    last_ts: u64,
    total_usd: f64,
}

impl LiveMeasure {
    /// A fresh accumulator with its own classification memo.
    pub fn new(cfg: ClassifierConfig) -> Self {
        Self::with_cache(cfg, Arc::new(ClassificationCache::new()))
    }

    /// A fresh accumulator sharing a classification memo with the
    /// detector and clusterer (every `PsTransaction` lookup then hits
    /// the memo the detector already filled).
    pub fn with_cache(cfg: ClassifierConfig, cache: Arc<ClassificationCache>) -> Self {
        LiveMeasure {
            cfg,
            cache,
            incidents: txgraph::CowMap::new(),
            rev: 0,
            canonical: None,
            loss_per_victim: BTreeMap::new(),
            profit_per_operator: BTreeMap::new(),
            profit_per_affiliate: BTreeMap::new(),
            ratio_counts: BTreeMap::new(),
            by_month: MonthAccum::new(),
            first_ts: u64::MAX,
            last_ts: 0,
            total_usd: 0.0,
        }
    }

    /// Folds one poll's events into the accumulators. Only
    /// [`DetectorEvent::PsTransaction`] carries measurable value; role
    /// events are ignored here (the clusterer owns membership).
    pub fn ingest(&mut self, chain: &Chain, oracle: &Oracle, events: &[DetectorEvent]) -> LiveDelta {
        let mut delta = LiveDelta::default();
        for event in events {
            let DetectorEvent::PsTransaction { tx, .. } = event else { continue };
            if self.incidents.contains_key(tx) {
                continue;
            }
            let obs = self
                .cache
                .classify(chain, *tx, &self.cfg)
                .expect("detector only emits positively classified txs");
            let inc = measure_observation(chain, oracle, &obs);

            delta.incidents += 1;
            delta.usd += inc.usd;
            if !self.loss_per_victim.contains_key(&inc.victim) {
                delta.new_victims += 1;
            }
            *self.loss_per_victim.entry(inc.victim).or_insert(0.0) += inc.usd;
            *self.profit_per_operator.entry(inc.operator).or_insert(0.0) += inc.operator_usd;
            *self.profit_per_affiliate.entry(inc.affiliate).or_insert(0.0) += inc.affiliate_usd;
            *self.ratio_counts.entry(inc.ratio_bps).or_default() += 1;
            let month = self.by_month.entry(format_year_month(inc.timestamp)).or_default();
            month.0.insert(inc.victim);
            month.1 += 1;
            month.2 += inc.usd;
            self.first_ts = self.first_ts.min(inc.timestamp);
            self.last_ts = self.last_ts.max(inc.timestamp);
            self.total_usd += inc.usd;
            self.incidents.insert(*tx, inc);
            self.rev += 1;
        }
        delta
    }

    /// An O(shards) copy-on-write clone of the incident set — the cheap
    /// handle a published reader snapshot holds (daas-serve); readers
    /// derive their lazy per-epoch indices from it without touching the
    /// accumulator again.
    pub fn incidents_snapshot(&self) -> txgraph::CowMap<TxId, MeasuredIncident> {
        self.incidents.clone()
    }

    /// Exports the accumulator's full state. See [`MeasureCheckpoint`]
    /// for the float-exactness contract.
    pub fn checkpoint(&self) -> MeasureCheckpoint {
        let mut incidents: Vec<MeasuredIncident> = self.incidents.values().cloned().collect();
        incidents.sort_unstable_by_key(|inc| inc.tx);
        MeasureCheckpoint {
            incidents,
            loss_per_victim: self.loss_per_victim.iter().map(|(&a, &v)| (a, v)).collect(),
            profit_per_operator: self.profit_per_operator.iter().map(|(&a, &v)| (a, v)).collect(),
            profit_per_affiliate: self.profit_per_affiliate.iter().map(|(&a, &v)| (a, v)).collect(),
            ratio_counts: self.ratio_counts.iter().map(|(&r, &n)| (r, n)).collect(),
            by_month: self
                .by_month
                .iter()
                .map(|(month, (victims, incidents, usd))| {
                    let mut victims: Vec<Address> = victims.iter().copied().collect();
                    victims.sort_unstable();
                    MonthCheckpoint {
                        month: month.clone(),
                        victims,
                        incidents: *incidents,
                        usd: *usd,
                    }
                })
                .collect(),
            first_ts: self.first_ts,
            last_ts: self.last_ts,
            total_usd: self.total_usd,
        }
    }

    /// Rebuilds an accumulator from a checkpoint. `cfg` and `cache`
    /// follow the same contract as [`Self::with_cache`].
    pub fn restore(
        cfg: ClassifierConfig,
        cache: Arc<ClassificationCache>,
        ckpt: &MeasureCheckpoint,
    ) -> Self {
        let mut live = Self::with_cache(cfg, cache);
        for inc in &ckpt.incidents {
            live.incidents.insert(inc.tx, inc.clone());
        }
        live.rev = ckpt.incidents.len() as u64;
        live.loss_per_victim = ckpt.loss_per_victim.iter().copied().collect();
        live.profit_per_operator = ckpt.profit_per_operator.iter().copied().collect();
        live.profit_per_affiliate = ckpt.profit_per_affiliate.iter().copied().collect();
        live.ratio_counts = ckpt.ratio_counts.iter().copied().collect();
        for m in &ckpt.by_month {
            live.by_month.insert(
                m.month.clone(),
                (m.victims.iter().copied().collect(), m.incidents, m.usd),
            );
        }
        live.first_ts = ckpt.first_ts;
        live.last_ts = ckpt.last_ts;
        live.total_usd = ckpt.total_usd;
        live
    }

    /// Measured incidents so far.
    pub fn incident_count(&self) -> usize {
        self.incidents.len()
    }

    /// Distinct victims so far.
    pub fn victim_count(&self) -> usize {
        self.loss_per_victim.len()
    }

    /// Running USD total (event-arrival accumulation order).
    pub fn total_usd(&self) -> f64 {
        self.total_usd
    }

    /// The §4.3 ratio histogram from the running counters — counts are
    /// integral, so this is *exactly* the batch histogram at any poll.
    pub fn ratio_histogram(&self) -> Vec<RatioRow> {
        ratio_rows(&self.ratio_counts)
    }

    /// The Figure 6 victim report from the running loss map
    /// (monitoring-grade: float sums are in event-arrival order).
    pub fn victim_report(&self) -> VictimReport {
        victim_report_from(&self.loss_per_victim, span_days(self.first_ts, self.last_ts))
    }

    /// Monthly activity series from the running month map
    /// (monitoring-grade).
    pub fn timeline(&self) -> Vec<MonthRow> {
        month_rows(&self.by_month)
    }

    /// Operator profit concentration from the running profit map
    /// (monitoring-grade).
    pub fn operator_concentration(&self) -> Concentration {
        Concentration::from_values(&self.profit_per_operator.values().copied().collect::<Vec<_>>())
    }

    /// Affiliate profit concentration from the running profit map
    /// (monitoring-grade).
    pub fn affiliate_concentration(&self) -> Concentration {
        Concentration::from_values(&self.profit_per_affiliate.values().copied().collect::<Vec<_>>())
    }

    /// Materialises a full [`MeasureCtx`] around the running incident
    /// set — incidents are *not* re-attributed, and the canonical
    /// vector is cached per revision, so repeated calls between quiet
    /// polls hand the same `Arc` over without sorting or copying.
    pub fn ctx<'a>(
        &mut self,
        chain: &'a Chain,
        dataset: &'a Dataset,
        oracle: &'a Oracle,
    ) -> MeasureCtx<'a> {
        let canonical = match &self.canonical {
            Some((rev, cached)) if *rev == self.rev => cached.clone(),
            _ => {
                let mut incidents: Vec<MeasuredIncident> =
                    self.incidents.values().cloned().collect();
                incidents.sort_unstable_by_key(|inc| inc.tx);
                let incidents = Arc::new(incidents);
                self.canonical = Some((self.rev, incidents.clone()));
                incidents
            }
        };
        MeasureCtx::from_incidents(chain, dataset, oracle, canonical)
    }

    /// The canonical §6 bundle: routes through the same
    /// [`MeasureCtx::reports`] the batch pipeline calls, so streaming and
    /// batch share one implementation per report and the output is
    /// byte-identical to the batch bundle over the same dataset.
    pub fn reports(
        &mut self,
        chain: &Chain,
        dataset: &Dataset,
        oracle: &Oracle,
        labels: &LabelStore,
        inactive_secs: u64,
        as_of: Timestamp,
        cfg: &MeasureConfig,
    ) -> MeasureReports {
        self.ctx(chain, dataset, oracle).reports(labels, inactive_secs, as_of, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec};
    use daas_detector::classify_tx;
    use eth_types::units::ether;

    fn fixture() -> (Chain, Dataset, Oracle, Vec<DetectorEvent>) {
        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"lm/op", ether(5)).unwrap();
        let aff = chain.create_eoa(b"lm/aff").unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut dataset = Dataset::default();
        let mut events = Vec::new();
        for (i, amount) in [ether(1), ether(4), ether(2)].into_iter().enumerate() {
            let victim = chain
                .create_eoa_funded(format!("lm/v{i}").as_bytes(), ether(50))
                .unwrap();
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, amount, aff).unwrap();
            dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
            events.push(DetectorEvent::PsTransaction { tx, contract });
        }
        dataset.operators.insert(op);
        dataset.affiliates.insert(aff);
        dataset.contracts.insert(contract);
        (chain, dataset, oracle_with(), events)
    }

    fn oracle_with() -> Oracle {
        Oracle::new()
    }

    #[test]
    fn running_counters_match_batch() {
        let (chain, dataset, oracle, events) = fixture();
        let mut live = LiveMeasure::new(ClassifierConfig::default());
        // Feed one event per poll; counters must track the batch prefix.
        let mut seen = 0;
        for event in &events {
            let delta = live.ingest(&chain, &oracle, std::slice::from_ref(event));
            seen += delta.incidents;
            assert_eq!(live.incident_count(), seen);
        }
        let ctx = MeasureCtx::new(&chain, &dataset, &oracle);
        assert_eq!(live.incident_count(), ctx.incidents().len());
        assert_eq!(live.victim_count(), ctx.victims().len());
        assert_eq!(live.ratio_histogram(), crate::ratio_histogram(&ctx));
        assert!((live.total_usd() - ctx.loss_per_victim().values().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn duplicate_events_are_ignored() {
        let (chain, dataset, oracle, events) = fixture();
        let mut live = LiveMeasure::new(ClassifierConfig::default());
        live.ingest(&chain, &oracle, &events);
        let delta = live.ingest(&chain, &oracle, &events);
        assert_eq!(delta, LiveDelta::default());
        assert_eq!(live.incident_count(), dataset.observations.len());
    }

    #[test]
    fn reports_are_byte_identical_to_batch() {
        let (chain, dataset, oracle, events) = fixture();
        let labels = LabelStore::new();
        let mut live = LiveMeasure::new(ClassifierConfig::default());
        // Reversed event order: the canonical ctx must still agree.
        for event in events.iter().rev() {
            live.ingest(&chain, &oracle, std::slice::from_ref(event));
        }
        let as_of = chain.now();
        let cfg = MeasureConfig::sequential();
        let batch = MeasureCtx::new(&chain, &dataset, &oracle).reports(&labels, 3600, as_of, &cfg);
        let streamed = live.reports(&chain, &dataset, &oracle, &labels, 3600, as_of, &cfg);
        assert_eq!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&streamed).unwrap()
        );
    }
}
