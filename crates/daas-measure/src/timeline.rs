//! Monthly activity series: victims, incidents and USD losses per
//! calendar month — the running view a deployed observatory publishes
//! (cf. the ScamSniffer monthly phishing reports the paper cites).

use std::collections::{BTreeMap, HashSet};

use daas_chain::format_year_month;
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;

/// One month of DaaS activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthRow {
    /// Calendar month, `YYYY-MM`.
    pub month: String,
    /// Distinct victim accounts hit this month.
    pub victims: usize,
    /// Profit-sharing transactions this month.
    pub incidents: usize,
    /// USD stolen this month.
    pub usd: f64,
}

/// Per-month accumulator: distinct victims, incident count, USD total.
pub(crate) type MonthAccum = BTreeMap<String, (HashSet<Address>, usize, f64)>;

/// Flattens the per-month accumulator into rows — shared by the batch
/// context and the streaming accumulator's running month map.
pub(crate) fn month_rows(by_month: &MonthAccum) -> Vec<MonthRow> {
    by_month
        .iter()
        .map(|(month, (victims, incidents, usd))| MonthRow {
            month: month.clone(),
            victims: victims.len(),
            incidents: *incidents,
            usd: *usd,
        })
        .collect()
}

impl<'a> MeasureCtx<'a> {
    /// Builds the monthly series, sorted chronologically. Months with no
    /// activity inside the observed span are included with zeros.
    pub fn monthly_series(&self) -> Vec<MonthRow> {
        let mut by_month = MonthAccum::new();
        for inc in self.incidents() {
            let month = format_year_month(inc.timestamp);
            let entry = by_month.entry(month).or_default();
            entry.0.insert(inc.victim);
            entry.1 += 1;
            entry.2 += inc.usd;
        }
        month_rows(&by_month)
    }

    /// The busiest month by USD stolen, if any activity exists.
    pub fn peak_month(&self) -> Option<MonthRow> {
        self.monthly_series()
            .into_iter()
            .max_by(|a, b| a.usd.partial_cmp(&b.usd).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{Chain, ContractKind, EntryStyle, ProfitSharingSpec};
    use daas_detector::{classify_tx, Dataset};
    use daas_pricing::Oracle;
    use eth_types::units::ether;

    #[test]
    fn series_buckets_by_calendar_month() {
        let mut chain = Chain::new(); // genesis 2023-03-01
        let op = chain.create_eoa_funded(b"t/op", ether(1)).unwrap();
        let aff = chain.create_eoa(b"t/aff").unwrap();
        let victim = chain.create_eoa_funded(b"t/v", ether(100)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut ds = Dataset::default();
        // Two incidents in March 2023, one in May 2023.
        for advance in [12, 86_400, 75 * 86_400] {
            chain.advance(advance);
            let tx = chain.claim_eth(victim, contract, ether(2), aff).unwrap();
            ds.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        }
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &ds, &oracle);
        let series = ctx.monthly_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].month, "2023-03");
        assert_eq!(series[0].incidents, 2);
        assert_eq!(series[0].victims, 1, "same victim twice counts once per month");
        assert_eq!(series[1].month, "2023-05");
        assert_eq!(series[1].incidents, 1);
        // Peak month is March (two incidents at similar prices).
        assert_eq!(ctx.peak_month().unwrap().month, "2023-03");
    }

    #[test]
    fn empty_series() {
        let chain = Chain::new();
        let ds = Dataset::default();
        let oracle = Oracle::new();
        let ctx = MeasureCtx::new(&chain, &ds, &oracle);
        assert!(ctx.monthly_series().is_empty());
        assert!(ctx.peak_month().is_none());
    }
}
