//! Measurement analytics over a discovered DaaS dataset (§6 and the
//! figures/tables of the paper's evaluation).
//!
//! Everything is computed from *observables only* — the chain, the
//! dataset the snowball sampler produced, and the price oracle — never
//! from generator ground truth. The entry point is [`MeasureCtx`], which
//! attributes each profit-sharing transaction to a victim and a USD
//! value once ([`MeasuredIncident`]); all reports derive from that.
//!
//! Streaming ([`LiveMeasure`]): the same measurements maintained
//! incrementally from the online detector's event feed — cheap running
//! views per poll, and a canonical [`LiveMeasure::reports`] that routes
//! through the identical batch bundle (byte-identical output; see
//! `tests/live_equivalence.rs` and DESIGN.md §10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affiliates;
mod bundle;
mod family_table;
mod incidents;
mod laundering;
mod live;
mod management;
mod timeline;
mod operators;
mod ratios;
mod reports;
mod stats;
mod victims;

pub use affiliates::{AffiliateReport, AFFILIATE_PROFIT_BUCKETS};
pub use bundle::{stat_bundle, StatBundle};
pub use family_table::{dominant_share, family_table, FamilyRow};
pub use incidents::{MeasureCtx, MeasuredIncident};
pub use laundering::{LaunderingReport, SinkKind};
pub use live::{LiveDelta, LiveMeasure, MeasureCheckpoint, MonthCheckpoint};
pub use management::{RewardReport, TierCensus};
pub use timeline::MonthRow;
pub use operators::{OperatorLifecycles, OperatorReport};
pub use ratios::{ratio_histogram, RatioRow};
pub use reports::{MeasureConfig, MeasureReports};
pub use stats::{top_share, Concentration};
pub use victims::{RepeatVictimReport, VictimReport, VICTIM_LOSS_BUCKETS};
