//! The Table 2 family overview, computed from a clustering plus the
//! measurement context.

use daas_chain::{format_year_month, Timestamp};
use daas_cluster::Clustering;
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;

/// One Table 2 column (a family).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyRow {
    /// Family name (label or operator prefix).
    pub name: String,
    /// Profit-sharing contracts.
    pub contracts: usize,
    /// Operator accounts.
    pub operators: usize,
    /// Affiliate accounts.
    pub affiliates: usize,
    /// Distinct victim accounts.
    pub victims: usize,
    /// Total profits, USD.
    pub profits_usd: f64,
    /// First observed activity, `YYYY-MM`.
    pub active_start: String,
    /// Last observed activity, `YYYY-MM` — `"Now"` when active within a
    /// month of `as_of` (Table 2's convention).
    pub active_end: String,
}

/// Builds Table 2: one row per family, sorted by victim count descending
/// (the paper's ordering). `as_of` is the collection end used for the
/// "Now" convention.
pub fn family_table(ctx: &MeasureCtx<'_>, clustering: &Clustering, as_of: Timestamp) -> Vec<FamilyRow> {
    let mut rows = Vec::with_capacity(clustering.families.len());
    for fam in &clustering.families {
        let mut victims = std::collections::HashSet::new();
        let mut profits = 0.0;
        let mut first = u64::MAX;
        let mut last = 0u64;
        let tx_set: std::collections::HashSet<_> = fam.ps_txs.iter().copied().collect();
        for inc in ctx.incidents() {
            if !tx_set.contains(&inc.tx) {
                continue;
            }
            victims.insert(inc.victim);
            profits += inc.usd;
            first = first.min(inc.timestamp);
            last = last.max(inc.timestamp);
        }
        let active_start =
            if first == u64::MAX { "-".to_owned() } else { format_year_month(first) };
        let active_end = if last == 0 {
            "-".to_owned()
        } else if as_of.saturating_sub(last) <= 31 * 86_400 {
            "Now".to_owned()
        } else {
            format_year_month(last)
        };
        rows.push(FamilyRow {
            name: fam.name.clone(),
            contracts: fam.contracts.len(),
            operators: fam.operators.len(),
            affiliates: fam.affiliates.len(),
            victims: victims.len(),
            profits_usd: profits,
            active_start,
            active_end,
        });
    }
    rows.sort_by(|a, b| b.victims.cmp(&a.victims).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Share of total profits held by the top `k` families, percent
/// (paper: the dominant three hold 93.9%).
pub fn dominant_share(rows: &[FamilyRow], k: usize) -> f64 {
    let total: f64 = rows.iter().map(|r| r.profits_usd).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut profits: Vec<f64> = rows.iter().map(|r| r.profits_usd).collect();
    profits.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    100.0 * profits.iter().take(k).sum::<f64>() / total
}
