//! Affiliate-side measurements (§6.3 / Figure 7).

use std::collections::{HashMap, HashSet};

use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::incidents::MeasureCtx;
use crate::stats::{top_share, Concentration};

/// Figure 7 buckets: `(label, low, high)` in USD.
pub const AFFILIATE_PROFIT_BUCKETS: [(&str, f64, f64); 4] = [
    ("less than $1,000", 0.0, 1_000.0),
    ("between $1,000 and $10,000", 1_000.0, 10_000.0),
    ("between $10,000 and $50,000", 10_000.0, 50_000.0),
    ("more than $50,000", 50_000.0, f64::INFINITY),
];

/// The §6.3 affiliate report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AffiliateReport {
    /// Affiliate accounts observed.
    pub affiliates: usize,
    /// Total affiliate profits, USD (paper: $111.9M).
    pub total_usd: f64,
    /// Figure 7 rows: `(label, count, percent)`.
    pub profit_buckets: Vec<(String, usize, f64)>,
    /// Share earning over $1,000 (paper: 50.2%).
    pub above_1k_pct: f64,
    /// Share earning over $10,000 (paper: 22.0%).
    pub above_10k_pct: f64,
    /// Share of affiliates profiting from more than 10 victims (paper:
    /// 26.1%).
    pub over_10_victims_pct: f64,
    /// Share associated with exactly one operator account (paper:
    /// 60.4%).
    pub single_operator_pct: f64,
    /// Share associated with at most three operator accounts (paper:
    /// 90.2%).
    pub up_to_3_operators_pct: f64,
    /// Concentration (paper: 7.4% of affiliates hold 75.6%).
    pub concentration: Concentration,
    /// Share held by the top 7.4% of affiliates, percent.
    pub top_7_4_pct_share: f64,
}

impl<'a> MeasureCtx<'a> {
    /// Builds the §6.3 / Figure 7 affiliate report.
    pub fn affiliate_report(&self) -> AffiliateReport {
        let profits = self.profit_per_affiliate();
        let affiliates = profits.len();
        let pct = |n: usize| 100.0 * n as f64 / affiliates.max(1) as f64;

        let mut counts = [0usize; 4];
        for &usd in profits.values() {
            let idx = AFFILIATE_PROFIT_BUCKETS
                .iter()
                .position(|(_, lo, hi)| usd >= *lo && usd < *hi)
                .unwrap_or(3);
            counts[idx] += 1;
        }
        let profit_buckets = AFFILIATE_PROFIT_BUCKETS
            .iter()
            .zip(counts)
            .map(|((label, _, _), n)| ((*label).to_owned(), n, pct(n)))
            .collect();

        // Victims and operator associations per affiliate.
        let mut victims_of: HashMap<Address, HashSet<Address>> = HashMap::new();
        let mut ops_of: HashMap<Address, HashSet<Address>> = HashMap::new();
        for inc in self.incidents() {
            victims_of.entry(inc.affiliate).or_default().insert(inc.victim);
            ops_of.entry(inc.affiliate).or_default().insert(inc.operator);
        }
        let over_10 = victims_of.values().filter(|v| v.len() > 10).count();
        let single_op = ops_of.values().filter(|o| o.len() == 1).count();
        let up_to_3 = ops_of.values().filter(|o| o.len() <= 3).count();

        let values: Vec<f64> = profits.values().copied().collect();
        let top_k = ((affiliates as f64) * 0.074).round().max(1.0) as usize;

        AffiliateReport {
            affiliates,
            total_usd: values.iter().sum(),
            profit_buckets,
            above_1k_pct: pct(counts[1] + counts[2] + counts[3]),
            above_10k_pct: pct(counts[2] + counts[3]),
            over_10_victims_pct: pct(over_10),
            single_operator_pct: pct(single_op),
            up_to_3_operators_pct: pct(up_to_3),
            concentration: Concentration::from_values(&values),
            top_7_4_pct_share: top_share(&values, top_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        for (usd, expect) in
            [(0.0, 0), (999.0, 0), (1_000.0, 1), (9_999.0, 1), (10_000.0, 2), (50_000.0, 3)]
        {
            let idx = AFFILIATE_PROFIT_BUCKETS
                .iter()
                .position(|(_, lo, hi)| usd >= *lo && usd < *hi)
                .unwrap_or(3);
            assert_eq!(idx, expect, "usd {usd}");
        }
    }
}
