//! Victim attribution and USD valuation of profit-sharing transactions.

use std::collections::BTreeMap;

use daas_chain::{Asset, Chain, Timestamp, TxId};
use daas_detector::{Dataset, FeatureCache};
use daas_pricing::Oracle;
use eth_types::Address;
use serde::{Deserialize, Serialize};

/// One profit-sharing transaction, attributed and valued.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredIncident {
    /// The profit-sharing transaction.
    pub tx: TxId,
    /// When it confirmed.
    pub timestamp: Timestamp,
    /// The account that lost the funds.
    pub victim: Address,
    /// The profit-sharing contract.
    pub contract: Address,
    /// Operator account (smaller share).
    pub operator: Address,
    /// Affiliate account (larger share).
    pub affiliate: Address,
    /// Matched operator ratio, basis points.
    pub ratio_bps: u32,
    /// Victim's loss in USD (operator + affiliate shares at tx-time
    /// prices).
    pub usd: f64,
    /// Operator's share in USD.
    pub operator_usd: f64,
    /// Affiliate's share in USD.
    pub affiliate_usd: f64,
}

/// Measurement context: chain + dataset + oracle, with incidents
/// attributed once at construction.
pub struct MeasureCtx<'a> {
    /// The ledger.
    pub chain: &'a Chain,
    /// The discovered dataset.
    pub dataset: &'a Dataset,
    /// The price oracle.
    pub oracle: &'a Oracle,
    incidents: std::sync::Arc<Vec<MeasuredIncident>>,
    features: FeatureCache<'a>,
}

impl<'a> MeasureCtx<'a> {
    /// Builds the context, attributing every observation to a victim and
    /// valuing it in USD. Observations whose token has no quote are kept
    /// with `usd = 0` (the paper similarly cannot price long-tail
    /// tokens).
    ///
    /// Incidents are canonicalised to transaction order so every float
    /// rollup accumulates in the same order regardless of how the
    /// dataset's observation vector was assembled (batch snowball rounds
    /// and the streaming detector discover the same set in different
    /// orders).
    pub fn new(chain: &'a Chain, dataset: &'a Dataset, oracle: &'a Oracle) -> Self {
        let mut observations: Vec<&daas_detector::PsObservation> =
            dataset.observations.iter().collect();
        observations.sort_unstable_by_key(|o| o.tx);
        let incidents =
            observations.into_iter().map(|obs| measure_observation(chain, oracle, obs)).collect();
        Self::from_incidents(chain, dataset, oracle, std::sync::Arc::new(incidents))
    }

    /// Builds the context around incidents that were already attributed
    /// and valued (the streaming path: `LiveMeasure` re-uses its running
    /// incident set instead of re-walking the chain). `incidents` must be
    /// in transaction order — the canonical order [`MeasureCtx::new`]
    /// produces. The vector is `Arc`-shared so the streaming path can
    /// hand over its cached canonical set without copying it.
    pub fn from_incidents(
        chain: &'a Chain,
        dataset: &'a Dataset,
        oracle: &'a Oracle,
        incidents: std::sync::Arc<Vec<MeasuredIncident>>,
    ) -> Self {
        debug_assert!(
            incidents.windows(2).all(|w| w[0].tx < w[1].tx),
            "incidents must be unique and in transaction order"
        );
        MeasureCtx { chain, dataset, oracle, incidents, features: FeatureCache::new(chain, dataset) }
    }

    /// The attributed incidents, in transaction order.
    pub fn incidents(&self) -> &[MeasuredIncident] {
        &self.incidents
    }

    /// The shared per-account feature extractor (memoised, `Sync`).
    pub fn features(&self) -> &FeatureCache<'a> {
        &self.features
    }

    /// Warms the feature memo for every victim and operator across
    /// `threads` workers (no-op when `threads <= 1`) — the reports then
    /// read memoised features instead of walking histories inline.
    pub fn prewarm_features(&self, threads: usize) {
        if threads <= 1 {
            return;
        }
        let mut accounts = self.victims();
        accounts.extend(self.dataset.operators.iter().copied());
        self.features.prewarm(&accounts, threads);
    }

    /// Distinct victim accounts.
    pub fn victims(&self) -> Vec<Address> {
        let mut v: Vec<Address> = self.incidents.iter().map(|i| i.victim).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total USD loss per victim. A `BTreeMap` so every consumer
    /// iterates (and float-accumulates) in address order — byte-stable
    /// across runs, which the parallel-equivalence suite relies on.
    pub fn loss_per_victim(&self) -> BTreeMap<Address, f64> {
        let mut m = BTreeMap::new();
        for inc in self.incidents.iter() {
            *m.entry(inc.victim).or_insert(0.0) += inc.usd;
        }
        m
    }

    /// Total USD profit per operator account, in address order (see
    /// [`MeasureCtx::loss_per_victim`]).
    pub fn profit_per_operator(&self) -> BTreeMap<Address, f64> {
        let mut m = BTreeMap::new();
        for inc in self.incidents.iter() {
            *m.entry(inc.operator).or_insert(0.0) += inc.operator_usd;
        }
        m
    }

    /// Total USD profit per affiliate account, in address order (see
    /// [`MeasureCtx::loss_per_victim`]).
    pub fn profit_per_affiliate(&self) -> BTreeMap<Address, f64> {
        let mut m = BTreeMap::new();
        for inc in self.incidents.iter() {
            *m.entry(inc.affiliate).or_insert(0.0) += inc.affiliate_usd;
        }
        m
    }
}

/// Attributes and values a single profit-sharing observation — the unit
/// of work behind both [`MeasureCtx::new`] and the streaming
/// accumulator's per-event ingestion.
pub(crate) fn measure_observation(
    chain: &Chain,
    oracle: &Oracle,
    obs: &daas_detector::PsObservation,
) -> MeasuredIncident {
    let tx = chain.tx(obs.tx);
    let victim = attribute_victim(chain, obs);
    let value_usd = |amount| match obs.asset {
        Asset::Eth => oracle.wei_to_usd(amount, obs.timestamp),
        Asset::Erc20(token) => oracle.token_to_usd(token, amount, obs.timestamp).unwrap_or(0.0),
        Asset::Erc721 { .. } => 0.0,
    };
    let operator_usd = value_usd(obs.operator_amount);
    let affiliate_usd = value_usd(obs.affiliate_amount);
    MeasuredIncident {
        tx: obs.tx,
        timestamp: tx.timestamp(),
        victim,
        contract: obs.contract,
        operator: obs.operator,
        affiliate: obs.affiliate,
        ratio_bps: obs.ratio_bps,
        usd: operator_usd + affiliate_usd,
        operator_usd,
        affiliate_usd,
    }
}

/// Attributes the victim of an observation:
/// * token sweeps: the transfer source (the approving victim);
/// * payable-entry ETH drains: the depositing sender;
/// * deposit-less ETH payouts (NFT liquidations): walk the contract's
///   history backwards for the most recent NFT transferred *into* the
///   contract — its previous owner is the victim.
fn attribute_victim(chain: &Chain, obs: &daas_detector::PsObservation) -> Address {
    if obs.source != obs.contract {
        return obs.source; // transferFrom sweep: source is the victim
    }
    let tx = chain.tx(obs.tx);
    if !tx.value().is_zero() {
        return tx.from(); // payable entry: the depositor
    }
    // NFT liquidation payout: find the latest inbound NFT before this tx.
    let history = chain.txs_of(obs.contract);
    let pos = history.partition_point(|&id| id < obs.tx);
    for &txid in history[..pos].iter().rev() {
        let prior = chain.tx(txid);
        for t in prior.transfers() {
            if matches!(t.asset, Asset::Erc721 { .. }) && t.to == obs.contract {
                return t.from;
            }
        }
    }
    // Fallback: no NFT inbound found (shouldn't happen on well-formed
    // traces) — attribute to the caller.
    tx.from()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec, TokenKind};
    use daas_detector::classify_tx;
    use eth_types::units::ether;
    use eth_types::U256;

    struct Fixture {
        chain: Chain,
        dataset: Dataset,
        oracle: Oracle,
        victim: Address,
        operator: Address,
        affiliate: Address,
    }

    fn fixture() -> Fixture {
        let mut chain = Chain::new();
        let oracle = Oracle::new();
        let operator = chain.create_eoa_funded(b"op", ether(10)).unwrap();
        let affiliate = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", ether(100)).unwrap();
        let contract = chain
            .deploy_contract(
                operator,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut dataset = Dataset::default();

        // ETH drain.
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract, ether(10), affiliate).unwrap();
        dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());

        // NFT drain → sale → distribution.
        let nft = chain.deploy_token(operator, "AZUKI", 0, TokenKind::Erc721).unwrap();
        let mowner = chain.create_eoa_funded(b"mo", ether(1)).unwrap();
        let market = chain.deploy_contract(mowner, ContractKind::Marketplace).unwrap();
        chain.mint_eth(market, ether(1_000)).unwrap();
        chain.mint_nft(nft, victim, 5).unwrap();
        chain.approve_nft_all(victim, nft, contract, true).unwrap();
        chain.advance(12);
        chain.drain_nft(operator, contract, nft, victim, 5).unwrap();
        chain.advance(12);
        chain.sell_nft(operator, market, nft, 5, contract, ether(20)).unwrap();
        chain.advance(12);
        let tx = chain.distribute_eth(operator, contract, ether(20), affiliate).unwrap();
        dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());

        Fixture { chain, dataset, oracle, victim, operator, affiliate }
    }

    #[test]
    fn attributes_depositor_and_nft_victim() {
        let f = fixture();
        let ctx = MeasureCtx::new(&f.chain, &f.dataset, &f.oracle);
        assert_eq!(ctx.incidents().len(), 2);
        for inc in ctx.incidents() {
            assert_eq!(inc.victim, f.victim, "victim misattributed");
        }
        assert_eq!(ctx.victims(), vec![f.victim]);
    }

    #[test]
    fn usd_valuation_sums_shares() {
        let f = fixture();
        let ctx = MeasureCtx::new(&f.chain, &f.dataset, &f.oracle);
        // 10 ETH at genesis ≈ $16,000 (minus nothing; dust is sub-cent).
        let eth_inc = &ctx.incidents()[0];
        assert!((eth_inc.usd - 16_000.0).abs() < 1.0, "usd {}", eth_inc.usd);
        assert!((eth_inc.operator_usd - 3_200.0).abs() < 1.0);
        assert!((eth_inc.affiliate_usd - 12_800.0).abs() < 1.0);
        // Rollups.
        let ops = ctx.profit_per_operator();
        assert!((ops[&f.operator] - (3_200.0 + 6_400.0)).abs() < 2.0);
        let affs = ctx.profit_per_affiliate();
        assert!((affs[&f.affiliate] - (12_800.0 + 25_600.0)).abs() < 2.0);
        let losses = ctx.loss_per_victim();
        assert!((losses[&f.victim] - 48_000.0).abs() < 2.0);
    }

    #[test]
    fn erc20_victim_is_source() {
        let mut f = fixture();
        let token = {
            let op = f.operator;
            f.chain.deploy_token(op, "USDC", 6, TokenKind::Erc20).unwrap()
        };
        let mut oracle = Oracle::new();
        oracle.set_quote(token, daas_pricing::Quote::Stable { units_per_usd: 1_000_000 });
        let contract = f.dataset.contracts.iter().next().copied().unwrap();
        f.chain.mint_erc20(token, f.victim, U256::from_u64(10_000_000)).unwrap();
        f.chain.approve_erc20(f.victim, token, contract, U256::MAX).unwrap();
        f.chain.advance(12);
        let tx = f
            .chain
            .drain_erc20(f.operator, contract, token, f.victim, U256::from_u64(10_000_000), f.affiliate)
            .unwrap();
        f.dataset.absorb(classify_tx(f.chain.tx(tx), &Default::default()).unwrap());
        let ctx = MeasureCtx::new(&f.chain, &f.dataset, &oracle);
        let inc = ctx.incidents().last().unwrap();
        assert_eq!(inc.victim, f.victim);
        assert!((inc.usd - 10.0).abs() < 1e-6, "usd {}", inc.usd);
    }

    #[test]
    fn unquoted_token_values_zero() {
        let mut f = fixture();
        let token = f.chain.deploy_token(f.operator, "SHIB", 18, TokenKind::Erc20).unwrap();
        let contract = f.dataset.contracts.iter().next().copied().unwrap();
        f.chain.mint_erc20(token, f.victim, ether(1)).unwrap();
        f.chain.approve_erc20(f.victim, token, contract, U256::MAX).unwrap();
        f.chain.advance(12);
        let tx = f
            .chain
            .drain_erc20(f.operator, contract, token, f.victim, ether(1), f.affiliate)
            .unwrap();
        f.dataset.absorb(classify_tx(f.chain.tx(tx), &Default::default()).unwrap());
        let ctx = MeasureCtx::new(&f.chain, &f.dataset, &f.oracle);
        assert_eq!(ctx.incidents().last().unwrap().usd, 0.0);
    }
}
