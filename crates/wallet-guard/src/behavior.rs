//! dApp behaviour models: what a site asks a connected wallet to sign.

use daas_chain::Asset;
use eth_types::{Address, U256};
use serde::{Deserialize, Serialize};

/// One asset position in a probing wallet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Holding {
    /// The asset held.
    pub asset: Asset,
    /// Amount held (1 for an NFT).
    pub amount: U256,
}

impl Holding {
    /// ETH position.
    pub fn eth(amount: U256) -> Self {
        Holding { asset: Asset::Eth, amount }
    }

    /// ERC-20 position.
    pub fn erc20(token: Address, amount: U256) -> Self {
        Holding { asset: Asset::Erc20(token), amount }
    }

    /// NFT position.
    pub fn nft(token: Address, id: u64) -> Self {
        Holding { asset: Asset::Erc721 { token, id }, amount: U256::ONE }
    }
}

/// A signing request a site presents to the wallet — the observable the
/// §9 defenses work on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignRequest {
    /// Call target.
    pub to: Address,
    /// ETH value attached.
    pub value: U256,
    /// ERC-20 approvals requested: `(token, spender, amount)`.
    pub erc20_approvals: Vec<(Address, Address, U256)>,
    /// NFT `setApprovalForAll` requests: `(collection, operator)`.
    pub nft_approvals: Vec<(Address, Address)>,
    /// The affiliate parameter drainer calldata carries (Listing 1);
    /// honest requests have none.
    pub affiliate_hint: Option<Address>,
}

/// What a site asks of a connected wallet, as a function of the wallet's
/// holdings. Implemented by site models; a real deployment would derive
/// this from the site's proposed transactions.
pub trait DappBehavior {
    /// The signing requests shown to `visitor` given its holdings.
    fn requests(&self, visitor: Address, holdings: &[Holding]) -> Vec<SignRequest>;
}

/// A wallet drainer: requests the *entire* portfolio — all ETH into the
/// profit-sharing contract's payable entry, unlimited approvals for
/// every ERC-20, operator rights on every NFT collection (§2.2: the
/// toolkit "automatically prompts users to connect their wallets, scans
/// their tokens, and generates phishing transactions").
#[derive(Debug, Clone)]
pub struct DrainerBehavior {
    /// The profit-sharing contract everything is routed to.
    pub contract: Address,
    /// The affiliate credited by the split.
    pub affiliate: Address,
}

impl DappBehavior for DrainerBehavior {
    fn requests(&self, _visitor: Address, holdings: &[Holding]) -> Vec<SignRequest> {
        let mut requests = Vec::new();
        let mut erc20_approvals = Vec::new();
        let mut nft_approvals = Vec::new();
        let mut eth_value = U256::ZERO;
        for holding in holdings {
            match holding.asset {
                Asset::Eth => eth_value = holding.amount,
                Asset::Erc20(token) => erc20_approvals.push((token, self.contract, U256::MAX)),
                Asset::Erc721 { token, .. } => {
                    if !nft_approvals.contains(&(token, self.contract)) {
                        nft_approvals.push((token, self.contract));
                    }
                }
            }
        }
        if !eth_value.is_zero() {
            requests.push(SignRequest {
                to: self.contract,
                value: eth_value,
                erc20_approvals: Vec::new(),
                nft_approvals: Vec::new(),
                affiliate_hint: Some(self.affiliate),
            });
        }
        if !erc20_approvals.is_empty() || !nft_approvals.is_empty() {
            requests.push(SignRequest {
                to: self.contract,
                value: U256::ZERO,
                erc20_approvals,
                nft_approvals,
                affiliate_hint: Some(self.affiliate),
            });
        }
        requests
    }
}

/// An honest checkout: one bounded payment (or a single exact-amount
/// token approval), independent of everything else the wallet holds.
#[derive(Debug, Clone)]
pub struct HonestCheckout {
    /// The merchant contract.
    pub merchant: Address,
    /// Price in wei.
    pub price: U256,
    /// Accepted stablecoin, if the checkout supports token payment.
    pub token: Option<Address>,
}

impl DappBehavior for HonestCheckout {
    fn requests(&self, _visitor: Address, holdings: &[Holding]) -> Vec<SignRequest> {
        // Prefer token payment when the visitor holds the accepted token.
        if let Some(token) = self.token {
            let holds_token = holdings
                .iter()
                .any(|h| h.asset == Asset::Erc20(token) && h.amount >= self.price);
            if holds_token {
                return vec![SignRequest {
                    to: self.merchant,
                    value: U256::ZERO,
                    erc20_approvals: vec![(token, self.merchant, self.price)],
                    nft_approvals: Vec::new(),
                    affiliate_hint: None,
                }];
            }
        }
        vec![SignRequest {
            to: self.merchant,
            value: self.price,
            erc20_approvals: Vec::new(),
            nft_approvals: Vec::new(),
            affiliate_hint: None,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[b'b', n])
    }

    #[test]
    fn drainer_requests_everything() {
        let d = DrainerBehavior { contract: addr(1), affiliate: addr(2) };
        let holdings = vec![
            Holding::eth(U256::from_u64(1_000)),
            Holding::erc20(addr(10), U256::from_u64(500)),
            Holding::erc20(addr(11), U256::from_u64(700)),
            Holding::nft(addr(12), 7),
        ];
        let reqs = d.requests(addr(9), &holdings);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].value, U256::from_u64(1_000));
        assert_eq!(reqs[0].affiliate_hint, Some(addr(2)));
        assert_eq!(reqs[1].erc20_approvals.len(), 2);
        assert!(reqs[1].erc20_approvals.iter().all(|(_, s, a)| *s == addr(1) && *a == U256::MAX));
        assert_eq!(reqs[1].nft_approvals, vec![(addr(12), addr(1))]);
    }

    #[test]
    fn drainer_with_no_holdings_requests_nothing() {
        let d = DrainerBehavior { contract: addr(1), affiliate: addr(2) };
        assert!(d.requests(addr(9), &[]).is_empty());
    }

    #[test]
    fn honest_checkout_is_bounded_and_holding_independent() {
        let c = HonestCheckout { merchant: addr(3), price: U256::from_u64(100), token: None };
        let rich = vec![
            Holding::eth(U256::from_u64(1_000_000)),
            Holding::erc20(addr(10), U256::from_u64(999)),
        ];
        let reqs = c.requests(addr(9), &rich);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].value, U256::from_u64(100));
        assert!(reqs[0].erc20_approvals.is_empty());
        assert_eq!(reqs[0].affiliate_hint, None);
    }

    #[test]
    fn honest_checkout_token_path_is_exact_amount() {
        let c = HonestCheckout {
            merchant: addr(3),
            price: U256::from_u64(100),
            token: Some(addr(10)),
        };
        let holdings = vec![Holding::erc20(addr(10), U256::from_u64(5_000))];
        let reqs = c.requests(addr(9), &holdings);
        assert_eq!(reqs[0].erc20_approvals, vec![(addr(10), addr(3), U256::from_u64(100))]);
    }
}
