//! Wallet-side countermeasures — a working prototype of the three
//! defenses the paper proposes in §9 ("More countermeasures are in
//! need"):
//!
//! 1. **Domain check** ([`WalletGuard::check_domain`]): before the wallet
//!    connects to a dApp, verify the site is not a known drainer
//!    deployment — by reported-domain list and by live toolkit
//!    fingerprint match.
//! 2. **Transaction simulation** ([`WalletGuard::simulate`]): before the
//!    user signs, dry-run the transaction (the paper cites Alchemy-style
//!    simulation APIs), inspect the resulting fund flow and approvals,
//!    and alert when they touch a blacklisted account — or when the flow
//!    has the profit-sharing *shape* even without a blacklist hit.
//! 3. **Multi-account test** ([`multi_account_test`]): probe the site
//!    with several synthetic wallets holding different token types; a
//!    site that requests authorization over **all** tokens across
//!    **all** accounts reveals drain intent.
//!
//! The module also ships the two reference dApp behaviours the test
//! needs: a drainer (asks for everything, routed to its profit-sharing
//! contract) and an honest checkout (asks for one bounded payment).
//!
//! When a `daas-serve` daemon is running, [`LiveGuardClient`] upgrades
//! the static blocklist to a live one: each pre-signing check resolves
//! the recipient against the daemon's latest snapshot epoch (family
//! membership + drainer-contract lookup) over its Unix socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod guard;
mod live;

pub use behavior::{DappBehavior, DrainerBehavior, HonestCheckout, Holding, SignRequest};
pub use guard::{
    multi_account_test, DomainVerdict, MultiAccountVerdict, SimulationVerdict, WalletGuard,
};
pub use live::{LiveGuardClient, LiveRisk, LiveStatus};
