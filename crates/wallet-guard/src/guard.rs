//! The guard itself: domain check, pre-signing simulation, and the
//! multi-account drain-intent test.

use std::collections::HashSet;

use daas_chain::{Asset, Chain};
use daas_detector::{classify_tx, ClassifierConfig};
use eth_types::Address;
use serde::{Deserialize, Serialize};
use webscan::{FingerprintDb, Site};

use crate::behavior::{DappBehavior, Holding, SignRequest};

/// Verdict of the pre-connect domain check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainVerdict {
    /// Domain is on the reported-phishing list.
    KnownPhishing,
    /// Live fingerprint match against a drainer toolkit.
    ToolkitDetected {
        /// Attributed family.
        family: String,
    },
    /// Nothing known against the domain.
    NoFindings,
}

/// Verdict of the pre-signing simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimulationVerdict {
    /// A simulated transfer or approval touches a blacklisted account:
    /// the wallet must refuse.
    Blocked {
        /// The blacklisted account that was about to be paid/approved.
        account: Address,
    },
    /// No blacklist hit, but the simulated fund flow has the
    /// profit-sharing shape (two fixed-ratio transfers from one
    /// source): warn the user.
    SuspiciousShape {
        /// The matched operator ratio, basis points.
        ratio_bps: u32,
    },
    /// The request could not be simulated (e.g. insufficient balance):
    /// surface as suspicious rather than silently passing.
    SimulationFailed {
        /// Why the dry run failed.
        reason: String,
    },
    /// Simulation ran and found nothing alarming.
    Clean,
}

/// Verdict of the multi-account test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MultiAccountVerdict {
    /// The site requested authorization over (nearly) every token type
    /// across every probe account: drain intent.
    DrainIntent {
        /// Fraction of probed holdings the site tried to control.
        coverage: f64,
    },
    /// Requests were bounded and holding-independent.
    Bounded {
        /// Fraction of probed holdings the site tried to control.
        coverage: f64,
    },
}

/// The §9 wallet guard.
#[derive(Debug, Clone, Default)]
pub struct WalletGuard {
    blocklist: HashSet<Address>,
    phishing_domains: HashSet<String>,
    fingerprints: FingerprintDb,
    classifier: ClassifierConfig,
}

impl WalletGuard {
    /// Creates an empty guard (no intelligence loaded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a phishing-account blocklist (e.g. a reported dataset).
    pub fn with_blocklist(mut self, accounts: impl IntoIterator<Item = Address>) -> Self {
        self.blocklist.extend(accounts);
        self
    }

    /// Loads reported phishing domains.
    pub fn with_phishing_domains<S: Into<String>>(
        mut self,
        domains: impl IntoIterator<Item = S>,
    ) -> Self {
        self.phishing_domains.extend(domains.into_iter().map(Into::into));
        self
    }

    /// Loads a drainer-toolkit fingerprint database.
    pub fn with_fingerprints(mut self, db: FingerprintDb) -> Self {
        self.fingerprints = db;
        self
    }

    /// Number of blocklisted accounts.
    pub fn blocklist_len(&self) -> usize {
        self.blocklist.len()
    }

    /// §9 defense 1: check a domain (and, when the wallet can fetch it,
    /// the site's file manifest) before connecting.
    pub fn check_domain(&self, domain: &str, site: Option<&Site>) -> DomainVerdict {
        if self.phishing_domains.contains(domain) {
            return DomainVerdict::KnownPhishing;
        }
        if let Some(site) = site {
            if let Some(family) = self.fingerprints.match_site(&site.files) {
                return DomainVerdict::ToolkitDetected { family: family.to_owned() };
            }
        }
        DomainVerdict::NoFindings
    }

    /// §9 defense 2: dry-run the request on a copy of the chain and
    /// inspect the resulting fund flow — the local equivalent of the
    /// Alchemy simulation API the paper cites.
    pub fn simulate(&self, chain: &Chain, sender: Address, request: &SignRequest) -> SimulationVerdict {
        // Approvals are visible without execution: a spender on the
        // blocklist is an immediate refusal.
        for (_, spender, _) in &request.erc20_approvals {
            if self.blocklist.contains(spender) {
                return SimulationVerdict::Blocked { account: *spender };
            }
        }
        for (_, operator) in &request.nft_approvals {
            if self.blocklist.contains(operator) {
                return SimulationVerdict::Blocked { account: *operator };
            }
        }
        if self.blocklist.contains(&request.to) {
            return SimulationVerdict::Blocked { account: request.to };
        }

        // Value transfers: execute on a scratch copy and inspect the
        // trace (this is where a profit-sharing contract reveals its
        // split even if no account involved is blacklisted yet).
        if !request.value.is_zero() {
            let mut scratch = chain.clone();
            let result = if scratch.profit_sharing_spec(request.to).is_some() {
                let affiliate = request.affiliate_hint.unwrap_or(sender);
                scratch.claim_eth(sender, request.to, request.value, affiliate)
            } else {
                scratch.transfer_eth(sender, request.to, request.value)
            };
            let tx_id = match result {
                Ok(id) => id,
                Err(e) => {
                    return SimulationVerdict::SimulationFailed { reason: e.to_string() }
                }
            };
            let tx = scratch.tx(tx_id);
            for transfer in tx.transfers() {
                if transfer.to != sender && self.blocklist.contains(&transfer.to) {
                    return SimulationVerdict::Blocked { account: transfer.to };
                }
            }
            if let Some(obs) = classify_tx(tx, &self.classifier) {
                return SimulationVerdict::SuspiciousShape { ratio_bps: obs.ratio_bps };
            }
        }
        SimulationVerdict::Clean
    }
}

/// §9 defense 3: probe the site with several synthetic wallets and
/// measure how much of their combined holdings the site tries to gain
/// control over. Above `threshold` (e.g. 0.9) the site has drain
/// intent; honest dApps request a fixed, holding-independent amount.
pub fn multi_account_test(
    behavior: &dyn DappBehavior,
    probes: &[(Address, Vec<Holding>)],
    threshold: f64,
) -> MultiAccountVerdict {
    let mut positions = 0usize;
    let mut controlled = 0usize;
    for (visitor, holdings) in probes {
        let requests = behavior.requests(*visitor, holdings);
        for holding in holdings {
            positions += 1;
            if requests.iter().any(|r| request_controls(r, holding)) {
                controlled += 1;
            }
        }
    }
    let coverage = controlled as f64 / positions.max(1) as f64;
    if coverage >= threshold {
        MultiAccountVerdict::DrainIntent { coverage }
    } else {
        MultiAccountVerdict::Bounded { coverage }
    }
}

/// Does the request gain control over the holding? Full-balance value
/// transfers, unlimited (or full-balance) ERC-20 approvals, and NFT
/// operator rights all count.
fn request_controls(request: &SignRequest, holding: &Holding) -> bool {
    match holding.asset {
        Asset::Eth => request.value >= holding.amount && !request.value.is_zero(),
        Asset::Erc20(token) => request
            .erc20_approvals
            .iter()
            .any(|(t, _, amount)| *t == token && *amount >= holding.amount),
        Asset::Erc721 { token, .. } => {
            request.nft_approvals.iter().any(|(t, _)| *t == token)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{DrainerBehavior, HonestCheckout};
    use eth_types::U256;
    use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec};
    use eth_types::units::ether;
    use webscan::{Fingerprint, SiteFile};

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[b'g', n])
    }

    fn chain_with_drainer() -> (Chain, Address, Address, Address) {
        let mut chain = Chain::new();
        let operator = chain.create_eoa_funded(b"g/op", ether(1)).unwrap();
        let user = chain.create_eoa_funded(b"g/user", ether(100)).unwrap();
        let affiliate = chain.create_eoa(b"g/aff").unwrap();
        let contract = chain
            .deploy_contract(
                operator,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        (chain, user, contract, affiliate)
    }

    #[test]
    fn domain_check_layers() {
        let mut db = FingerprintDb::new();
        db.add(Fingerprint { file: "seaport.js".into(), content: 7, family: "Inferno Drainer".into() });
        let guard = WalletGuard::new()
            .with_phishing_domains(["claim-pepe.com"])
            .with_fingerprints(db);
        assert_eq!(guard.check_domain("claim-pepe.com", None), DomainVerdict::KnownPhishing);
        let site = Site {
            domain: "fresh-drainer.xyz".into(),
            deployed_at: 0,
            has_tls: true,
            files: vec![SiteFile::new("seaport.js", 7)],
        };
        assert_eq!(
            guard.check_domain("fresh-drainer.xyz", Some(&site)),
            DomainVerdict::ToolkitDetected { family: "Inferno Drainer".into() }
        );
        assert_eq!(guard.check_domain("example.org", None), DomainVerdict::NoFindings);
    }

    #[test]
    fn simulation_blocks_blacklisted_target() {
        let (chain, user, contract, affiliate) = chain_with_drainer();
        let guard = WalletGuard::new().with_blocklist([contract]);
        let request = SignRequest {
            to: contract,
            value: ether(1),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: Some(affiliate),
        };
        assert_eq!(
            guard.simulate(&chain, user, &request),
            SimulationVerdict::Blocked { account: contract }
        );
    }

    #[test]
    fn simulation_flags_unlisted_drainer_by_shape() {
        // The drainer contract is brand new — nothing blacklisted — but
        // the simulated trace shows the two-transfer ratio split.
        let (chain, user, contract, affiliate) = chain_with_drainer();
        let guard = WalletGuard::new();
        let request = SignRequest {
            to: contract,
            value: ether(10),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: Some(affiliate),
        };
        assert_eq!(
            guard.simulate(&chain, user, &request),
            SimulationVerdict::SuspiciousShape { ratio_bps: 2000 }
        );
        // And the dry run left the real chain untouched.
        assert_eq!(chain.eth_balance(user), ether(100));
    }

    #[test]
    fn simulation_blocks_blacklisted_beneficiary() {
        // The contract is unknown but the operator receiving the split
        // is already reported: the simulated *internal* transfer hits
        // the blocklist.
        let (chain, user, contract, affiliate) = chain_with_drainer();
        let operator = chain.profit_sharing_spec(contract).unwrap().operator;
        let guard = WalletGuard::new().with_blocklist([operator]);
        let request = SignRequest {
            to: contract,
            value: ether(10),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: Some(affiliate),
        };
        assert_eq!(
            guard.simulate(&chain, user, &request),
            SimulationVerdict::Blocked { account: operator }
        );
    }

    #[test]
    fn simulation_blocks_approval_to_blacklisted_spender() {
        let (chain, user, contract, _) = chain_with_drainer();
        let guard = WalletGuard::new().with_blocklist([contract]);
        let request = SignRequest {
            to: addr(50),
            value: U256::ZERO,
            erc20_approvals: vec![(addr(60), contract, U256::MAX)],
            nft_approvals: vec![],
            affiliate_hint: None,
        };
        assert_eq!(
            guard.simulate(&chain, user, &request),
            SimulationVerdict::Blocked { account: contract }
        );
    }

    #[test]
    fn simulation_passes_plain_payment() {
        let (mut chain, user, _, _) = chain_with_drainer();
        let merchant = chain.create_eoa(b"g/merchant").unwrap();
        let guard = WalletGuard::new();
        let request = SignRequest {
            to: merchant,
            value: ether(1),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: None,
        };
        assert_eq!(guard.simulate(&chain, user, &request), SimulationVerdict::Clean);
    }

    #[test]
    fn simulation_failure_is_surfaced() {
        let (chain, user, contract, affiliate) = chain_with_drainer();
        let guard = WalletGuard::new();
        let request = SignRequest {
            to: contract,
            value: ether(10_000), // more than the user has
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: Some(affiliate),
        };
        assert!(matches!(
            guard.simulate(&chain, user, &request),
            SimulationVerdict::SimulationFailed { .. }
        ));
    }

    #[test]
    fn multi_account_test_separates_drainer_from_checkout() {
        let drainer = DrainerBehavior { contract: addr(1), affiliate: addr(2) };
        let checkout = HonestCheckout { merchant: addr(3), price: ether(1), token: None };
        let probes = vec![
            (addr(10), vec![Holding::eth(ether(5)), Holding::erc20(addr(20), ether(100))]),
            (addr(11), vec![Holding::erc20(addr(21), ether(50)), Holding::nft(addr(22), 3)]),
            (addr(12), vec![Holding::eth(ether(900))]),
        ];
        match multi_account_test(&drainer, &probes, 0.9) {
            MultiAccountVerdict::DrainIntent { coverage } => assert!(coverage >= 0.99),
            other => panic!("drainer not flagged: {other:?}"),
        }
        match multi_account_test(&checkout, &probes, 0.9) {
            MultiAccountVerdict::Bounded { coverage } => {
                // The checkout only ever controls the fixed payment.
                assert!(coverage < 0.5, "coverage {coverage}");
            }
            other => panic!("honest checkout flagged: {other:?}"),
        }
    }

    #[test]
    fn multi_account_test_empty_probes() {
        let checkout = HonestCheckout { merchant: addr(3), price: ether(1), token: None };
        assert!(matches!(
            multi_account_test(&checkout, &[], 0.9),
            MultiAccountVerdict::Bounded { .. }
        ));
    }
}
