//! The snapshot-backed live risk check: a wallet-side client for the
//! `daas-serve` daemon's Unix socket.
//!
//! Where [`crate::WalletGuard`] works from a static blocklist baked in
//! at construction, [`LiveGuardClient`] asks the running intelligence
//! daemon — every answer is resolved against the daemon's latest
//! published snapshot epoch, so a contract that entered the dataset a
//! window ago is already flagged here. The client is plain std
//! (`UnixStream` + one JSON line per query) and holds no daas-serve
//! types, so wallet code depends only on the wire protocol.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use eth_types::Address;
use serde::Deserialize;

/// The daemon's answer to one address-risk query.
#[derive(Debug, Clone, Deserialize)]
pub struct LiveRisk {
    /// Snapshot epoch the answer was resolved against.
    pub epoch: u64,
    /// `true` when the address holds any DaaS role at that epoch.
    pub is_daas: bool,
    /// Role names (`"contract"`, `"operator"`, `"affiliate"`).
    #[serde(default)]
    pub roles: Vec<String>,
    /// Dense id of the containing family, if clustered.
    #[serde(default)]
    pub family: Option<usize>,
    /// Name of that family.
    #[serde(default)]
    pub family_name: Option<String>,
}

impl LiveRisk {
    /// `true` when the address is a known profit-sharing (drainer)
    /// contract — the strongest pre-signing signal: a transaction whose
    /// recipient is one of these is a drain in progress.
    pub fn is_drainer_contract(&self) -> bool {
        self.roles.iter().any(|r| r == "contract")
    }
}

/// Daemon stream-position summary (the `status` endpoint).
#[derive(Debug, Clone, Deserialize)]
pub struct LiveStatus {
    /// Snapshot epoch.
    pub epoch: u64,
    /// Transactions ingested.
    pub watermark: u64,
    /// Blocks ingested.
    pub blocks_ingested: u64,
    /// Blocks in the replayed chain.
    pub total_blocks: u64,
    /// `true` once the whole chain is in.
    pub done: bool,
    /// Families at this epoch.
    pub families: usize,
    /// Known drainer contracts at this epoch.
    pub contracts: usize,
}

#[derive(Debug, Clone, Deserialize)]
struct ErrorEnvelope {
    ok: bool,
    #[serde(default)]
    error: Option<String>,
}

/// A connected wallet-side client of the `daas-serve` socket.
pub struct LiveGuardClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl LiveGuardClient {
    /// Connects to a daemon socket.
    pub fn connect(socket: &Path) -> Result<Self, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("connect {}: {e}", socket.display()))?;
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(LiveGuardClient { reader, writer: stream })
    }

    fn round_trip(&mut self, request: &str) -> Result<String, String> {
        writeln!(self.writer, "{request}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".into());
        }
        let envelope: ErrorEnvelope =
            serde_json::from_str(&line).map_err(|e| format!("bad response: {e}"))?;
        if !envelope.ok {
            return Err(envelope.error.unwrap_or_else(|| "daemon error".into()));
        }
        Ok(line)
    }

    /// Sends one raw protocol line and returns the daemon's response
    /// line (error responses become `Err`). The typed helpers below
    /// cover the wallet-side queries; this escape hatch reaches the
    /// operator commands (`run`, `checkpoint`, `shutdown`, …).
    pub fn command(&mut self, request: &str) -> Result<String, String> {
        self.round_trip(request)
    }

    /// Resolves one address against the daemon's latest snapshot:
    /// family membership plus the drainer-contract flag.
    pub fn check_address(&mut self, address: Address) -> Result<LiveRisk, String> {
        let line =
            self.round_trip(&format!("{{\"cmd\":\"risk\",\"address\":\"{address}\"}}"))?;
        serde_json::from_str(&line).map_err(|e| format!("bad risk response: {e}"))
    }

    /// The daemon's current stream position.
    pub fn status(&mut self) -> Result<LiveStatus, String> {
        let line = self.round_trip("{\"cmd\":\"status\"}")?;
        serde_json::from_str(&line).map_err(|e| format!("bad status response: {e}"))
    }

    /// Pre-signing check: refuse when the transaction's recipient is a
    /// known drainer contract or any clustered DaaS account. Returns
    /// the risk record so callers can render family context.
    pub fn check_recipient(&mut self, recipient: Address) -> Result<(bool, LiveRisk), String> {
        let risk = self.check_address(recipient)?;
        Ok((!risk.is_daas, risk))
    }
}
