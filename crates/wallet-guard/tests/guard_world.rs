//! Wallet-guard against a generated world: armed with the discovered
//! dataset and fingerprint DB, the guard must stop every drainer
//! interaction and pass benign ones.

use daas_detector::{build_dataset, SnowballConfig};
use daas_world::{World, WorldConfig};
use eth_types::units::ether;
use wallet_guard::{SignRequest, SimulationVerdict, WalletGuard};
use webscan::{Crawler, FingerprintDb};

#[test]
fn guard_blocks_every_discovered_contract() {
    let mut world = World::build(&WorldConfig::tiny(5)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let guard = WalletGuard::new().with_blocklist(
        dataset
            .contracts
            .iter()
            .chain(dataset.operators.iter())
            .chain(dataset.affiliates.iter())
            .copied(),
    );
    let user = world.chain.create_eoa_funded(b"t/guarded", ether(1_000)).unwrap();

    for &contract in dataset.contracts.iter() {
        let request = SignRequest {
            to: contract,
            value: ether(1),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: None,
        };
        assert!(
            matches!(guard.simulate(&world.chain, user, &request), SimulationVerdict::Blocked { .. }),
            "guard passed a drainer contract {contract}"
        );
    }
}

#[test]
fn shape_heuristic_catches_undiscovered_contracts() {
    // Even with an EMPTY blocklist, simulating a deposit into any
    // ground-truth drainer contract reveals the split.
    let mut world = World::build(&WorldConfig::tiny(5)).expect("world");
    let guard = WalletGuard::new();
    let user = world.chain.create_eoa_funded(b"t/unprotected", ether(1_000)).unwrap();
    let mut flagged = 0;
    let contracts = world.truth.all_contracts();
    for &contract in contracts.iter().take(25) {
        let request = SignRequest {
            to: contract,
            value: ether(1),
            erc20_approvals: vec![],
            nft_approvals: vec![],
            affiliate_hint: Some(user), // drainer calldata carries some affiliate
        };
        if matches!(
            guard.simulate(&world.chain, user, &request),
            SimulationVerdict::SuspiciousShape { .. }
        ) {
            flagged += 1;
        }
    }
    assert_eq!(flagged, 25.min(contracts.len()), "shape heuristic missed drainers");
}

#[test]
fn fingerprint_domain_check_over_world_sites() {
    let world = World::build(&WorldConfig::tiny(5)).expect("world");
    let mut db = FingerprintDb::new();
    for fp in &world.sites.seed_fingerprints {
        db.add(fp.clone());
    }
    for &idx in &world.sites.reported {
        db.expand_from_reported(&world.sites.sites[idx].files);
    }
    let guard = WalletGuard::new().with_fingerprints(db);
    let crawler = world.crawler();

    let mut drainer_hits = 0;
    let mut drainer_total = 0;
    for (site, truth) in world.sites.sites.iter().zip(&world.sites.truth) {
        let fetched = crawler.fetch(&site.domain);
        let verdict = guard.check_domain(&site.domain, fetched);
        match truth.family {
            Some(_) => {
                drainer_total += 1;
                if matches!(verdict, wallet_guard::DomainVerdict::ToolkitDetected { .. }) {
                    drainer_hits += 1;
                }
            }
            None => {
                assert!(
                    matches!(verdict, wallet_guard::DomainVerdict::NoFindings),
                    "benign site {} flagged",
                    site.domain
                );
            }
        }
    }
    // Coverage is partial (taken-down sites, toolkit builds never seen
    // on a reported site). At 1% world scale each build appears on only
    // a handful of sites, so expansion coverage is sparser than the
    // ~94% it reaches at paper scale — still, the majority must hit.
    assert!(
        drainer_hits * 2 >= drainer_total,
        "fingerprint coverage too low: {drainer_hits}/{drainer_total}"
    );
}
