//! Property-based tests: Levenshtein is a metric, similarity is bounded,
//! and triage is deterministic and case-insensitive.

use ct_watch::{levenshtein, similarity, DomainTriage};
use proptest::prelude::*;

fn arb_word() -> impl Strategy<Value = String> {
    "[a-z0-9]{0,12}"
}

proptest! {
    #[test]
    fn identity_and_positivity(a in arb_word(), b in arb_word()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        if a != b {
            prop_assert!(levenshtein(&a, &b) > 0);
        }
    }

    #[test]
    fn symmetry(a in arb_word(), b in arb_word()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn triangle_inequality(a in arb_word(), b in arb_word(), c in arb_word()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn distance_bounds(a in arb_word(), b in arb_word()) {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb), "lower bound violated");
        prop_assert!(d <= la.max(lb), "upper bound violated");
    }

    #[test]
    fn single_edit_is_distance_one(a in "[a-z]{1,10}", idx in 0usize..10, ch in b'a'..=b'z') {
        // Substituting one character changes distance by at most 1.
        let chars: Vec<char> = a.chars().collect();
        let idx = idx % chars.len();
        let mut mutated = chars.clone();
        mutated[idx] = ch as char;
        let mutated: String = mutated.into_iter().collect();
        prop_assert!(levenshtein(&a, &mutated) <= 1);
    }

    #[test]
    fn similarity_bounded_and_consistent(a in arb_word(), b in arb_word()) {
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - similarity(&b, &a)).abs() < 1e-12);
        if a == b {
            prop_assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn triage_deterministic_and_case_insensitive(stem in "[a-zA-Z0-9-]{1,20}", tld in "(com|dev|xyz)") {
        let triage = DomainTriage::default();
        let domain = format!("{stem}.{tld}");
        let a = triage.assess(&domain);
        let b = triage.assess(&domain);
        prop_assert_eq!(a.clone().map(|h| h.keyword), b.map(|h| h.keyword));
        let upper = domain.to_uppercase();
        let c = triage.assess(&upper);
        prop_assert_eq!(a.map(|h| h.keyword), c.map(|h| h.keyword));
    }

    #[test]
    fn exact_keyword_always_triages(kw_idx in 0usize..63, pad in "[a-z]{2,8}") {
        let kw = ct_watch::SUSPICIOUS_KEYWORDS[kw_idx];
        let triage = DomainTriage::default();
        let domain = format!("{pad}-{kw}.com");
        prop_assert!(triage.assess(&domain).is_some(), "missed {domain}");
    }
}
