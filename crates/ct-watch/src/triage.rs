//! Suspicious-domain triage: keyword and fuzzy matching over domain
//! tokens.

use serde::{Deserialize, Serialize};

use crate::keywords::SUSPICIOUS_KEYWORDS;
use crate::lev::{damerau_similarity, similarity};

/// How a domain matched the keyword list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchKind {
    /// A token (or label substring for long keywords) equals the keyword.
    Exact,
    /// A token is within Levenshtein similarity of the keyword; the ratio
    /// is carried for reporting.
    Fuzzy(f64),
}

/// A triage hit: which keyword fired and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageHit {
    /// The keyword from the curated list.
    pub keyword: &'static str,
    /// Exact or fuzzy, with the similarity ratio when fuzzy.
    pub kind: MatchKind,
}

/// The domain triage filter (paper §8.2 step 1).
#[derive(Debug, Clone)]
pub struct DomainTriage {
    keywords: Vec<&'static str>,
    threshold: f64,
    transpositions: bool,
}

impl Default for DomainTriage {
    fn default() -> Self {
        Self::new(0.8)
    }
}

impl DomainTriage {
    /// Creates a triage filter with the paper's keyword list and the given
    /// fuzzy-similarity threshold (the paper uses 0.8).
    pub fn new(threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0,1]");
        DomainTriage { keywords: SUSPICIOUS_KEYWORDS.to_vec(), threshold, transpositions: false }
    }

    /// Uses Damerau–Levenshtein similarity so adjacent-transposition
    /// typos (`airdorp`) cost one edit — an extension over the paper's
    /// plain Levenshtein.
    pub fn with_transpositions(mut self) -> Self {
        self.transpositions = true;
        self
    }

    /// Replaces the keyword list (for ablations).
    pub fn with_keywords(mut self, keywords: Vec<&'static str>) -> Self {
        self.keywords = keywords;
        self
    }

    /// The configured fuzzy threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Assesses a domain. Returns the best hit (exact beats fuzzy; higher
    /// similarity beats lower), or `None` if nothing fires.
    ///
    /// Tokenisation: the registrable labels (everything left of the TLD)
    /// are lowercased and split on `-`, `.` and `_`. Digits stay inside
    /// tokens so leet-speak typos (`cla1m`) remain one token for the
    /// fuzzy pass. Exact matching also scans whole labels for keyword
    /// substrings of length ≥ 5 (so `walletclaim.com` fires) — shorter
    /// keywords must match a whole token to avoid firing on e.g. `win`
    /// in `winter`.
    pub fn assess(&self, domain: &str) -> Option<TriageHit> {
        let lower = domain.to_lowercase();
        let labels = strip_tld(&lower);
        let tokens = tokenize(labels);
        let mut best: Option<TriageHit> = None;
        for &kw in &self.keywords {
            // Exact: whole token match, or substring for long keywords.
            let exact = tokens.contains(&kw)
                || (kw.len() >= 5 && labels.contains(kw));
            if exact {
                return Some(TriageHit { keyword: kw, kind: MatchKind::Exact });
            }
            // Fuzzy: per-token similarity. Tokens much shorter than the
            // keyword cannot clear the threshold; similarity() already
            // handles that via max-length normalisation.
            for t in &tokens {
                let sim = if self.transpositions {
                    damerau_similarity(t, kw)
                } else {
                    similarity(t, kw)
                };
                if sim >= self.threshold {
                    let better = match &best {
                        None => true,
                        Some(TriageHit { kind: MatchKind::Fuzzy(s), .. }) => sim > *s,
                        Some(TriageHit { kind: MatchKind::Exact, .. }) => false,
                    };
                    if better {
                        best = Some(TriageHit { keyword: kw, kind: MatchKind::Fuzzy(sim) });
                    }
                }
            }
        }
        best
    }

    /// Bulk assessment, keeping only hits.
    pub fn filter<'d>(
        &self,
        domains: impl IntoIterator<Item = &'d str>,
    ) -> Vec<(&'d str, TriageHit)> {
        domains
            .into_iter()
            .filter_map(|d| self.assess(d).map(|h| (d, h)))
            .collect()
    }
}

/// Everything left of the final label (the TLD). `claim-eth.pages.dev`
/// keeps `claim-eth.pages`.
fn strip_tld(domain: &str) -> &str {
    match domain.rfind('.') {
        Some(i) => &domain[..i],
        None => domain,
    }
}

fn tokenize(labels: &str) -> Vec<&str> {
    labels
        .split(['-', '.', '_'])
        .filter(|t| !t.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_token_hits() {
        let t = DomainTriage::default();
        let hit = t.assess("claim-pepe.com").unwrap();
        assert_eq!(hit.kind, MatchKind::Exact);
        assert!(["claim", "pepe"].contains(&hit.keyword));
        assert!(t.assess("mint.azuki-event.xyz").is_some());
        assert!(t.assess("official-airdrop.app").is_some());
    }

    #[test]
    fn long_keyword_substring_hits() {
        let t = DomainTriage::default();
        // "claim" (len 5) matches inside a fused label.
        let hit = t.assess("walletclaim.com").unwrap();
        assert_eq!(hit.kind, MatchKind::Exact);
    }

    #[test]
    fn short_keyword_requires_whole_token() {
        let t = DomainTriage::default();
        // "win" must not fire inside "winter".
        assert!(t.assess("winterwonder.org").is_none());
        // But fires as a token.
        assert!(t.assess("win-big.org").is_some());
    }

    #[test]
    fn fuzzy_typo_hits() {
        let t = DomainTriage::default();
        let hit = t.assess("cla1m-rewards-portal.net");
        // "rewards" and "portal" are exact; force a pure-fuzzy case:
        let hit2 = t.assess("cla1m.net").unwrap();
        match hit2.kind {
            MatchKind::Fuzzy(s) => assert!(s >= 0.8),
            MatchKind::Exact => panic!("expected fuzzy"),
        }
        assert!(hit.is_some());
    }

    #[test]
    fn digits_stay_in_tokens() {
        let t = DomainTriage::default();
        // "airdr0p" is one token; fuzzy vs "airdrop" at sim 6/7 ≈ 0.857.
        let hit = t.assess("airdr0p.com").unwrap();
        assert_eq!(hit.keyword, "airdrop");
        assert!(matches!(hit.kind, MatchKind::Fuzzy(s) if s >= 0.8));
        // Boundary case we accept missing: a digit *appended* to a short
        // keyword dilutes similarity below 0.8.
        assert!(t.assess("mint24.com").is_none());
        // Whereas a long keyword plus digits still exact-substring-fires.
        assert!(t.assess("claim2024.com").is_some());
    }

    #[test]
    fn benign_domains_pass_through() {
        let t = DomainTriage::default();
        for d in ["weather-report.com", "johns-bakery.net", "kernel.org", "rust-lang.org"] {
            assert!(t.assess(d).is_none(), "false hit on {d}");
        }
    }

    #[test]
    fn benign_lookalikes_are_the_cost_of_fuzzy() {
        // An insurance-claims site legitimately contains "claims": the
        // paper's triage forwards it to crawling, which then clears it.
        let t = DomainTriage::default();
        assert!(t.assess("acme-insurance-claims.com").is_some());
    }

    #[test]
    fn filter_bulk() {
        let t = DomainTriage::default();
        let hits = t.filter(vec!["claim-x.com", "plainsite.org", "mint-nft.xyz"]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn threshold_is_configurable() {
        let strict = DomainTriage::new(1.0);
        assert!(strict.assess("cla1m.net").is_none());
        let loose = DomainTriage::new(0.6);
        assert!(loose.assess("cla1m.net").is_some());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = DomainTriage::new(1.5);
    }

    #[test]
    fn transposition_mode_catches_swapped_typos() {
        let plain = DomainTriage::default();
        assert!(plain.assess("airdorp.com").is_none(), "plain Levenshtein misses the swap");
        let damerau = DomainTriage::default().with_transpositions();
        let hit = damerau.assess("airdorp.com").expect("Damerau catches it");
        assert_eq!(hit.keyword, "airdrop");
        // Benign domains still pass in transposition mode.
        assert!(damerau.assess("weather-report.com").is_none());
    }

    #[test]
    fn case_insensitive() {
        let t = DomainTriage::default();
        assert!(t.assess("CLAIM-Airdrop.COM").is_some());
    }
}
