//! Levenshtein edit distance and the similarity ratio used for fuzzy
//! keyword matching.

/// Classic Levenshtein distance (insertions, deletions, substitutions all
/// cost 1), two-row dynamic programming, O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Optimal-string-alignment Damerau–Levenshtein distance: like
/// [`levenshtein`] but adjacent transpositions cost 1 instead of 2, so
/// `airdorp` sits one edit from `airdrop`. Extension over the paper's
/// plain-Levenshtein triage; enabled via
/// [`crate::DomainTriage::with_transpositions`].
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Three-row dynamic programming (needs i-2 for transpositions).
    let mut prev2: Vec<usize> = vec![0; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for i in 0..a.len() {
        cur[0] = i + 1;
        for j in 0..b.len() {
            let cost = usize::from(a[i] != b[j]);
            let mut best = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && a[i] == b[j - 1] && a[i - 1] == b[j] {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity ratio in `[0, 1]`: `1 - dist / max_len`.
/// Two empty strings are identical (ratio 1).
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Damerau similarity ratio in `[0, 1]` (transpositions cost 1).
pub fn damerau_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn typo_variants_stay_above_threshold() {
        // The look-alikes the paper's 0.8 threshold is meant to catch.
        assert!(similarity("claim", "cla1m") >= 0.8);
        assert!(similarity("airdrop", "a1rdrop") >= 0.8);
        // A transposition costs 2 in plain Levenshtein, so "airdorp"
        // lands at 5/7 ≈ 0.71 — below the paper's threshold. (A
        // Damerau variant would catch it; noted as an extension.)
        assert!(similarity("airdrop", "airdorp") < 0.8);
        // And unrelated words stay below it.
        assert!(similarity("claim", "banana") < 0.8);
        assert!(similarity("mint", "main") < 0.8);
    }

    #[test]
    fn damerau_counts_transpositions_as_one() {
        assert_eq!(damerau_levenshtein("airdrop", "airdorp"), 1);
        assert_eq!(damerau_levenshtein("claim", "calim"), 1);
        // And matches plain Levenshtein when no transpositions help.
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        // The transposed typo now clears the paper's 0.8 bar.
        assert!(damerau_similarity("airdrop", "airdorp") >= 0.8);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        for (a, b) in [
            ("claim", "calim"),
            ("airdrop", "airdorp"),
            ("mint", "tinm"),
            ("stake", "steak"),
            ("", "x"),
        ] {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert_eq!(similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("claim", "cla1m"), ("airdrop", "drop"), ("", "mint")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn unicode_chars_counted_not_bytes() {
        // "clаim" with a Cyrillic 'а' is one substitution away.
        assert_eq!(levenshtein("claim", "cl\u{0430}im"), 1);
        assert!(similarity("claim", "cl\u{0430}im") >= 0.8);
    }
}
