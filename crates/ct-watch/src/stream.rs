//! A poll-based reader over a recorded Certificate Transparency log.

use serde::{Deserialize, Serialize};

/// One issued certificate, reduced to what the triage consumes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertRecord {
    /// The leaf domain the certificate covers (first SAN).
    pub domain: String,
    /// Issuance time (unix seconds).
    pub issued_at: u64,
}

/// A cursor over a time-ordered certificate list.
///
/// Mirrors how the real pipeline tails a CT log: the caller polls with a
/// watermark timestamp and receives every record issued up to it exactly
/// once. Poll-based rather than callback-based, per the workspace's
/// event-driven style.
#[derive(Debug, Clone)]
pub struct CtStream {
    records: Vec<CertRecord>,
    cursor: usize,
}

impl CtStream {
    /// Creates a stream over `records`. Records must be sorted by
    /// `issued_at`; this is validated eagerly so misuse fails fast.
    ///
    /// # Panics
    /// Panics if the records are not time-ordered.
    pub fn new(records: Vec<CertRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].issued_at <= w[1].issued_at),
            "CtStream records must be sorted by issuance time"
        );
        CtStream { records, cursor: 0 }
    }

    /// Returns all records with `issued_at <= watermark` not yet
    /// consumed, advancing the cursor past them.
    pub fn poll_until(&mut self, watermark: u64) -> &[CertRecord] {
        let start = self.cursor;
        let remaining = &self.records[start..];
        let n = remaining.partition_point(|r| r.issued_at <= watermark);
        self.cursor = start + n;
        &self.records[start..self.cursor]
    }

    /// Drains everything that remains.
    pub fn poll_rest(&mut self) -> &[CertRecord] {
        let start = self.cursor;
        self.cursor = self.records.len();
        &self.records[start..]
    }

    /// Records not yet consumed.
    pub fn pending(&self) -> usize {
        self.records.len() - self.cursor
    }

    /// Total records in the log.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the log holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert(domain: &str, ts: u64) -> CertRecord {
        CertRecord { domain: domain.to_owned(), issued_at: ts }
    }

    #[test]
    fn polls_in_batches_exactly_once() {
        let mut s = CtStream::new(vec![
            cert("a.com", 10),
            cert("b.com", 20),
            cert("c.com", 20),
            cert("d.com", 30),
        ]);
        assert_eq!(s.pending(), 4);
        let batch = s.poll_until(20);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].domain, "a.com");
        // Re-polling the same watermark yields nothing.
        assert!(s.poll_until(20).is_empty());
        assert_eq!(s.poll_until(100).len(), 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn poll_rest_drains() {
        let mut s = CtStream::new(vec![cert("a.com", 1), cert("b.com", 2)]);
        s.poll_until(1);
        let rest = s.poll_rest();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].domain, "b.com");
        assert!(s.poll_rest().is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let _ = CtStream::new(vec![cert("a.com", 5), cert("b.com", 1)]);
    }

    #[test]
    fn empty_stream() {
        let mut s = CtStream::new(vec![]);
        assert!(s.is_empty());
        assert!(s.poll_until(u64::MAX).is_empty());
    }
}
