//! The curated suspicious-keyword list.
//!
//! The paper extracts domains containing one of "a list of 63 words that
//! we curated ourselves, such as 'claim', 'airdrop', or 'mint'" (§8.2).
//! The exact list was not published; this reconstruction covers the
//! vocabulary drainer landing pages use — claim/airdrop verbs, DeFi
//! project names commonly cloned, and campaign nouns — and is exactly 63
//! entries long to match the paper's parameterisation.

/// 63 lowercase keywords. Order is alphabetical for reproducibility.
pub const SUSPICIOUS_KEYWORDS: [&str; 63] = [
    "airdrop",
    "allocation",
    "apecoin",
    "arbitrum",
    "azuki",
    "blast",
    "blur",
    "bonus",
    "bridge",
    "celestia",
    "claim",
    "claims",
    "compensation",
    "connect",
    "dashboard",
    "defi",
    "eigenlayer",
    "eligibility",
    "eligible",
    "ethereum",
    "event",
    "farm",
    "free",
    "giveaway",
    "launch",
    "layerzero",
    "linea",
    "metamask",
    "migrate",
    "migration",
    "mint",
    "mintable",
    "opensea",
    "optimism",
    "pancake",
    "pepe",
    "portal",
    "presale",
    "prize",
    "redeem",
    "refund",
    "registration",
    "restake",
    "reward",
    "rewards",
    "seadrop",
    "snapshot",
    "stake",
    "staking",
    "starknet",
    "swap",
    "token",
    "uniswap",
    "unlock",
    "upgrade",
    "vesting",
    "voucher",
    "wallet",
    "whitelist",
    "win",
    "yield",
    "zksync",
    "zora",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_63_keywords() {
        assert_eq!(SUSPICIOUS_KEYWORDS.len(), 63);
    }

    #[test]
    fn sorted_unique_lowercase() {
        for w in SUSPICIOUS_KEYWORDS.windows(2) {
            assert!(w[0] < w[1], "not sorted/unique: {} vs {}", w[0], w[1]);
        }
        for k in SUSPICIOUS_KEYWORDS {
            assert_eq!(k, k.to_lowercase());
            assert!(!k.is_empty());
        }
    }

    #[test]
    fn contains_the_papers_examples() {
        for k in ["claim", "airdrop", "mint"] {
            assert!(SUSPICIOUS_KEYWORDS.contains(&k));
        }
    }
}
