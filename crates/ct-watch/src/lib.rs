//! Certificate Transparency watching and suspicious-domain triage.
//!
//! Step 1 of the paper's toolkit-based phishing-website detection (§8.2):
//! watch newly issued X.509 certificates (via Certificate Transparency
//! logs) and extract domains that contain one of 63 curated suspicious
//! keywords, or a token within Levenshtein similarity ≥ 0.8 of one —
//! catching look-alike spellings such as `cla1m` or `a1rdrop`.
//!
//! The real system tails Google's CT log stream; here [`CtStream`] is a
//! poll-based reader over a pre-recorded, time-ordered certificate list
//! (the workspace's event-driven substitute — same consumption pattern,
//! no network).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod keywords;
mod lev;
mod stream;
mod triage;

pub use keywords::SUSPICIOUS_KEYWORDS;
pub use lev::{damerau_levenshtein, damerau_similarity, levenshtein, similarity};
pub use stream::{CertRecord, CtStream};
pub use triage::{DomainTriage, MatchKind, TriageHit};
