//! Community reporting (§8.1).
//!
//! The paper reports every discovered DaaS account to Etherscan,
//! Chainabuse and Forta (finding only 10.8% were labeled beforehand),
//! after which major wallets block user transactions that touch them.
//! This crate reproduces the three measurable pieces:
//!
//! * [`coverage`] — what share of the discovered dataset already carries
//!   a public label;
//! * [`report_all`] — submit our own labels for every dataset account;
//! * [`Blocklist`] — the wallet-side counterfactual: given a reporting
//!   date, how many of the profit-sharing transactions that happened
//!   *afterwards* would a blocklist-enforcing wallet have refused?

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use daas_chain::{Chain, LabelSource, LabelStore, Timestamp};
use daas_detector::Dataset;
use eth_types::Address;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Pre-existing label coverage of the discovered dataset (§8.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// DaaS accounts in the dataset.
    pub total_accounts: usize,
    /// Accounts already carrying a public phishing/drainer label.
    pub labeled: usize,
    /// Percent labeled (paper: 10.8%).
    pub labeled_pct: f64,
}

/// Measures how many dataset accounts already carry a public label.
pub fn coverage(labels: &LabelStore, dataset: &Dataset) -> CoverageReport {
    let all: Vec<Address> = dataset
        .contracts
        .iter()
        .chain(dataset.operators.iter())
        .chain(dataset.affiliates.iter())
        .copied()
        .collect();
    let labeled = all.iter().filter(|a| labels.publicly_flagged(**a)).count();
    CoverageReport {
        total_accounts: all.len(),
        labeled,
        labeled_pct: 100.0 * labeled as f64 / all.len().max(1) as f64,
    }
}

/// Reports every dataset account under our own source. Returns how many
/// accounts were newly flagged (i.e. previously unlabeled).
pub fn report_all(labels: &mut LabelStore, dataset: &Dataset) -> usize {
    let mut newly = 0;
    let all: Vec<Address> = dataset
        .contracts
        .iter()
        .chain(dataset.operators.iter())
        .chain(dataset.affiliates.iter())
        .copied()
        .collect();
    for address in all {
        if !labels.publicly_flagged(address) {
            newly += 1;
        }
        labels.add_phishing(address, LabelSource::DaasLab, "DaaS account (daas-lab report)");
    }
    newly
}

/// A wallet-side blocklist: a set of addresses a wallet refuses to let
/// its users transact with (the MetaMask / Coinbase behaviour §8.1
/// describes).
#[derive(Debug, Clone, Default)]
pub struct Blocklist {
    blocked: HashSet<Address>,
    /// When the blocklist took effect.
    pub effective_from: Timestamp,
}

impl Blocklist {
    /// Builds a blocklist from the dataset, effective at `from`.
    pub fn from_dataset(dataset: &Dataset, from: Timestamp) -> Self {
        let blocked = dataset
            .contracts
            .iter()
            .chain(dataset.operators.iter())
            .chain(dataset.affiliates.iter())
            .copied()
            .collect();
        Blocklist { blocked, effective_from: from }
    }

    /// Number of blocked addresses.
    pub fn len(&self) -> usize {
        self.blocked.len()
    }

    /// `true` if no addresses are blocked.
    pub fn is_empty(&self) -> bool {
        self.blocked.is_empty()
    }

    /// Would a wallet enforcing this list refuse `tx`? It blocks when
    /// the outer call target or any transfer recipient is listed, and
    /// the transaction post-dates the list.
    pub fn would_block(&self, tx: daas_chain::TxView<'_>) -> bool {
        if tx.timestamp() < self.effective_from {
            return false;
        }
        if tx.to().is_some_and(|to| self.blocked.contains(&to)) {
            return true;
        }
        tx.transfers().any(|t| self.blocked.contains(&t.to))
            || tx.approvals().any(|a| self.blocked.contains(&a.spender))
    }

    /// The counterfactual: of the dataset's profit-sharing transactions,
    /// how many happened after `effective_from` and would have been
    /// refused? Returns `(prevented, total_after)`.
    pub fn prevented(&self, chain: &Chain, dataset: &Dataset) -> (usize, usize) {
        let mut prevented = 0;
        let mut total_after = 0;
        for &txid in &dataset.ps_txs {
            let tx = chain.tx(txid);
            if tx.timestamp() < self.effective_from {
                continue;
            }
            total_after += 1;
            if self.would_block(tx) {
                prevented += 1;
            }
        }
        (prevented, total_after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::LabelSource;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    fn dataset() -> Dataset {
        let mut ds = Dataset::default();
        ds.contracts.insert(addr(1));
        ds.operators.insert(addr(2));
        ds.affiliates.insert(addr(3));
        ds
    }

    #[test]
    fn coverage_counts_public_labels_only() {
        let ds = dataset();
        let mut labels = LabelStore::new();
        labels.add_phishing(addr(1), LabelSource::Etherscan, "Fake_Phishing1");
        labels.add_phishing(addr(2), LabelSource::DaasLab, "ours");
        let c = coverage(&labels, &ds);
        assert_eq!(c.total_accounts, 3);
        assert_eq!(c.labeled, 1);
        assert!((c.labeled_pct - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn report_all_counts_new_flags() {
        let ds = dataset();
        let mut labels = LabelStore::new();
        labels.add_phishing(addr(1), LabelSource::Chainabuse, "reported");
        let newly = report_all(&mut labels, &ds);
        assert_eq!(newly, 2);
        // After reporting, everything carries some label; public
        // coverage is unchanged (our reports are not "public" sources).
        let c = coverage(&labels, &ds);
        assert_eq!(c.labeled, 1);
        // Re-reporting flags nothing new.
        assert_eq!(report_all(&mut labels, &ds), 2); // still not *publicly* flagged
    }

    #[test]
    fn blocklist_blocks_after_effective_date() {
        use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec};
        use eth_types::units::ether;

        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"op", ether(1)).unwrap();
        let aff = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", ether(100)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut ds = Dataset::default();
        chain.advance(100);
        let early = chain.claim_eth(victim, contract, ether(1), aff).unwrap();
        chain.advance(1_000);
        let cutoff = chain.now();
        chain.advance(1_000);
        let late = chain.claim_eth(victim, contract, ether(1), aff).unwrap();
        for tx in [early, late] {
            ds.absorb(daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap());
        }

        let bl = Blocklist::from_dataset(&ds, cutoff);
        assert_eq!(bl.len(), 3);
        assert!(!bl.would_block(chain.tx(early)), "pre-cutoff tx must pass");
        assert!(bl.would_block(chain.tx(late)));
        let (prevented, total_after) = bl.prevented(&chain, &ds);
        assert_eq!((prevented, total_after), (1, 1));
    }

    #[test]
    fn empty_blocklist() {
        let bl = Blocklist::default();
        assert!(bl.is_empty());
        assert_eq!(bl.len(), 0);
    }
}
