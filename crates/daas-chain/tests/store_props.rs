//! Property-based round-trip tests for the columnar transaction arena:
//! any dense sequence of [`Transaction`]s survives `Transaction` ⇄
//! [`TxStore`] unchanged, and the flattened id columns agree with the
//! materialised address view.

use daas_chain::{Approval, Asset, CallInfo, Transaction, Transfer, TxStore};
use eth_types::{Address, H256, U256};
use proptest::prelude::*;

fn addr(n: u8) -> Address {
    Address::from_key_seed(&[b's', b'p', n])
}

fn arb_asset() -> impl Strategy<Value = Asset> {
    prop_oneof![
        Just(Asset::Eth),
        (0u8..40).prop_map(|n| Asset::Erc20(addr(n))),
        ((0u8..40), any::<u64>()).prop_map(|(n, id)| Asset::Erc721 { token: addr(n), id }),
    ]
}

fn arb_transfer() -> impl Strategy<Value = Transfer> {
    (arb_asset(), 0u8..40, 0u8..40, any::<u64>()).prop_map(|(asset, f, t, amount)| Transfer {
        asset,
        from: addr(f),
        to: addr(t),
        amount: U256::from_u64(amount),
    })
}

fn arb_approval() -> impl Strategy<Value = Approval> {
    (0u8..40, 0u8..40, 0u8..40, any::<u64>()).prop_map(|(tok, own, sp, amount)| Approval {
        token: addr(tok),
        owner: addr(own),
        spender: addr(sp),
        amount: U256::from_u64(amount),
    })
}

fn arb_call() -> impl Strategy<Value = CallInfo> {
    prop_oneof![
        Just(CallInfo::plain()),
        (any::<[u8; 4]>(), "[a-z]{1,12}").prop_map(|(sel, name)| CallInfo {
            selector: Some(sel),
            function: Some(name),
        }),
        "[a-z]{1,12}".prop_map(|name| CallInfo { selector: None, function: Some(name) }),
    ]
}

/// A transaction with everything except the dense id, which the caller
/// assigns positionally.
fn arb_tx_parts() -> impl Strategy<Value = Transaction> {
    (
        any::<[u8; 32]>(),
        0u64..1_000,
        0u8..40,
        prop_oneof![Just(None), (0u8..40).prop_map(Some)],
        any::<u64>(),
        arb_call(),
        proptest::collection::vec(arb_transfer(), 0..5),
        proptest::collection::vec(arb_approval(), 0..3),
        prop_oneof![Just(None), (0u8..40).prop_map(Some)],
    )
        .prop_map(|(hash, block, from, to, value, call, transfers, approvals, created)| {
            Transaction {
                id: 0,
                hash: H256(hash),
                block,
                timestamp: block * 12,
                from: addr(from),
                to: to.map(addr),
                value: U256::from_u64(value),
                call,
                transfers,
                approvals,
                created: created.map(addr),
            }
        })
}

fn arb_txs() -> impl Strategy<Value = Vec<Transaction>> {
    proptest::collection::vec(arb_tx_parts(), 0..20).prop_map(|mut txs| {
        for (i, tx) in txs.iter_mut().enumerate() {
            tx.id = i as u32;
        }
        txs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core contract behind byte-identical serialization: every
    /// transaction materialises out of the arena exactly as it went in.
    #[test]
    fn transaction_roundtrips_through_arena(txs in arb_txs()) {
        let store = TxStore::from_transactions(txs.clone());
        prop_assert_eq!(store.len(), txs.len());
        for (i, original) in txs.iter().enumerate() {
            let back = store.to_transaction(i as u32);
            prop_assert_eq!(&back, original);
            // The view agrees with the materialised struct field by field.
            let view = store.view(i as u32);
            prop_assert_eq!(view.transfer_count(), original.transfers.len());
            prop_assert_eq!(view.approval_count(), original.approvals.len());
            let via_view: Vec<Transfer> = view.transfers().collect();
            prop_assert_eq!(&via_view, &original.transfers);
        }
    }

    /// The flattened touched-id column walk resolves to the same address
    /// set as the materialised `touched_addresses` (the detector relies
    /// on this to skip materialisation on the poll hot path).
    #[test]
    fn touched_ids_resolve_to_touched_addresses(txs in arb_txs()) {
        let store = TxStore::from_transactions(txs.clone());
        let mut scratch = Vec::new();
        for tx in &txs {
            store.touched_ids_into(tx.id, &mut scratch);
            let mut via_ids: Vec<Address> =
                scratch.iter().map(|&id| store.resolve(id)).collect();
            via_ids.sort_unstable();
            via_ids.dedup();
            let mut direct = tx.touched_addresses();
            direct.sort_unstable();
            direct.dedup();
            prop_assert_eq!(via_ids, direct);
        }
    }

    /// Interner determinism: ids are assigned in first-appearance order,
    /// so two stores built from the same transactions agree id for id.
    #[test]
    fn rebuild_preserves_ids(txs in arb_txs()) {
        let a = TxStore::from_transactions(txs.clone());
        let b = TxStore::from_transactions(txs);
        prop_assert_eq!(a.interner().addresses(), b.interner().addresses());
    }
}
