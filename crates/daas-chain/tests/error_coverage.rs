//! Failure injection: every `ChainError` variant is reachable, carries
//! the right diagnostics, and leaves the ledger untouched.

use daas_chain::{
    Chain, ChainError, ContractKind, EntryStyle, ProfitSharingSpec, TokenKind,
};
use eth_types::units::ether;
use eth_types::{Address, U256};

struct Fix {
    chain: Chain,
    op: Address,
    aff: Address,
    victim: Address,
    contract: Address,
    token: Address,
    nft: Address,
}

fn fix() -> Fix {
    let mut chain = Chain::new();
    let op = chain.create_eoa_funded(b"e/op", ether(10)).unwrap();
    let aff = chain.create_eoa(b"e/aff").unwrap();
    let victim = chain.create_eoa_funded(b"e/v", ether(10)).unwrap();
    let contract = chain
        .deploy_contract(
            op,
            ContractKind::ProfitSharing(ProfitSharingSpec {
                operator: op,
                operator_bps: 2000,
                entry: EntryStyle::PayableFallback,
            }),
        )
        .unwrap();
    let token = chain.deploy_token(op, "USDC", 6, TokenKind::Erc20).unwrap();
    let nft = chain.deploy_token(op, "NFT", 0, TokenKind::Erc721).unwrap();
    Fix { chain, op, aff, victim, contract, token, nft }
}

fn ghost() -> Address {
    Address::from_key_seed(b"e/ghost")
}

#[test]
fn unknown_account() {
    let mut f = fix();
    let err = f.chain.transfer_eth(ghost(), f.aff, ether(1)).unwrap_err();
    assert_eq!(err, ChainError::UnknownAccount(ghost()));
    // Receiving side too.
    let err = f.chain.transfer_eth(f.op, ghost(), ether(1)).unwrap_err();
    assert_eq!(err, ChainError::UnknownAccount(ghost()));
}

#[test]
fn not_a_contract() {
    let mut f = fix();
    // split_payment requires a Benign contract; an EOA is not one.
    let err = f.chain.split_payment(f.op, f.aff, ether(1), &[(f.victim, 1000)]).unwrap_err();
    assert_eq!(err, ChainError::NotAContract(f.aff));
    // sell_nft requires a Marketplace.
    let err = f.chain.sell_nft(f.op, f.contract, f.nft, 1, f.op, ether(1)).unwrap_err();
    assert_eq!(err, ChainError::NotAContract(f.contract));
}

#[test]
fn unknown_token() {
    let mut f = fix();
    // An ERC-721 contract is not an ERC-20 token.
    let err = f.chain.transfer_erc20(f.victim, f.nft, f.aff, U256::ONE).unwrap_err();
    assert_eq!(err, ChainError::UnknownToken(f.nft));
    // And vice versa.
    let err = f.chain.approve_nft_all(f.victim, f.token, f.contract, true).unwrap_err();
    assert_eq!(err, ChainError::UnknownToken(f.token));
}

#[test]
fn unknown_nft() {
    let mut f = fix();
    f.chain.approve_nft_all(f.victim, f.nft, f.contract, true).unwrap();
    let err = f.chain.drain_nft(f.op, f.contract, f.nft, f.victim, 404).unwrap_err();
    assert_eq!(err, ChainError::UnknownNft { token: f.nft, id: 404 });
}

#[test]
fn insufficient_balance_carries_amounts() {
    let mut f = fix();
    let err = f.chain.transfer_eth(f.victim, f.aff, ether(11)).unwrap_err();
    match err {
        ChainError::InsufficientBalance { account, have, need, .. } => {
            assert_eq!(account, f.victim);
            assert_eq!(have, ether(10));
            assert_eq!(need, ether(11));
        }
        other => panic!("wrong error {other}"),
    }
}

#[test]
fn insufficient_allowance_carries_parties() {
    let mut f = fix();
    f.chain.mint_erc20(f.token, f.victim, U256::from_u64(100)).unwrap();
    f.chain.approve_erc20(f.victim, f.token, f.contract, U256::from_u64(30)).unwrap();
    let err = f
        .chain
        .drain_erc20(f.op, f.contract, f.token, f.victim, U256::from_u64(50), f.aff)
        .unwrap_err();
    match err {
        ChainError::InsufficientAllowance { token, owner, spender, have, need } => {
            assert_eq!((token, owner, spender), (f.token, f.victim, f.contract));
            assert_eq!(have, U256::from_u64(30));
            assert_eq!(need, U256::from_u64(50));
        }
        other => panic!("wrong error {other}"),
    }
}

#[test]
fn not_nft_owner() {
    let mut f = fix();
    f.chain.mint_nft(f.nft, f.aff, 7).unwrap();
    // Victim does not own #7.
    let err = f.chain.drain_nft(f.op, f.contract, f.nft, f.victim, 7).unwrap_err();
    assert!(matches!(err, ChainError::NotNftOwner { token, id: 7, .. } if token == f.nft));
    // Owner without marketplace listing: wrong seller.
    let owner2 = f.chain.create_eoa_funded(b"e/mo", ether(1)).unwrap();
    let market = f.chain.deploy_contract(owner2, ContractKind::Marketplace).unwrap();
    f.chain.mint_eth(market, ether(10)).unwrap();
    let err = f.chain.sell_nft(f.op, market, f.nft, 7, f.victim, ether(1)).unwrap_err();
    assert!(matches!(err, ChainError::NotNftOwner { .. }));
}

#[test]
fn not_profit_sharing() {
    let mut f = fix();
    // claim_eth against a token contract.
    let err = f.chain.claim_eth(f.victim, f.token, ether(1), f.aff).unwrap_err();
    assert_eq!(err, ChainError::NotProfitSharing(f.token));
    let err = f
        .chain
        .drain_erc20(f.op, f.token, f.token, f.victim, U256::ONE, f.aff)
        .unwrap_err();
    assert_eq!(err, ChainError::NotProfitSharing(f.token));
}

#[test]
fn account_exists() {
    let mut f = fix();
    let err = f.chain.create_eoa(b"e/op").unwrap_err();
    assert_eq!(err, ChainError::AccountExists(f.op));
}

#[test]
fn time_went_backwards() {
    let mut f = fix();
    let now = f.chain.now();
    let err = f.chain.set_time(now - 1).unwrap_err();
    assert_eq!(err, ChainError::TimeWentBackwards { now, requested: now - 1 });
}

#[test]
fn invalid_bps() {
    let mut f = fix();
    let err = f
        .chain
        .deploy_contract(
            f.op,
            ContractKind::ProfitSharing(ProfitSharingSpec {
                operator: f.op,
                operator_bps: 10_000,
                entry: EntryStyle::PayableFallback,
            }),
        )
        .unwrap_err();
    assert_eq!(err, ChainError::InvalidBps(10_000));
    let err = f.chain.split_payment(f.op, f.contract, ether(1), &[]).unwrap_err();
    // Empty recipient list sums to 0 bps… but contract-kind check fires
    // first (the splitter must be Benign).
    assert!(matches!(err, ChainError::NotAContract(_) | ChainError::InvalidBps(0)));
}

#[test]
fn errors_display_cleanly() {
    // Every variant has a human-readable Display used by the generator's
    // error paths.
    let samples: Vec<ChainError> = vec![
        ChainError::UnknownAccount(ghost()),
        ChainError::NotAContract(ghost()),
        ChainError::UnknownToken(ghost()),
        ChainError::UnknownNft { token: ghost(), id: 1 },
        ChainError::NotProfitSharing(ghost()),
        ChainError::AccountExists(ghost()),
        ChainError::TimeWentBackwards { now: 2, requested: 1 },
        ChainError::InvalidBps(0),
    ];
    for e in samples {
        let text = e.to_string();
        assert!(!text.is_empty());
        assert!(text.is_ascii() || text.contains(' '));
    }
}
