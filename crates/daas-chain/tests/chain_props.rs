//! Property-based ledger invariants: under arbitrary interleavings of
//! actions, value is conserved, histories index every transaction, and
//! failed actions leave no trace.

use daas_chain::{Chain, ChainError, ContractKind, EntryStyle, ProfitSharingSpec, TokenKind};
use eth_types::{Address, U256};
use proptest::prelude::*;

/// An action the property tests can apply.
#[derive(Debug, Clone)]
enum Action {
    MintEth { who: u8, amount: u64 },
    Transfer { from: u8, to: u8, amount: u64 },
    Claim { victim: u8, affiliate: u8, amount: u64 },
    MintToken { who: u8, amount: u64 },
    Approve { owner: u8, amount: u64 },
    Drain { victim: u8, affiliate: u8, amount: u64 },
    Advance { secs: u32 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..6, 1u64..1_000_000).prop_map(|(who, amount)| Action::MintEth { who, amount }),
        (0u8..6, 0u8..6, 1u64..500_000)
            .prop_map(|(from, to, amount)| Action::Transfer { from, to, amount }),
        (0u8..6, 0u8..6, 1u64..500_000)
            .prop_map(|(victim, affiliate, amount)| Action::Claim { victim, affiliate, amount }),
        (0u8..6, 1u64..1_000_000).prop_map(|(who, amount)| Action::MintToken { who, amount }),
        (0u8..6, 0u64..1_000_000).prop_map(|(owner, amount)| Action::Approve { owner, amount }),
        (0u8..6, 0u8..6, 1u64..500_000)
            .prop_map(|(victim, affiliate, amount)| Action::Drain { victim, affiliate, amount }),
        (1u32..100_000).prop_map(|secs| Action::Advance { secs }),
    ]
}

struct Setup {
    chain: Chain,
    accounts: Vec<Address>,
    operator: Address,
    contract: Address,
    token: Address,
    minted_eth: U256,
    minted_token: U256,
}

fn setup() -> Setup {
    let mut chain = Chain::new();
    let operator = chain.create_eoa(b"prop/op").unwrap();
    let contract = chain
        .deploy_contract(
            operator,
            ContractKind::ProfitSharing(ProfitSharingSpec {
                operator,
                operator_bps: 2000,
                entry: EntryStyle::PayableFallback,
            }),
        )
        .unwrap();
    let token = chain.deploy_token(operator, "TKN", 18, TokenKind::Erc20).unwrap();
    let accounts: Vec<Address> =
        (0..6u8).map(|i| chain.create_eoa(&[b'p', i]).unwrap()).collect();
    Setup {
        chain,
        accounts,
        operator,
        contract,
        token,
        minted_eth: U256::ZERO,
        minted_token: U256::ZERO,
    }
}

impl Setup {
    fn apply(&mut self, action: &Action) {
        let a = |i: u8| self.accounts[i as usize % self.accounts.len()];
        match *action {
            Action::MintEth { who, amount } => {
                self.chain.mint_eth(a(who), U256::from_u64(amount)).unwrap();
                self.minted_eth += U256::from_u64(amount);
            }
            Action::Transfer { from, to, amount } => {
                if from == to {
                    return;
                }
                let _ = self.chain.transfer_eth(a(from), a(to), U256::from_u64(amount));
            }
            Action::Claim { victim, affiliate, amount } => {
                let _ = self.chain.claim_eth(
                    a(victim),
                    self.contract,
                    U256::from_u64(amount),
                    a(affiliate),
                );
            }
            Action::MintToken { who, amount } => {
                self.chain.mint_erc20(self.token, a(who), U256::from_u64(amount)).unwrap();
                self.minted_token += U256::from_u64(amount);
            }
            Action::Approve { owner, amount } => {
                let _ = self.chain.approve_erc20(
                    a(owner),
                    self.token,
                    self.contract,
                    U256::from_u64(amount),
                );
            }
            Action::Drain { victim, affiliate, amount } => {
                let _ = self.chain.drain_erc20(
                    self.operator,
                    self.contract,
                    self.token,
                    a(victim),
                    U256::from_u64(amount),
                    a(affiliate),
                );
            }
            Action::Advance { secs } => self.chain.advance(secs as u64),
        }
    }

    fn total_eth(&self) -> U256 {
        let mut total = self.chain.eth_balance(self.operator) + self.chain.eth_balance(self.contract);
        for &acc in &self.accounts {
            total += self.chain.eth_balance(acc);
        }
        total
    }

    fn total_token(&self) -> U256 {
        let mut total = self.chain.erc20_balance(self.token, self.operator)
            + self.chain.erc20_balance(self.token, self.contract);
        for &acc in &self.accounts {
            total += self.chain.erc20_balance(self.token, acc);
        }
        total
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn value_is_conserved(actions in proptest::collection::vec(arb_action(), 1..80)) {
        let mut s = setup();
        for action in &actions {
            s.apply(action);
        }
        // ETH: everything ever minted is exactly distributed across the
        // closed account set (no fees, no burn in this model).
        prop_assert_eq!(s.total_eth(), s.minted_eth);
        prop_assert_eq!(s.total_token(), s.minted_token);
    }

    #[test]
    fn histories_cover_every_transaction(actions in proptest::collection::vec(arb_action(), 1..60)) {
        let mut s = setup();
        for action in &actions {
            s.apply(action);
        }
        for tx in s.chain.transactions() {
            // The sender's history must contain the tx, and so must every
            // transfer endpoint's.
            prop_assert!(s.chain.txs_of(tx.from()).contains(&tx.id()));
            for t in tx.transfers() {
                prop_assert!(s.chain.txs_of(t.from).contains(&tx.id()));
                prop_assert!(s.chain.txs_of(t.to).contains(&tx.id()));
            }
        }
        // Histories are strictly ordered and deduplicated.
        for acc in s.chain.addresses().collect::<Vec<_>>() {
            let h = s.chain.txs_of(acc);
            prop_assert!(h.windows(2).all(|w| w[0] < w[1]), "history out of order");
        }
    }

    #[test]
    fn block_structure_is_consistent(actions in proptest::collection::vec(arb_action(), 1..60)) {
        let mut s = setup();
        for action in &actions {
            s.apply(action);
        }
        let blocks = s.chain.blocks();
        let total: u32 = blocks.iter().map(|b| b.tx_count).sum();
        prop_assert_eq!(total as usize, s.chain.transactions().len());
        prop_assert!(blocks.windows(2).all(|w| w[0].number < w[1].number));
        for b in blocks {
            for i in b.first_tx..b.first_tx + b.tx_count {
                prop_assert_eq!(s.chain.tx(i).block(), b.number);
            }
        }
    }

    #[test]
    fn failed_actions_are_atomic(amount in 1u64..u64::MAX) {
        // A claim the victim cannot afford must change nothing at all.
        let mut s = setup();
        s.chain.mint_eth(s.accounts[0], U256::from_u64(100)).unwrap();
        let stats_before = s.chain.stats();
        let balance_before = s.chain.eth_balance(s.accounts[0]);
        if amount > 100 {
            let err = s
                .chain
                .claim_eth(s.accounts[0], s.contract, U256::from_u64(amount), s.accounts[1])
                .unwrap_err();
            let is_insufficient = matches!(err, ChainError::InsufficientBalance { .. });
            prop_assert!(is_insufficient);
            prop_assert_eq!(s.chain.stats(), stats_before);
            prop_assert_eq!(s.chain.eth_balance(s.accounts[0]), balance_before);
        }
    }
}
