//! The chain is a releasable artifact: it must serialise to JSON and
//! come back answering every query identically.

use daas_chain::{Chain, ContractKind, EntryStyle, ProfitSharingSpec, TokenKind};
use eth_types::units::ether;
use eth_types::U256;

fn build_chain() -> Chain {
    let mut chain = Chain::new();
    let op = chain.create_eoa_funded(b"s/op", ether(10)).unwrap();
    let aff = chain.create_eoa(b"s/aff").unwrap();
    let victim = chain.create_eoa_funded(b"s/v", ether(100)).unwrap();
    let contract = chain
        .deploy_contract(
            op,
            ContractKind::ProfitSharing(ProfitSharingSpec {
                operator: op,
                operator_bps: 1750,
                entry: EntryStyle::NamedPayable("Claim".into()),
            }),
        )
        .unwrap();
    let token = chain.deploy_token(op, "USDC", 6, TokenKind::Erc20).unwrap();
    chain.mint_erc20(token, victim, U256::from_u64(5_000_000)).unwrap();
    chain.advance(12);
    chain.claim_eth(victim, contract, ether(4), aff).unwrap();
    chain.approve_erc20(victim, token, contract, U256::MAX).unwrap();
    chain.advance(12);
    chain
        .drain_erc20(op, contract, token, victim, U256::from_u64(5_000_000), aff)
        .unwrap();
    chain
}

#[test]
fn json_roundtrip_preserves_everything() {
    let chain = build_chain();
    let json = serde_json::to_string(&chain).expect("serialise");
    let back: Chain = serde_json::from_str(&json).expect("deserialise");

    assert_eq!(back.stats(), chain.stats());
    assert_eq!(back.now(), chain.now());
    assert_eq!(back.transactions(), chain.transactions());
    assert_eq!(back.blocks(), chain.blocks());
    for address in chain.addresses() {
        assert_eq!(back.eth_balance(address), chain.eth_balance(address));
        assert_eq!(back.txs_of(address), chain.txs_of(address));
        assert_eq!(back.account_kind(address), chain.account_kind(address));
        assert_eq!(back.account_created_at(address), chain.account_created_at(address));
    }
}

#[test]
fn deserialised_chain_keeps_working() {
    let chain = build_chain();
    let json = serde_json::to_string(&chain).unwrap();
    let mut back: Chain = serde_json::from_str(&json).unwrap();
    // Continue executing on the revived chain.
    let newcomer = back.create_eoa_funded(b"s/late", ether(1)).unwrap();
    let someone = back.addresses().next().unwrap();
    back.advance(12);
    back.transfer_eth(newcomer, someone, ether(1)).unwrap();
    assert_eq!(back.stats().transactions, chain.stats().transactions + 1);
}
