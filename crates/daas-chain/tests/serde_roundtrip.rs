//! The chain is a releasable artifact: it must serialise to JSON and
//! come back answering every query identically.

use daas_chain::{Chain, ContractKind, EntryStyle, ProfitSharingSpec, TokenKind};
use eth_types::units::ether;
use eth_types::U256;

fn build_chain() -> Chain {
    let mut chain = Chain::new();
    let op = chain.create_eoa_funded(b"s/op", ether(10)).unwrap();
    let aff = chain.create_eoa(b"s/aff").unwrap();
    let victim = chain.create_eoa_funded(b"s/v", ether(100)).unwrap();
    let contract = chain
        .deploy_contract(
            op,
            ContractKind::ProfitSharing(ProfitSharingSpec {
                operator: op,
                operator_bps: 1750,
                entry: EntryStyle::NamedPayable("Claim".into()),
            }),
        )
        .unwrap();
    let token = chain.deploy_token(op, "USDC", 6, TokenKind::Erc20).unwrap();
    chain.mint_erc20(token, victim, U256::from_u64(5_000_000)).unwrap();
    chain.advance(12);
    chain.claim_eth(victim, contract, ether(4), aff).unwrap();
    chain.approve_erc20(victim, token, contract, U256::MAX).unwrap();
    chain.advance(12);
    chain
        .drain_erc20(op, contract, token, victim, U256::from_u64(5_000_000), aff)
        .unwrap();
    chain
}

#[test]
fn json_roundtrip_preserves_everything() {
    let chain = build_chain();
    let json = serde_json::to_string(&chain).expect("serialise");
    let back: Chain = serde_json::from_str(&json).expect("deserialise");

    assert_eq!(back.stats(), chain.stats());
    assert_eq!(back.now(), chain.now());
    assert_eq!(back.transactions().len(), chain.transactions().len());
    for (a, b) in back.transactions().iter().zip(chain.transactions().iter()) {
        assert_eq!(a.to_transaction(), b.to_transaction());
    }
    assert_eq!(back.blocks(), chain.blocks());
    for address in chain.addresses() {
        assert_eq!(back.eth_balance(address), chain.eth_balance(address));
        assert_eq!(back.txs_of(address), chain.txs_of(address));
        assert_eq!(back.account_kind(address), chain.account_kind(address));
        assert_eq!(back.account_created_at(address), chain.account_created_at(address));
    }
}

/// The asset maps moved from flat `HashMap`s serialized via
/// `entry_list`/`entry_set` (a `Vec` of entries sorted by key) into
/// sharded maps. Prove at the type level that the sharded encoding is
/// byte-identical to the legacy flat one.
#[test]
fn sharded_maps_serialize_like_preshard_flat_maps() {
    use daas_chain::{ShardedMap, ShardedSet};
    use eth_types::Address;
    use std::collections::{HashMap, HashSet};

    let addr = |n: u8| Address([n; 20]);

    let mut sharded: ShardedMap<(Address, Address), U256> = ShardedMap::with_shards(16);
    let mut legacy: HashMap<(Address, Address), U256> = HashMap::new();
    for n in (0..48u8).rev() {
        sharded.insert((addr(n), addr(n.wrapping_mul(7))), U256::from_u64(n as u64));
        legacy.insert((addr(n), addr(n.wrapping_mul(7))), U256::from_u64(n as u64));
    }
    // The legacy `entry_list` encoding: entries sorted by key.
    let mut entries: Vec<(&(Address, Address), &U256)> = legacy.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    assert_eq!(
        serde_json::to_string(&sharded).unwrap(),
        serde_json::to_string(&entries).unwrap(),
        "ShardedMap must serialize exactly like the pre-shard entry list"
    );

    let mut sharded_set: ShardedSet<(Address, Address, Address)> = ShardedSet::with_shards(16);
    let mut legacy_set: HashSet<(Address, Address, Address)> = HashSet::new();
    for n in (0..48u8).rev() {
        sharded_set.insert((addr(n), addr(n.wrapping_add(1)), addr(n.wrapping_add(2))));
        legacy_set.insert((addr(n), addr(n.wrapping_add(1)), addr(n.wrapping_add(2))));
    }
    // The legacy `entry_set` encoding: members sorted.
    let mut members: Vec<&(Address, Address, Address)> = legacy_set.iter().collect();
    members.sort();
    assert_eq!(
        serde_json::to_string(&sharded_set).unwrap(),
        serde_json::to_string(&members).unwrap(),
        "ShardedSet must serialize exactly like the pre-shard entry set"
    );
}

/// Shard counts are memory layout, never data: the chain artifact must
/// not change by a byte when everything is resharded.
#[test]
fn chain_json_is_byte_identical_across_shard_counts() {
    let chain = build_chain();
    let reference = serde_json::to_string(&chain).unwrap();
    for shards in [1usize, 4, 16, 64] {
        let mut resharded = chain.clone();
        resharded.set_shards(shards);
        assert_eq!(
            serde_json::to_string(&resharded).unwrap(),
            reference,
            "chain JSON changed at {shards} shards"
        );
    }
    // And a serialize → deserialize → serialize cycle is stable.
    let back: Chain = serde_json::from_str(&reference).unwrap();
    assert_eq!(serde_json::to_string(&back).unwrap(), reference);
}

#[test]
fn deserialised_chain_keeps_working() {
    let chain = build_chain();
    let json = serde_json::to_string(&chain).unwrap();
    let mut back: Chain = serde_json::from_str(&json).unwrap();
    // Continue executing on the revived chain.
    let newcomer = back.create_eoa_funded(b"s/late", ether(1)).unwrap();
    let someone = back.addresses().next().unwrap();
    back.advance(12);
    back.transfer_eth(newcomer, someone, ether(1)).unwrap();
    assert_eq!(back.stats().transactions, chain.stats().transactions + 1);
}
