//! Account kinds and the behavioural specs of simulated contracts.

use eth_types::{keccak256, Address};
use serde::{Deserialize, Serialize};

use crate::asset::TokenKind;

/// How a profit-sharing contract receives ETH from victims.
///
/// This is the observable that reproduces Table 3 of the paper: Angel
/// Drainer uses a payable function named `Claim`, Inferno Drainer a
/// payable fallback, Pink Drainer a payable function named
/// `Network Merge` — all of them a `multicall` for ERC-20/NFT loot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryStyle {
    /// A named payable function, e.g. `Claim(address)` or
    /// `claimRewards(address)`.
    NamedPayable(String),
    /// The payable fallback function (no selector, no name).
    PayableFallback,
}

impl EntryStyle {
    /// The 4-byte selector of the entry point, if it has one.
    ///
    /// Computed exactly as Solidity does: the first four bytes of the
    /// Keccak-256 of `name(address)` (the affiliate parameter is how the
    /// drainer routes profits, cf. Listing 1).
    pub fn selector(&self) -> Option<[u8; 4]> {
        match self {
            EntryStyle::NamedPayable(name) => {
                let sig = format!("{}(address)", name.replace(' ', ""));
                let h = keccak256(sig.as_bytes());
                Some([h.0[0], h.0[1], h.0[2], h.0[3]])
            }
            EntryStyle::PayableFallback => None,
        }
    }

    /// Human-readable function description, for Table 3 style output.
    pub fn describe(&self) -> String {
        match self {
            EntryStyle::NamedPayable(name) => format!("a payable function named {name}"),
            EntryStyle::PayableFallback => "a payable fallback function".to_owned(),
        }
    }
}

/// Behavioural spec of a profit-sharing (drainer) contract.
///
/// Simplified semantics of Listing 3: the entry point splits incoming ETH
/// between a hard-coded operator account and a caller-supplied affiliate
/// account; `multicall` lets the drainer backend sweep approved ERC-20
/// tokens and NFTs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfitSharingSpec {
    /// The operator account profits are routed to (set at deployment).
    pub operator: Address,
    /// Operator share in basis points (e.g. 2000 = 20%). The affiliate
    /// receives `10_000 - operator_bps`, minus integer-division dust that
    /// stays in the contract.
    pub operator_bps: u32,
    /// How victims' ETH enters the contract.
    pub entry: EntryStyle,
}

/// What a contract account is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractKind {
    /// A drainer profit-sharing contract.
    ProfitSharing(ProfitSharingSpec),
    /// A token contract.
    Token(TokenKind),
    /// An NFT marketplace (Blur/OpenSea stand-in): buys NFTs for ETH.
    Marketplace,
    /// A mixing/bridging service (Tornado-style sink for laundering).
    Mixer,
    /// A decentralised exchange pair (benign multi-transfer traffic).
    Dex,
    /// Any other benign contract (airdroppers, payment splitters, …).
    Benign,
}

/// The two Ethereum account types (paper §2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountKind {
    /// Externally owned account.
    Eoa,
    /// Contract account, with its behavioural kind.
    Contract(ContractKind),
}

impl AccountKind {
    /// `true` if this is a contract account.
    pub fn is_contract(&self) -> bool {
        matches!(self, AccountKind::Contract(_))
    }

    /// Returns the profit-sharing spec if this is a drainer contract.
    pub fn profit_sharing(&self) -> Option<&ProfitSharingSpec> {
        match self {
            AccountKind::Contract(ContractKind::ProfitSharing(spec)) => Some(spec),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_matches_solidity() {
        // claimRewards(address) — verify the 4-byte selector is stable and
        // derived from the keccak of the canonical signature.
        let style = EntryStyle::NamedPayable("claimRewards".into());
        let expect = &keccak256(b"claimRewards(address)").0[..4];
        assert_eq!(style.selector().unwrap(), expect);
    }

    #[test]
    fn selector_strips_spaces() {
        // "Network Merge" (Pink Drainer) canonicalises to NetworkMerge(address).
        let style = EntryStyle::NamedPayable("Network Merge".into());
        let expect = &keccak256(b"NetworkMerge(address)").0[..4];
        assert_eq!(style.selector().unwrap(), expect);
    }

    #[test]
    fn fallback_has_no_selector() {
        assert_eq!(EntryStyle::PayableFallback.selector(), None);
    }

    #[test]
    fn describe_matches_table3_wording() {
        assert_eq!(
            EntryStyle::NamedPayable("Claim".into()).describe(),
            "a payable function named Claim"
        );
        assert_eq!(
            EntryStyle::PayableFallback.describe(),
            "a payable fallback function"
        );
    }

    #[test]
    fn kind_accessors() {
        let spec = ProfitSharingSpec {
            operator: Address::ZERO,
            operator_bps: 2000,
            entry: EntryStyle::PayableFallback,
        };
        let kind = AccountKind::Contract(ContractKind::ProfitSharing(spec.clone()));
        assert!(kind.is_contract());
        assert_eq!(kind.profit_sharing(), Some(&spec));
        assert!(!AccountKind::Eoa.is_contract());
        assert_eq!(AccountKind::Eoa.profit_sharing(), None);
    }
}
