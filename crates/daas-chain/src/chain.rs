//! The ledger: state, execution engine, and explorer-style query API.

use eth_types::{keccak256, AddrId, Address, U256};
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

use crate::account::{AccountKind, ContractKind, ProfitSharingSpec};
use crate::asset::{Asset, TokenKind, TokenMeta};
use crate::assets::{ShardedMap, ShardedSet};
use crate::block::{
    block_number_at, BlockHeader, Timestamp, GENESIS_TIMESTAMP, SECONDS_PER_BLOCK,
};
use crate::error::ChainError;
use crate::hash::DetMap;
use crate::shard::{ChainReader, ShardedHistories};
use crate::store::{TxStore, TxView};
use crate::tx::{Approval, CallInfo, Transaction, Transfer, TxId};

/// Per-account ledger record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AccountInfo {
    kind: AccountKind,
    nonce: u64,
    balance: U256,
    created_at: Timestamp,
}

/// Aggregate counters, handy for sanity checks and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChainStats {
    /// Number of accounts (EOA + contract).
    pub accounts: usize,
    /// Number of contract accounts.
    pub contracts: usize,
    /// Number of confirmed transactions.
    pub transactions: usize,
    /// Number of sealed blocks.
    pub blocks: usize,
}

/// The simulated ledger. See the crate docs for the design rationale.
///
/// All mutating methods are transactional: on error, no state changes and
/// no transaction is recorded.
///
/// Storage is columnar since the interned-address refactor: transactions
/// live in a [`TxStore`] arena and every hot map (history, asset state)
/// is keyed by interned [`AddrId`]s. The serialized artifact is
/// **byte-identical** to the pre-columnar format — the manual serde
/// impls below materialize transactions and resolve every id back to
/// its address (ids are instance-local and never reach disk).
#[derive(Debug, Clone, Default)]
pub struct Chain {
    now: Timestamp,
    blocks: Vec<BlockHeader>,
    store: TxStore,
    accounts: DetMap<Address, AccountInfo>,
    tokens: DetMap<Address, TokenMeta>,
    // Tuple-keyed asset state lives in sharded maps (see `assets`):
    // power-of-two Arc-backed shards, copy-on-write, keyed by interned
    // ids so every probe hashes 4-byte integers.
    erc20_balances: ShardedMap<(AddrId, AddrId), U256>,
    erc20_allowances: ShardedMap<(AddrId, AddrId, AddrId), U256>,
    nft_owners: ShardedMap<(AddrId, u64), AddrId>,
    nft_operators: ShardedSet<(AddrId, AddrId, AddrId)>,
    history: ShardedHistories,
}

impl Chain {
    /// Creates an empty chain at [`GENESIS_TIMESTAMP`].
    pub fn new() -> Self {
        Chain { now: GENESIS_TIMESTAMP, ..Default::default() }
    }

    // ------------------------------------------------------------------
    // Time.
    // ------------------------------------------------------------------

    /// Current chain time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Sets the chain clock. Time must not go backwards.
    pub fn set_time(&mut self, ts: Timestamp) -> Result<(), ChainError> {
        if ts < self.now {
            return Err(ChainError::TimeWentBackwards { now: self.now, requested: ts });
        }
        self.now = ts;
        Ok(())
    }

    /// Advances the clock by `seconds`.
    pub fn advance(&mut self, seconds: u64) {
        self.now += seconds;
    }

    // ------------------------------------------------------------------
    // Account management (genesis/faucet operations: no tx recorded).
    // ------------------------------------------------------------------

    /// Registers a fresh EOA derived from `seed`. Idempotent on the
    /// address space: re-registering an existing address is an error.
    pub fn create_eoa(&mut self, seed: &[u8]) -> Result<Address, ChainError> {
        let address = Address::from_key_seed(seed);
        self.register(address, AccountKind::Eoa)?;
        Ok(address)
    }

    /// Registers an EOA and credits it with `balance` wei.
    pub fn create_eoa_funded(&mut self, seed: &[u8], balance: U256) -> Result<Address, ChainError> {
        let address = self.create_eoa(seed)?;
        self.mint_eth(address, balance)?;
        Ok(address)
    }

    /// Faucet: credits ETH out of thin air (world-generation only).
    pub fn mint_eth(&mut self, address: Address, amount: U256) -> Result<(), ChainError> {
        let info = self.accounts.get_mut(&address).ok_or(ChainError::UnknownAccount(address))?;
        info.balance = info.balance.saturating_add(amount);
        Ok(())
    }

    /// Faucet: credits ERC-20 balance out of thin air.
    pub fn mint_erc20(
        &mut self,
        token: Address,
        to: Address,
        amount: U256,
    ) -> Result<(), ChainError> {
        self.expect_token(token, TokenKind::Erc20)?;
        self.expect_account(to)?;
        let key = (self.store.intern(token), self.store.intern(to));
        let entry = self.erc20_balances.get_mut_or_insert(key, U256::ZERO);
        *entry = entry.saturating_add(amount);
        Ok(())
    }

    /// Faucet: mints an NFT to `to`.
    pub fn mint_nft(&mut self, token: Address, to: Address, id: u64) -> Result<(), ChainError> {
        self.expect_token(token, TokenKind::Erc721)?;
        self.expect_account(to)?;
        let key = (self.store.intern(token), id);
        let owner = self.store.intern(to);
        self.nft_owners.insert(key, owner);
        Ok(())
    }

    /// Deploys a contract from `deployer` (consumes a nonce, records a
    /// creation transaction, derives the address via `CREATE`).
    pub fn deploy_contract(
        &mut self,
        deployer: Address,
        kind: ContractKind,
    ) -> Result<Address, ChainError> {
        if let ContractKind::ProfitSharing(spec) = &kind {
            if spec.operator_bps == 0 || spec.operator_bps >= 10_000 {
                return Err(ChainError::InvalidBps(spec.operator_bps));
            }
        }
        let nonce = {
            let info =
                self.accounts.get_mut(&deployer).ok_or(ChainError::UnknownAccount(deployer))?;
            let n = info.nonce;
            info.nonce += 1;
            n
        };
        let address = Address::create(deployer, nonce);
        self.register(address, AccountKind::Contract(kind))?;
        self.record_tx(deployer, None, U256::ZERO, CallInfo::plain(), vec![], vec![], Some(address));
        Ok(address)
    }

    /// Deploys and registers a token contract.
    pub fn deploy_token(
        &mut self,
        deployer: Address,
        symbol: &str,
        decimals: u8,
        kind: TokenKind,
    ) -> Result<Address, ChainError> {
        let address = self.deploy_contract(deployer, ContractKind::Token(kind))?;
        self.tokens.insert(
            address,
            TokenMeta { symbol: symbol.to_owned(), decimals, kind },
        );
        Ok(address)
    }

    fn register(&mut self, address: Address, kind: AccountKind) -> Result<(), ChainError> {
        if self.accounts.contains_key(&address) {
            return Err(ChainError::AccountExists(address));
        }
        self.accounts.insert(
            address,
            AccountInfo { kind, nonce: 0, balance: U256::ZERO, created_at: self.now },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// ETH balance of an account (zero for unknown addresses, like a node).
    pub fn eth_balance(&self, address: Address) -> U256 {
        self.accounts.get(&address).map(|i| i.balance).unwrap_or(U256::ZERO)
    }

    /// ERC-20 balance.
    pub fn erc20_balance(&self, token: Address, holder: Address) -> U256 {
        match (self.store.addr_id(token), self.store.addr_id(holder)) {
            (Some(t), Some(h)) => {
                self.erc20_balances.get(&(t, h)).copied().unwrap_or(U256::ZERO)
            }
            _ => U256::ZERO,
        }
    }

    /// Current ERC-20 allowance.
    pub fn erc20_allowance(&self, token: Address, owner: Address, spender: Address) -> U256 {
        match (
            self.store.addr_id(token),
            self.store.addr_id(owner),
            self.store.addr_id(spender),
        ) {
            (Some(t), Some(o), Some(s)) => {
                self.erc20_allowances.get(&(t, o, s)).copied().unwrap_or(U256::ZERO)
            }
            _ => U256::ZERO,
        }
    }

    /// Owner of an NFT, if it exists.
    pub fn nft_owner(&self, token: Address, id: u64) -> Option<Address> {
        let t = self.store.addr_id(token)?;
        self.nft_owners.get(&(t, id)).map(|&owner| self.store.resolve(owner))
    }

    /// `true` if `operator` is approved for all of `owner`'s NFTs in
    /// `token`.
    pub fn nft_approved_for_all(&self, token: Address, owner: Address, operator: Address) -> bool {
        match (
            self.store.addr_id(token),
            self.store.addr_id(owner),
            self.store.addr_id(operator),
        ) {
            (Some(t), Some(o), Some(p)) => self.nft_operators.contains(&(t, o, p)),
            _ => false,
        }
    }

    /// Account kind, if the account exists.
    pub fn account_kind(&self, address: Address) -> Option<&AccountKind> {
        self.accounts.get(&address).map(|i| &i.kind)
    }

    /// `true` if the address is a contract account.
    pub fn is_contract(&self, address: Address) -> bool {
        matches!(self.account_kind(address), Some(k) if k.is_contract())
    }

    /// Profit-sharing spec if the address is a drainer contract. This is
    /// *ground truth* — the detector never calls it; only the world
    /// generator and the evaluation harness do.
    pub fn profit_sharing_spec(&self, address: Address) -> Option<&ProfitSharingSpec> {
        self.account_kind(address).and_then(|k| k.profit_sharing())
    }

    /// Token metadata.
    pub fn token_meta(&self, token: Address) -> Option<&TokenMeta> {
        self.tokens.get(&token)
    }

    /// Timestamp an account was first seen (registered) at.
    pub fn account_created_at(&self, address: Address) -> Option<Timestamp> {
        self.accounts.get(&address).map(|i| i.created_at)
    }

    /// Transaction ids touching `address`, in chain order — the
    /// "historical transactions of the account" the snowball sampler
    /// walks (§5.1).
    pub fn txs_of(&self, address: Address) -> &[TxId] {
        match self.store.addr_id(address) {
            Some(id) => self.history.txs_of(id),
            None => &[],
        }
    }

    /// Transaction ids touching the interned account, in chain order —
    /// the zero-hash hot-path form of [`Chain::txs_of`].
    #[inline]
    pub fn txs_of_id(&self, id: AddrId) -> &[TxId] {
        self.history.txs_of(id)
    }

    /// The interned id of `address`, if the chain has seen it.
    #[inline]
    pub fn addr_id(&self, address: Address) -> Option<AddrId> {
        self.store.addr_id(address)
    }

    /// Resolves an interned id back to its address.
    #[inline]
    pub fn resolve_addr(&self, id: AddrId) -> Address {
        self.store.resolve(id)
    }

    /// A copyable, `Sync` read-only view over the tx arena and the
    /// sharded history index — the cheap handle worker threads take
    /// instead of borrowing the whole chain.
    pub fn reader(&self) -> ChainReader<'_> {
        ChainReader::new(&self.store, &self.history)
    }

    /// An owned (`Arc`-backed) snapshot of the sharded history index.
    /// Cloning is one `Arc` bump per shard; later chain mutations are
    /// invisible to the snapshot (copy-on-write).
    pub fn history_view(&self) -> ShardedHistories {
        self.history.clone()
    }

    /// Rebuilds the history index with a different (power-of-two) shard
    /// count. Data — and the serialized artifact — are unchanged; only
    /// the memory layout moves. Used by the shard-count equivalence
    /// suite.
    pub fn set_history_shards(&mut self, shards: usize) {
        self.history = self.history.resharded(shards);
    }

    /// Rebuilds *every* sharded structure — the history index and the
    /// four asset-state maps — with the same (power-of-two) shard count.
    /// This is the single knob `daas-cli --shards` / `DAAS_SHARDS`
    /// expose; like [`Chain::set_history_shards`], it changes memory
    /// layout only, never data or the serialized artifact.
    pub fn set_shards(&mut self, shards: usize) {
        self.history = self.history.resharded(shards);
        self.erc20_balances = self.erc20_balances.resharded(shards);
        self.erc20_allowances = self.erc20_allowances.resharded(shards);
        self.nft_owners = self.nft_owners.resharded(shards);
        self.nft_operators = self.nft_operators.resharded(shards);
    }

    /// Looks up a transaction by id — a cheap `Copy` view into the
    /// columnar arena.
    #[inline]
    pub fn tx(&self, id: TxId) -> TxView<'_> {
        self.store.view(id)
    }

    /// The columnar tx arena: all transactions, in chain order
    /// (`.len()`, `.iter()`, and `IntoIterator` of [`TxView`]s).
    pub fn transactions(&self) -> &TxStore {
        &self.store
    }

    /// Sealed block headers.
    pub fn blocks(&self) -> &[BlockHeader] {
        &self.blocks
    }

    /// Every registered account address (unordered).
    pub fn addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.accounts.keys().copied()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ChainStats {
        ChainStats {
            accounts: self.accounts.len(),
            contracts: self.accounts.values().filter(|i| i.kind.is_contract()).count(),
            transactions: self.store.len(),
            blocks: self.blocks.len(),
        }
    }

    // ------------------------------------------------------------------
    // Plain transactions.
    // ------------------------------------------------------------------

    /// A plain ETH transfer transaction.
    pub fn transfer_eth(
        &mut self,
        from: Address,
        to: Address,
        value: U256,
    ) -> Result<TxId, ChainError> {
        self.expect_account(to)?;
        self.debit_eth(from, value)?;
        self.credit_eth(to, value);
        let transfers = vec![Transfer { asset: Asset::Eth, from, to, amount: value }];
        Ok(self.record_tx(from, Some(to), value, CallInfo::plain(), transfers, vec![], None))
    }

    /// An ERC-20 `transfer(to, amount)` transaction.
    pub fn transfer_erc20(
        &mut self,
        from: Address,
        token: Address,
        to: Address,
        amount: U256,
    ) -> Result<TxId, ChainError> {
        self.expect_token(token, TokenKind::Erc20)?;
        self.expect_account(to)?;
        self.move_erc20(token, from, to, amount)?;
        let transfers =
            vec![Transfer { asset: Asset::Erc20(token), from, to, amount }];
        let call = CallInfo::named(selector("transfer(address,uint256)"), "transfer");
        Ok(self.record_tx(from, Some(token), U256::ZERO, call, transfers, vec![], None))
    }

    /// An ERC-20 `approve(spender, amount)` transaction. `amount == 0`
    /// revokes.
    pub fn approve_erc20(
        &mut self,
        owner: Address,
        token: Address,
        spender: Address,
        amount: U256,
    ) -> Result<TxId, ChainError> {
        self.expect_token(token, TokenKind::Erc20)?;
        self.expect_account(owner)?;
        let key =
            (self.store.intern(token), self.store.intern(owner), self.store.intern(spender));
        if amount.is_zero() {
            self.erc20_allowances.remove(&key);
        } else {
            self.erc20_allowances.insert(key, amount);
        }
        let approvals = vec![Approval { token, owner, spender, amount }];
        let call = CallInfo::named(selector("approve(address,uint256)"), "approve");
        Ok(self.record_tx(owner, Some(token), U256::ZERO, call, vec![], approvals, None))
    }

    /// An ERC-721 `setApprovalForAll(operator, approved)` transaction.
    pub fn approve_nft_all(
        &mut self,
        owner: Address,
        token: Address,
        operator: Address,
        approved: bool,
    ) -> Result<TxId, ChainError> {
        self.expect_token(token, TokenKind::Erc721)?;
        self.expect_account(owner)?;
        let key =
            (self.store.intern(token), self.store.intern(owner), self.store.intern(operator));
        if approved {
            self.nft_operators.insert(key);
        } else {
            self.nft_operators.remove(&key);
        }
        let approvals = vec![Approval {
            token,
            owner,
            spender: operator,
            amount: if approved { U256::MAX } else { U256::ZERO },
        }];
        let call =
            CallInfo::named(selector("setApprovalForAll(address,bool)"), "setApprovalForAll");
        Ok(self.record_tx(owner, Some(token), U256::ZERO, call, vec![], approvals, None))
    }

    /// A multi-output ETH transfer (airdrop / payroll / exchange sweep):
    /// benign background traffic with interesting shapes for the
    /// classifier's negative space.
    pub fn multi_transfer_eth(
        &mut self,
        from: Address,
        outputs: &[(Address, U256)],
    ) -> Result<TxId, ChainError> {
        let total: U256 = outputs.iter().map(|(_, v)| *v).sum();
        for (to, _) in outputs {
            self.expect_account(*to)?;
        }
        self.debit_eth(from, total)?;
        let mut transfers = Vec::with_capacity(outputs.len());
        for &(to, value) in outputs {
            self.credit_eth(to, value);
            transfers.push(Transfer { asset: Asset::Eth, from, to, amount: value });
        }
        let call = CallInfo::named(selector("disperseEther(address[],uint256[])"), "disperseEther");
        Ok(self.record_tx(from, Some(from), U256::ZERO, call, transfers, vec![], None))
    }

    /// A DEX swap: `trader` sends ETH to the pool, pool sends tokens back.
    /// Two transfers with *different* sources — a structurally adjacent
    /// negative for the profit-sharing rule.
    pub fn swap_eth_for_token(
        &mut self,
        trader: Address,
        dex: Address,
        token: Address,
        eth_in: U256,
        tokens_out: U256,
    ) -> Result<TxId, ChainError> {
        self.expect_contract_kind(dex, |k| matches!(k, ContractKind::Dex))?;
        self.expect_token(token, TokenKind::Erc20)?;
        self.debit_eth(trader, eth_in)?;
        self.credit_eth(dex, eth_in);
        if let Err(e) = self.move_erc20(token, dex, trader, tokens_out) {
            // Roll back the ETH leg so failure is atomic.
            self.debit_eth(dex, eth_in).expect("rollback of just-credited ETH");
            self.credit_eth(trader, eth_in);
            return Err(e);
        }
        let transfers = vec![
            Transfer { asset: Asset::Eth, from: trader, to: dex, amount: eth_in },
            Transfer { asset: Asset::Erc20(token), from: dex, to: trader, amount: tokens_out },
        ];
        let call = CallInfo::named(selector("swapExactETHForTokens(uint256,address[],address,uint256)"), "swapExactETHForTokens");
        Ok(self.record_tx(trader, Some(dex), eth_in, call, transfers, vec![], None))
    }

    /// A benign payment splitter: `payer` sends `value` to a splitter
    /// contract which forwards fixed basis-point shares to each
    /// recipient. Structurally adjacent to a profit-sharing transaction
    /// (two transfers from one source in fixed proportions) — the hard
    /// negative the paper's expansion guard exists for.
    pub fn split_payment(
        &mut self,
        payer: Address,
        splitter: Address,
        value: U256,
        recipients: &[(Address, u32)],
    ) -> Result<TxId, ChainError> {
        self.expect_contract_kind(splitter, |k| matches!(k, ContractKind::Benign))?;
        let total_bps: u32 = recipients.iter().map(|(_, bps)| *bps).sum();
        if total_bps == 0 || total_bps > 10_000 {
            return Err(ChainError::InvalidBps(total_bps));
        }
        for (to, _) in recipients {
            self.expect_account(*to)?;
        }
        self.debit_eth(payer, value)?;
        let mut transfers = Vec::with_capacity(1 + recipients.len());
        transfers.push(Transfer { asset: Asset::Eth, from: payer, to: splitter, amount: value });
        let mut remaining = value;
        for &(to, bps) in recipients {
            let cut = value.mul_div(U256::from_u64(bps as u64), U256::from_u64(10_000));
            remaining -= cut;
            self.credit_eth(to, cut);
            transfers.push(Transfer { asset: Asset::Eth, from: splitter, to, amount: cut });
        }
        // Rounding dust (and any sub-100% remainder) stays in the splitter.
        self.credit_eth(splitter, remaining);
        let call = CallInfo::named(selector("release()"), "release");
        Ok(self.record_tx(payer, Some(splitter), value, call, transfers, vec![], None))
    }

    // ------------------------------------------------------------------
    // Drainer actions (paper §4.2, Figure 3).
    // ------------------------------------------------------------------

    /// The ETH phishing scenario: the victim invokes the contract's
    /// payable entry point with `value`; the contract immediately forwards
    /// the operator's share to the operator and the rest (minus integer
    /// dust) to `affiliate`. One transaction, three ETH transfers.
    pub fn claim_eth(
        &mut self,
        victim: Address,
        contract: Address,
        value: U256,
        affiliate: Address,
    ) -> Result<TxId, ChainError> {
        let spec = self
            .profit_sharing_spec(contract)
            .ok_or(ChainError::NotProfitSharing(contract))?
            .clone();
        self.expect_account(affiliate)?;
        self.expect_account(spec.operator)?;
        self.debit_eth(victim, value)?;
        let bps = U256::from_u64(10_000);
        let op_cut = value.mul_div(U256::from_u64(spec.operator_bps as u64), bps);
        let aff_cut = value.mul_div(U256::from_u64((10_000 - spec.operator_bps) as u64), bps);
        // Dust from integer division stays in the contract, like the
        // Solidity in Listing 1.
        self.credit_eth(contract, value - op_cut - aff_cut);
        self.credit_eth(spec.operator, op_cut);
        self.credit_eth(affiliate, aff_cut);
        let transfers = vec![
            Transfer { asset: Asset::Eth, from: victim, to: contract, amount: value },
            Transfer { asset: Asset::Eth, from: contract, to: spec.operator, amount: op_cut },
            Transfer { asset: Asset::Eth, from: contract, to: affiliate, amount: aff_cut },
        ];
        let call = match spec.entry.selector() {
            Some(sel) => CallInfo::named(Some(sel), match &spec.entry {
                crate::account::EntryStyle::NamedPayable(name) => name,
                crate::account::EntryStyle::PayableFallback => unreachable!(),
            }),
            None => CallInfo::plain(),
        };
        Ok(self.record_tx(victim, Some(contract), value, call, transfers, vec![], None))
    }

    /// The ERC-20 phishing scenario: the drainer backend (`caller`,
    /// typically the operator EOA) triggers the contract's `multicall`,
    /// which `transferFrom`s the victim's approved tokens in two fixed
    /// shares — one to the operator, one to the affiliate. Requires a
    /// prior [`Chain::approve_erc20`] to `contract`.
    pub fn drain_erc20(
        &mut self,
        caller: Address,
        contract: Address,
        token: Address,
        victim: Address,
        amount: U256,
        affiliate: Address,
    ) -> Result<TxId, ChainError> {
        let spec = self
            .profit_sharing_spec(contract)
            .ok_or(ChainError::NotProfitSharing(contract))?
            .clone();
        self.expect_token(token, TokenKind::Erc20)?;
        self.expect_account(affiliate)?;
        self.spend_allowance(token, victim, contract, amount)?;
        let bps = U256::from_u64(10_000);
        let op_cut = amount.mul_div(U256::from_u64(spec.operator_bps as u64), bps);
        let aff_cut = amount - op_cut; // token path: no dust, full sweep
        self.move_erc20(token, victim, spec.operator, op_cut)?;
        self.move_erc20(token, victim, affiliate, aff_cut)?;
        let transfers = vec![
            Transfer { asset: Asset::Erc20(token), from: victim, to: spec.operator, amount: op_cut },
            Transfer { asset: Asset::Erc20(token), from: victim, to: affiliate, amount: aff_cut },
        ];
        let call = CallInfo::named(selector("multicall(bytes[])"), "multicall");
        Ok(self.record_tx(caller, Some(contract), U256::ZERO, call, transfers, vec![], None))
    }

    /// The ERC-20 *permit* phishing scenario (§7.2 lists "ERC20 permit
    /// phishing" among the schemes Multicall dispatches): the victim
    /// signs an off-chain EIP-2612 permit instead of an on-chain
    /// `approve`, so the approval and the sweep land in one transaction
    /// and no standing allowance remains afterwards.
    pub fn drain_erc20_permit(
        &mut self,
        caller: Address,
        contract: Address,
        token: Address,
        victim: Address,
        amount: U256,
        affiliate: Address,
    ) -> Result<TxId, ChainError> {
        let spec = self
            .profit_sharing_spec(contract)
            .ok_or(ChainError::NotProfitSharing(contract))?
            .clone();
        self.expect_token(token, TokenKind::Erc20)?;
        self.expect_account(affiliate)?;
        // The permit authorises exactly `amount`; it is consumed in full
        // by the sweep, so no allowance entry is created.
        let bps = U256::from_u64(10_000);
        let op_cut = amount.mul_div(U256::from_u64(spec.operator_bps as u64), bps);
        let aff_cut = amount - op_cut;
        self.move_erc20(token, victim, spec.operator, op_cut)?;
        if let Err(e) = self.move_erc20(token, victim, affiliate, aff_cut) {
            // Roll the first leg back so failure is atomic.
            self.move_erc20(token, spec.operator, victim, op_cut)
                .expect("rollback of just-moved tokens");
            return Err(e);
        }
        let transfers = vec![
            Transfer { asset: Asset::Erc20(token), from: victim, to: spec.operator, amount: op_cut },
            Transfer { asset: Asset::Erc20(token), from: victim, to: affiliate, amount: aff_cut },
        ];
        // The permit itself is visible in the trace as an approval event
        // granted and spent within the transaction.
        let approvals = vec![Approval { token, owner: victim, spender: contract, amount }];
        let call = CallInfo::named(selector("multicall(bytes[])"), "multicall");
        Ok(self.record_tx(caller, Some(contract), U256::ZERO, call, transfers, approvals, None))
    }

    /// The NFT phishing scenario, step 1: sweep the victim's NFT to the
    /// profit-sharing contract via `multicall` (requires a prior
    /// [`Chain::approve_nft_all`] to `contract`).
    pub fn drain_nft(
        &mut self,
        caller: Address,
        contract: Address,
        token: Address,
        victim: Address,
        id: u64,
    ) -> Result<TxId, ChainError> {
        self.profit_sharing_spec(contract).ok_or(ChainError::NotProfitSharing(contract))?;
        self.expect_token(token, TokenKind::Erc721)?;
        let owner =
            self.nft_owner(token, id).ok_or(ChainError::UnknownNft { token, id })?;
        if owner != victim {
            return Err(ChainError::NotNftOwner { token, id, caller: victim });
        }
        if !self.nft_approved_for_all(token, victim, contract) {
            return Err(ChainError::NotNftOwner { token, id, caller: contract });
        }
        let key = (self.store.intern(token), id);
        let new_owner = self.store.intern(contract);
        self.nft_owners.insert(key, new_owner);
        let transfers = vec![Transfer {
            asset: Asset::Erc721 { token, id },
            from: victim,
            to: contract,
            amount: U256::ONE,
        }];
        let call = CallInfo::named(selector("multicall(bytes[])"), "multicall");
        Ok(self.record_tx(caller, Some(contract), U256::ZERO, call, transfers, vec![], None))
    }

    /// The NFT *zero-value order* scheme (§7.2 lists "NFT Zero-order
    /// purchase" among Multicall's phishing schemes): the victim signs a
    /// marketplace sell order pricing the NFT at zero; the drainer
    /// fulfils it. Like a permit, the authorisation is an off-chain
    /// signature — no on-chain approval precedes the transfer.
    pub fn zero_value_order(
        &mut self,
        caller: Address,
        marketplace: Address,
        token: Address,
        id: u64,
        victim: Address,
        to: Address,
    ) -> Result<TxId, ChainError> {
        self.expect_contract_kind(marketplace, |k| matches!(k, ContractKind::Marketplace))?;
        self.expect_token(token, TokenKind::Erc721)?;
        self.expect_account(to)?;
        let owner = self.nft_owner(token, id).ok_or(ChainError::UnknownNft { token, id })?;
        if owner != victim {
            return Err(ChainError::NotNftOwner { token, id, caller: victim });
        }
        let key = (self.store.intern(token), id);
        let new_owner = self.store.intern(to);
        self.nft_owners.insert(key, new_owner);
        let transfers = vec![Transfer {
            asset: Asset::Erc721 { token, id },
            from: victim,
            to,
            amount: U256::ONE,
        }];
        let call = CallInfo::named(selector("fulfillOrder(bytes)"), "fulfillOrder");
        Ok(self.record_tx(caller, Some(marketplace), U256::ZERO, call, transfers, vec![], None))
    }

    /// NFT phishing, step 2: sell an NFT the `seller` account (often the
    /// profit-sharing contract, driven by the operator) holds to a
    /// marketplace for `price` wei. NFTs are indivisible, so they are
    /// liquidated before profit can be shared (§4.2).
    pub fn sell_nft(
        &mut self,
        caller: Address,
        marketplace: Address,
        token: Address,
        id: u64,
        seller: Address,
        price: U256,
    ) -> Result<TxId, ChainError> {
        self.expect_contract_kind(marketplace, |k| matches!(k, ContractKind::Marketplace))?;
        self.expect_token(token, TokenKind::Erc721)?;
        let owner = self.nft_owner(token, id).ok_or(ChainError::UnknownNft { token, id })?;
        if owner != seller {
            return Err(ChainError::NotNftOwner { token, id, caller: seller });
        }
        self.debit_eth(marketplace, price)?;
        let key = (self.store.intern(token), id);
        let new_owner = self.store.intern(marketplace);
        self.nft_owners.insert(key, new_owner);
        self.credit_eth(seller, price);
        let transfers = vec![
            Transfer { asset: Asset::Erc721 { token, id }, from: seller, to: marketplace, amount: U256::ONE },
            Transfer { asset: Asset::Eth, from: marketplace, to: seller, amount: price },
        ];
        let call = CallInfo::named(selector("fulfillOrder(bytes)"), "fulfillOrder");
        Ok(self.record_tx(caller, Some(marketplace), U256::ZERO, call, transfers, vec![], None))
    }

    /// NFT phishing, step 3 (and the generic payout path): the operator
    /// triggers the contract to distribute `amount` of its held ETH in the
    /// configured proportions. One transaction, exactly two transfers from
    /// the same source — the canonical profit-sharing shape (Figure 4).
    pub fn distribute_eth(
        &mut self,
        caller: Address,
        contract: Address,
        amount: U256,
        affiliate: Address,
    ) -> Result<TxId, ChainError> {
        let spec = self
            .profit_sharing_spec(contract)
            .ok_or(ChainError::NotProfitSharing(contract))?
            .clone();
        self.expect_account(affiliate)?;
        self.debit_eth(contract, amount)?;
        let bps = U256::from_u64(10_000);
        let op_cut = amount.mul_div(U256::from_u64(spec.operator_bps as u64), bps);
        let aff_cut = amount - op_cut;
        self.credit_eth(spec.operator, op_cut);
        self.credit_eth(affiliate, aff_cut);
        let transfers = vec![
            Transfer { asset: Asset::Eth, from: contract, to: spec.operator, amount: op_cut },
            Transfer { asset: Asset::Eth, from: contract, to: affiliate, amount: aff_cut },
        ];
        let call = CallInfo::named(selector("withdraw()"), "withdraw");
        Ok(self.record_tx(caller, Some(contract), U256::ZERO, call, transfers, vec![], None))
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn expect_account(&self, address: Address) -> Result<(), ChainError> {
        if self.accounts.contains_key(&address) {
            Ok(())
        } else {
            Err(ChainError::UnknownAccount(address))
        }
    }

    fn expect_token(&self, token: Address, kind: TokenKind) -> Result<(), ChainError> {
        match self.tokens.get(&token) {
            Some(meta) if meta.kind == kind => Ok(()),
            _ => Err(ChainError::UnknownToken(token)),
        }
    }

    fn expect_contract_kind(
        &self,
        address: Address,
        pred: impl Fn(&ContractKind) -> bool,
    ) -> Result<(), ChainError> {
        match self.account_kind(address) {
            Some(AccountKind::Contract(kind)) if pred(kind) => Ok(()),
            _ => Err(ChainError::NotAContract(address)),
        }
    }

    fn debit_eth(&mut self, from: Address, amount: U256) -> Result<(), ChainError> {
        let info = self.accounts.get_mut(&from).ok_or(ChainError::UnknownAccount(from))?;
        if info.balance < amount {
            return Err(ChainError::InsufficientBalance {
                account: from,
                asset: Asset::Eth,
                have: info.balance,
                need: amount,
            });
        }
        info.balance -= amount;
        Ok(())
    }

    fn credit_eth(&mut self, to: Address, amount: U256) {
        if let Some(info) = self.accounts.get_mut(&to) {
            info.balance = info.balance.saturating_add(amount);
        }
    }

    fn move_erc20(
        &mut self,
        token: Address,
        from: Address,
        to: Address,
        amount: U256,
    ) -> Result<(), ChainError> {
        let have = self.erc20_balance(token, from);
        if have < amount {
            return Err(ChainError::InsufficientBalance {
                account: from,
                asset: Asset::Erc20(token),
                have,
                need: amount,
            });
        }
        let t = self.store.intern(token);
        let f = self.store.intern(from);
        let d = self.store.intern(to);
        *self.erc20_balances.get_mut_or_insert((t, f), U256::ZERO) = have - amount;
        let dst = self.erc20_balances.get_mut_or_insert((t, d), U256::ZERO);
        *dst = dst.saturating_add(amount);
        Ok(())
    }

    fn spend_allowance(
        &mut self,
        token: Address,
        owner: Address,
        spender: Address,
        amount: U256,
    ) -> Result<(), ChainError> {
        let have = self.erc20_allowance(token, owner, spender);
        if have < amount {
            return Err(ChainError::InsufficientAllowance { token, owner, spender, have, need: amount });
        }
        if have != U256::MAX {
            let key = (
                self.store.intern(token),
                self.store.intern(owner),
                self.store.intern(spender),
            );
            self.erc20_allowances.insert(key, have - amount);
        }
        Ok(())
    }

    // One parameter per transaction field; bundling them into a struct
    // would just restate the Transaction type.
    #[allow(clippy::too_many_arguments)]
    fn record_tx(
        &mut self,
        from: Address,
        to: Option<Address>,
        value: U256,
        call: CallInfo,
        transfers: Vec<Transfer>,
        approvals: Vec<Approval>,
        created: Option<Address>,
    ) -> TxId {
        let id = self.store.len() as TxId;
        // Deterministic hash over the identifying fields. The preimage is
        // at most 4 + 20 + 20 + 32 + 8 = 84 bytes — a fixed stack buffer
        // instead of a heap allocation per transaction.
        let mut preimage = [0u8; 84];
        let mut len = 0usize;
        let mut put = |bytes: &[u8]| {
            preimage[len..len + bytes.len()].copy_from_slice(bytes);
            len += bytes.len();
        };
        put(&id.to_be_bytes());
        put(from.as_bytes());
        if let Some(to) = to {
            put(to.as_bytes());
        }
        put(&value.to_be_bytes());
        put(&self.now.to_be_bytes());
        let hash = keccak256(&preimage[..len]);

        // Bump the sender's nonce (contract creations bumped it already
        // when deriving the address).
        if created.is_none() {
            if let Some(info) = self.accounts.get_mut(&from) {
                info.nonce += 1;
            }
        }

        // Batched block sealing: transactions append to the open block
        // while `now` stays inside its 12-second slot (one compare —
        // time never goes backwards); a new header is sealed only on
        // slot rollover, which is the only place the slot division runs.
        let block = match self.blocks.last_mut() {
            Some(header)
                if self.now < GENESIS_TIMESTAMP + (header.number + 1) * SECONDS_PER_BLOCK =>
            {
                header.tx_count += 1;
                header.number
            }
            _ => {
                let number = block_number_at(self.now);
                self.blocks.push(BlockHeader {
                    number,
                    timestamp: self.now,
                    first_tx: id,
                    tx_count: 1,
                });
                number
            }
        };

        let recorded = self.store.push_tx(
            hash, block, self.now, from, to, value, &call, &transfers, &approvals, created,
        );
        debug_assert_eq!(recorded, id);
        let mut touched = Vec::with_capacity(2 + transfers.len() * 2);
        self.store.touched_ids_into(id, &mut touched);
        for addr_id in touched {
            self.history.push(addr_id, id);
        }
        id
    }
}

// ----------------------------------------------------------------------
// Serialization: the columnar layout flattens back to the exact bytes
// the pre-columnar (`Vec<Transaction>` + address-keyed maps) derive
// produced. Field order, entry sorting, and key encodings all match;
// ids never appear on disk. Deserialization re-interns in tx order and
// rebuilds the history index from the arena (it is fully derivable).
// ----------------------------------------------------------------------

impl Serialize for Chain {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::Error as _;
        fn val<S: Serializer, T: Serialize + ?Sized>(v: &T) -> Result<Value, S::Error> {
            serde::to_value(v).map_err(S::Error::custom)
        }

        // Materialized transactions: identical bytes to the old
        // `Vec<Transaction>` field (one tx at a time — no full vector).
        let mut txs = Vec::with_capacity(self.store.len());
        for id in 0..self.store.len() as TxId {
            txs.push(val::<S, _>(&self.store.to_transaction(id))?);
        }

        // Asset maps: resolve ids to addresses, then emit the same
        // sorted entry lists the address-keyed ShardedMap/Set serialize
        // to.
        let mut balances: Vec<((Address, Address), &U256)> = self
            .erc20_balances
            .iter()
            .map(|(&(t, h), v)| ((self.store.resolve(t), self.store.resolve(h)), v))
            .collect();
        balances.sort_by(|a, b| a.0.cmp(&b.0));

        let mut allowances: Vec<((Address, Address, Address), &U256)> = self
            .erc20_allowances
            .iter()
            .map(|(&(t, o, s), v)| {
                (
                    (self.store.resolve(t), self.store.resolve(o), self.store.resolve(s)),
                    v,
                )
            })
            .collect();
        allowances.sort_by(|a, b| a.0.cmp(&b.0));

        let mut owners: Vec<((Address, u64), Address)> = self
            .nft_owners
            .iter()
            .map(|(&(t, id), &owner)| ((self.store.resolve(t), id), self.store.resolve(owner)))
            .collect();
        owners.sort_by(|a, b| a.0.cmp(&b.0));

        let mut operators: Vec<(Address, Address, Address)> = self
            .nft_operators
            .iter()
            .map(|&(t, o, p)| (self.store.resolve(t), self.store.resolve(o), self.store.resolve(p)))
            .collect();
        operators.sort();

        // History: the flat address-keyed map, entries sorted by the
        // serialized key string (addresses serialize as lowercase hex,
        // so string order == byte order) — exactly what the HashMap
        // delegate emitted pre-refactor.
        let mut history: Vec<(String, Value)> = Vec::with_capacity(self.history.accounts());
        for (&id, txids) in self.history.iter() {
            history.push((self.store.resolve(id).to_hex(), val::<S, _>(txids)?));
        }
        history.sort_by(|a, b| a.0.cmp(&b.0));

        serializer.serialize_value(Value::Map(vec![
            ("now".to_owned(), val::<S, _>(&self.now)?),
            ("blocks".to_owned(), val::<S, _>(&self.blocks)?),
            ("txs".to_owned(), Value::Seq(txs)),
            ("accounts".to_owned(), val::<S, _>(&self.accounts)?),
            ("tokens".to_owned(), val::<S, _>(&self.tokens)?),
            ("erc20_balances".to_owned(), val::<S, _>(&balances)?),
            ("erc20_allowances".to_owned(), val::<S, _>(&allowances)?),
            ("nft_owners".to_owned(), val::<S, _>(&owners)?),
            ("nft_operators".to_owned(), val::<S, _>(&operators)?),
            ("history".to_owned(), Value::Map(history)),
        ]))
    }
}

impl<'de> Deserialize<'de> for Chain {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut map =
            serde::expect_map(deserializer.into_value()?, "Chain").map_err(D::Error::custom)?;
        fn field<E: serde::de::Error, T: for<'a> Deserialize<'a>>(
            map: &mut Vec<(String, Value)>,
            name: &str,
        ) -> Result<T, E> {
            serde::take_field(map, name, "Chain")
                .and_then(serde::from_value)
                .map_err(E::custom)
        }

        let now: Timestamp = field::<D::Error, _>(&mut map, "now")?;
        let blocks: Vec<BlockHeader> = field::<D::Error, _>(&mut map, "blocks")?;
        let txs: Vec<Transaction> = field::<D::Error, _>(&mut map, "txs")?;
        let accounts: DetMap<Address, AccountInfo> = field::<D::Error, _>(&mut map, "accounts")?;
        let tokens: DetMap<Address, TokenMeta> = field::<D::Error, _>(&mut map, "tokens")?;
        let balances: Vec<((Address, Address), U256)> =
            field::<D::Error, _>(&mut map, "erc20_balances")?;
        let allowances: Vec<((Address, Address, Address), U256)> =
            field::<D::Error, _>(&mut map, "erc20_allowances")?;
        let owners: Vec<((Address, u64), Address)> =
            field::<D::Error, _>(&mut map, "nft_owners")?;
        let operators: Vec<(Address, Address, Address)> =
            field::<D::Error, _>(&mut map, "nft_operators")?;
        // The serialized history is fully derivable from the tx arena;
        // rebuilding it below guarantees index/arena consistency.
        let _ = serde::take_field_opt(&mut map, "history");

        let mut store = TxStore::from_transactions(txs);
        let mut history = ShardedHistories::new();
        let mut touched = Vec::new();
        for id in 0..store.len() as TxId {
            store.touched_ids_into(id, &mut touched);
            for &addr_id in &touched {
                history.push(addr_id, id);
            }
        }

        let mut erc20_balances = ShardedMap::default();
        for ((t, h), v) in balances {
            erc20_balances.insert((store.intern(t), store.intern(h)), v);
        }
        let mut erc20_allowances = ShardedMap::default();
        for ((t, o, s), v) in allowances {
            erc20_allowances.insert((store.intern(t), store.intern(o), store.intern(s)), v);
        }
        let mut nft_owners = ShardedMap::default();
        for ((t, id), owner) in owners {
            let key = (store.intern(t), id);
            let owner = store.intern(owner);
            nft_owners.insert(key, owner);
        }
        let mut nft_operators = ShardedSet::default();
        for (t, o, p) in operators {
            nft_operators.insert((store.intern(t), store.intern(o), store.intern(p)));
        }

        Ok(Chain {
            now,
            blocks,
            store,
            accounts,
            tokens,
            erc20_balances,
            erc20_allowances,
            nft_owners,
            nft_operators,
            history,
        })
    }
}

/// Solidity-style 4-byte selector of a canonical signature.
fn selector(sig: &str) -> Option<[u8; 4]> {
    let h = keccak256(sig.as_bytes());
    Some([h.0[0], h.0[1], h.0[2], h.0[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::EntryStyle;
    use eth_types::units::ether;

    fn setup() -> (Chain, Address, Address, Address, Address) {
        let mut chain = Chain::new();
        let operator = chain.create_eoa_funded(b"operator", ether(10)).unwrap();
        let affiliate = chain.create_eoa_funded(b"affiliate", ether(1)).unwrap();
        let victim = chain.create_eoa_funded(b"victim", ether(100)).unwrap();
        let contract = chain
            .deploy_contract(
                operator,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator,
                    operator_bps: 2000,
                    entry: EntryStyle::NamedPayable("Claim".into()),
                }),
            )
            .unwrap();
        (chain, operator, affiliate, victim, contract)
    }

    #[test]
    fn eth_drain_splits_20_80() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let id = chain.claim_eth(victim, contract, ether(10), affiliate).unwrap();
        assert_eq!(chain.eth_balance(victim), ether(90));
        assert_eq!(chain.eth_balance(operator), ether(12)); // 10 + 2
        assert_eq!(chain.eth_balance(affiliate), ether(9)); // 1 + 8
        let tx = chain.tx(id);
        assert_eq!(tx.transfer_count(), 3);
        // Fund flow out of the contract: exactly two transfers.
        let outgoing: Vec<_> = tx.transfers_from(contract).collect();
        assert_eq!(outgoing.len(), 2);
        assert_eq!(outgoing[0].amount, ether(2));
        assert_eq!(outgoing[1].amount, ether(8));
        assert_eq!(tx.function(), Some("Claim"));
    }

    #[test]
    fn eth_drain_insufficient_balance_is_atomic() {
        let (mut chain, _op, affiliate, victim, contract) = setup();
        let before = chain.stats();
        let err = chain.claim_eth(victim, contract, ether(1000), affiliate).unwrap_err();
        assert!(matches!(err, ChainError::InsufficientBalance { .. }));
        assert_eq!(chain.stats(), before);
        assert_eq!(chain.eth_balance(victim), ether(100));
    }

    #[test]
    fn fallback_entry_has_plain_call() {
        let mut chain = Chain::new();
        let operator = chain.create_eoa_funded(b"op", ether(1)).unwrap();
        let affiliate = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", ether(5)).unwrap();
        let contract = chain
            .deploy_contract(
                operator,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator,
                    operator_bps: 1500,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let id = chain.claim_eth(victim, contract, ether(2), affiliate).unwrap();
        let tx = chain.tx(id);
        assert_eq!(tx.selector(), None);
        assert_eq!(tx.function(), None);
    }

    #[test]
    fn erc20_drain_requires_allowance() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let token = chain.deploy_token(operator, "USDC", 6, TokenKind::Erc20).unwrap();
        chain.mint_erc20(token, victim, U256::from_u64(1_000_000)).unwrap();
        // No approval yet: drain fails.
        let err = chain
            .drain_erc20(operator, contract, token, victim, U256::from_u64(500_000), affiliate)
            .unwrap_err();
        assert!(matches!(err, ChainError::InsufficientAllowance { .. }));
        // Victim signs the phishing approval.
        chain.approve_erc20(victim, token, contract, U256::MAX).unwrap();
        let id = chain
            .drain_erc20(operator, contract, token, victim, U256::from_u64(500_000), affiliate)
            .unwrap();
        assert_eq!(chain.erc20_balance(token, operator), U256::from_u64(100_000));
        assert_eq!(chain.erc20_balance(token, affiliate), U256::from_u64(400_000));
        assert_eq!(chain.erc20_balance(token, victim), U256::from_u64(500_000));
        let tx = chain.tx(id);
        assert_eq!(tx.transfer_count(), 2);
        assert!(tx.transfers().all(|t| t.from == victim));
        assert_eq!(tx.function(), Some("multicall"));
    }

    #[test]
    fn erc20_finite_allowance_is_consumed() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let token = chain.deploy_token(operator, "DAI", 18, TokenKind::Erc20).unwrap();
        chain.mint_erc20(token, victim, ether(100)).unwrap();
        chain.approve_erc20(victim, token, contract, ether(50)).unwrap();
        chain.drain_erc20(operator, contract, token, victim, ether(50), affiliate).unwrap();
        assert_eq!(chain.erc20_allowance(token, victim, contract), U256::ZERO);
        // Second drain fails: allowance exhausted.
        assert!(chain
            .drain_erc20(operator, contract, token, victim, U256::ONE, affiliate)
            .is_err());
    }

    #[test]
    fn unlimited_allowance_not_consumed_victim_stays_exposed() {
        // §6.1: victims who do not revoke unlimited approvals remain
        // drainable when they reacquire tokens.
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let token = chain.deploy_token(operator, "USDT", 6, TokenKind::Erc20).unwrap();
        chain.mint_erc20(token, victim, U256::from_u64(100)).unwrap();
        chain.approve_erc20(victim, token, contract, U256::MAX).unwrap();
        chain.drain_erc20(operator, contract, token, victim, U256::from_u64(100), affiliate).unwrap();
        // Victim reacquires tokens; still approved; drained again.
        chain.mint_erc20(token, victim, U256::from_u64(40)).unwrap();
        assert!(chain
            .drain_erc20(operator, contract, token, victim, U256::from_u64(40), affiliate)
            .is_ok());
        // Until they revoke.
        chain.approve_erc20(victim, token, contract, U256::ZERO).unwrap();
        chain.mint_erc20(token, victim, U256::from_u64(40)).unwrap();
        assert!(chain
            .drain_erc20(operator, contract, token, victim, U256::from_u64(40), affiliate)
            .is_err());
    }

    #[test]
    fn permit_drain_needs_no_prior_approval_and_leaves_none() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let token = chain.deploy_token(operator, "USDC", 6, TokenKind::Erc20).unwrap();
        chain.mint_erc20(token, victim, U256::from_u64(1_000_000)).unwrap();
        let id = chain
            .drain_erc20_permit(operator, contract, token, victim, U256::from_u64(1_000_000), affiliate)
            .unwrap();
        assert_eq!(chain.erc20_balance(token, operator), U256::from_u64(200_000));
        assert_eq!(chain.erc20_balance(token, affiliate), U256::from_u64(800_000));
        // No standing allowance remains — the §6.1 "unrevoked approval"
        // exposure does not apply to permit victims.
        assert_eq!(chain.erc20_allowance(token, victim, contract), U256::ZERO);
        let tx = chain.tx(id);
        assert_eq!(tx.transfer_count(), 2);
        assert_eq!(tx.approval_count(), 1, "the permit shows in the trace");
        assert_eq!(tx.approval(0).amount, U256::from_u64(1_000_000));
    }

    #[test]
    fn permit_drain_insufficient_balance_is_atomic() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let token = chain.deploy_token(operator, "USDC", 6, TokenKind::Erc20).unwrap();
        chain.mint_erc20(token, victim, U256::from_u64(100)).unwrap();
        let before = chain.stats();
        let err = chain
            .drain_erc20_permit(operator, contract, token, victim, U256::from_u64(500), affiliate)
            .unwrap_err();
        assert!(matches!(err, ChainError::InsufficientBalance { .. }));
        assert_eq!(chain.stats(), before);
        assert_eq!(chain.erc20_balance(token, victim), U256::from_u64(100));
    }

    #[test]
    fn nft_drain_sale_distribute_pipeline() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let nft = chain.deploy_token(operator, "AZUKI", 0, TokenKind::Erc721).unwrap();
        let market_owner = chain.create_eoa_funded(b"market-owner", ether(1)).unwrap();
        let market = chain.deploy_contract(market_owner, ContractKind::Marketplace).unwrap();
        chain.mint_eth(market, ether(1_000)).unwrap();
        chain.mint_nft(nft, victim, 42).unwrap();

        chain.approve_nft_all(victim, nft, contract, true).unwrap();
        chain.drain_nft(operator, contract, nft, victim, 42).unwrap();
        assert_eq!(chain.nft_owner(nft, 42), Some(contract));

        chain.sell_nft(operator, market, nft, 42, contract, ether(30)).unwrap();
        assert_eq!(chain.nft_owner(nft, 42), Some(market));
        assert_eq!(chain.eth_balance(contract), ether(30));

        let id = chain.distribute_eth(operator, contract, ether(30), affiliate).unwrap();
        let tx = chain.tx(id);
        assert_eq!(tx.transfer_count(), 2);
        assert!(tx.transfers().all(|t| t.from == contract));
        assert_eq!(chain.eth_balance(operator), ether(16)); // 10 + 6
        assert_eq!(chain.eth_balance(affiliate), ether(25)); // 1 + 24
    }

    #[test]
    fn zero_value_order_moves_nft_without_approval() {
        let (mut chain, operator, _affiliate, victim, contract) = setup();
        let nft = chain.deploy_token(operator, "MOON", 0, TokenKind::Erc721).unwrap();
        let mowner = chain.create_eoa_funded(b"zo-owner", ether(1)).unwrap();
        let market = chain.deploy_contract(mowner, ContractKind::Marketplace).unwrap();
        chain.mint_nft(nft, victim, 9).unwrap();
        // No setApprovalForAll — the order signature authorises it.
        let id = chain
            .zero_value_order(operator, market, nft, 9, victim, contract)
            .unwrap();
        assert_eq!(chain.nft_owner(nft, 9), Some(contract));
        let tx = chain.tx(id);
        assert_eq!(tx.transfer_count(), 1);
        assert_eq!(tx.approval_count(), 0);
        assert_eq!(tx.value(), U256::ZERO);
        // Wrong owner now (the contract holds it) — fails.
        let err = chain
            .zero_value_order(operator, market, nft, 9, victim, contract)
            .unwrap_err();
        assert!(matches!(err, ChainError::NotNftOwner { .. }));
    }

    #[test]
    fn nft_drain_requires_operator_approval() {
        let (mut chain, operator, _affiliate, victim, contract) = setup();
        let nft = chain.deploy_token(operator, "BAYC", 0, TokenKind::Erc721).unwrap();
        chain.mint_nft(nft, victim, 7).unwrap();
        let err = chain.drain_nft(operator, contract, nft, victim, 7).unwrap_err();
        assert!(matches!(err, ChainError::NotNftOwner { .. }));
    }

    #[test]
    fn history_indexes_all_parties() {
        let (mut chain, operator, affiliate, victim, contract) = setup();
        let id = chain.claim_eth(victim, contract, ether(1), affiliate).unwrap();
        for party in [operator, affiliate, victim, contract] {
            assert!(chain.txs_of(party).contains(&id), "history missing for {party}");
        }
        // An unrelated account has no history.
        assert!(chain.txs_of(Address::from_key_seed(b"stranger")).is_empty());
    }

    #[test]
    fn blocks_advance_with_time() {
        let (mut chain, _op, affiliate, victim, contract) = setup();
        chain.claim_eth(victim, contract, ether(1), affiliate).unwrap();
        chain.advance(12);
        chain.claim_eth(victim, contract, ether(1), affiliate).unwrap();
        chain.claim_eth(victim, contract, ether(1), affiliate).unwrap();
        let blocks = chain.blocks();
        // Deployment tx + first claim in block 0, next two claims in block 1.
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].tx_count, 2);
        assert_eq!(blocks[1].tx_count, 2);
        assert_eq!(blocks[1].number, blocks[0].number + 1);
    }

    #[test]
    fn time_cannot_go_backwards() {
        let mut chain = Chain::new();
        chain.advance(100);
        let err = chain.set_time(GENESIS_TIMESTAMP).unwrap_err();
        assert!(matches!(err, ChainError::TimeWentBackwards { .. }));
    }

    #[test]
    fn deploy_derives_distinct_create_addresses() {
        let mut chain = Chain::new();
        let deployer = chain.create_eoa_funded(b"d", ether(1)).unwrap();
        let a = chain.deploy_contract(deployer, ContractKind::Benign).unwrap();
        let b = chain.deploy_contract(deployer, ContractKind::Benign).unwrap();
        assert_ne!(a, b);
        assert_eq!(a, Address::create(deployer, 0));
        assert_eq!(b, Address::create(deployer, 1));
        assert!(chain.is_contract(a));
    }

    #[test]
    fn invalid_bps_rejected() {
        let mut chain = Chain::new();
        let op = chain.create_eoa(b"op").unwrap();
        for bps in [0, 10_000, 20_000] {
            let err = chain
                .deploy_contract(
                    op,
                    ContractKind::ProfitSharing(ProfitSharingSpec {
                        operator: op,
                        operator_bps: bps,
                        entry: EntryStyle::PayableFallback,
                    }),
                )
                .unwrap_err();
            assert_eq!(err, ChainError::InvalidBps(bps));
        }
    }

    #[test]
    fn dust_stays_in_contract() {
        // 33% of 10 wei = 3 wei op, 67% = 6 wei aff, 1 wei dust.
        let mut chain = Chain::new();
        let op = chain.create_eoa(b"op").unwrap();
        let aff = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", U256::from_u64(10)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 3300,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        chain.claim_eth(victim, contract, U256::from_u64(10), aff).unwrap();
        assert_eq!(chain.eth_balance(op), U256::from_u64(3));
        assert_eq!(chain.eth_balance(aff), U256::from_u64(6));
        assert_eq!(chain.eth_balance(contract), U256::from_u64(1));
    }

    #[test]
    fn swap_is_atomic_on_failure() {
        let mut chain = Chain::new();
        let owner = chain.create_eoa_funded(b"o", ether(1)).unwrap();
        let trader = chain.create_eoa_funded(b"t", ether(5)).unwrap();
        let dex = chain.deploy_contract(owner, ContractKind::Dex).unwrap();
        let token = chain.deploy_token(owner, "UNI", 18, TokenKind::Erc20).unwrap();
        // Dex has no token liquidity: swap fails, ETH refunded.
        let err = chain.swap_eth_for_token(trader, dex, token, ether(1), ether(10)).unwrap_err();
        assert!(matches!(err, ChainError::InsufficientBalance { .. }));
        assert_eq!(chain.eth_balance(trader), ether(5));
        assert_eq!(chain.eth_balance(dex), U256::ZERO);
    }

    #[test]
    fn multi_transfer_shapes() {
        let mut chain = Chain::new();
        let payer = chain.create_eoa_funded(b"p", ether(100)).unwrap();
        let a = chain.create_eoa(b"a").unwrap();
        let b = chain.create_eoa(b"b").unwrap();
        let c = chain.create_eoa(b"c").unwrap();
        let id = chain
            .multi_transfer_eth(payer, &[(a, ether(1)), (b, ether(2)), (c, ether(3))])
            .unwrap();
        assert_eq!(chain.tx(id).transfer_count(), 3);
        assert_eq!(chain.eth_balance(payer), ether(94));
        assert_eq!(chain.eth_balance(c), ether(3));
    }

    #[test]
    fn benign_splitter_mimics_profit_share_shape() {
        let mut chain = Chain::new();
        let owner = chain.create_eoa_funded(b"owner", ether(1)).unwrap();
        let a = chain.create_eoa(b"ra").unwrap();
        let b = chain.create_eoa(b"rb").unwrap();
        let payer = chain.create_eoa_funded(b"payer", ether(10)).unwrap();
        let splitter = chain.deploy_contract(owner, ContractKind::Benign).unwrap();
        let id = chain
            .split_payment(payer, splitter, ether(10), &[(a, 3000), (b, 7000)])
            .unwrap();
        let tx = chain.tx(id);
        let outgoing: Vec<_> = tx.transfers_from(splitter).collect();
        assert_eq!(outgoing.len(), 2);
        assert_eq!(chain.eth_balance(a), ether(3));
        assert_eq!(chain.eth_balance(b), ether(7));
        assert_eq!(chain.eth_balance(splitter), U256::ZERO);
    }

    #[test]
    fn splitter_rejects_bad_bps_and_wrong_kind() {
        let mut chain = Chain::new();
        let owner = chain.create_eoa_funded(b"owner", ether(1)).unwrap();
        let a = chain.create_eoa(b"ra").unwrap();
        let payer = chain.create_eoa_funded(b"payer", ether(10)).unwrap();
        let splitter = chain.deploy_contract(owner, ContractKind::Benign).unwrap();
        assert!(matches!(
            chain.split_payment(payer, splitter, ether(1), &[(a, 10_001)]),
            Err(ChainError::InvalidBps(10_001))
        ));
        assert!(matches!(
            chain.split_payment(payer, splitter, ether(1), &[]),
            Err(ChainError::InvalidBps(0))
        ));
        // A profit-sharing contract is not a Benign splitter.
        let ps = chain
            .deploy_contract(
                owner,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: owner,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        assert!(matches!(
            chain.split_payment(payer, ps, ether(1), &[(a, 1000)]),
            Err(ChainError::NotAContract(_))
        ));
    }

    #[test]
    fn tx_hashes_unique() {
        let (mut chain, _op, affiliate, victim, contract) = setup();
        let a = chain.claim_eth(victim, contract, ether(1), affiliate).unwrap();
        let b = chain.claim_eth(victim, contract, ether(1), affiliate).unwrap();
        assert_ne!(chain.tx(a).hash(), chain.tx(b).hash());
    }

    #[test]
    fn stats_count() {
        let (chain, ..) = setup();
        let stats = chain.stats();
        assert_eq!(stats.accounts, 4);
        assert_eq!(stats.contracts, 1);
        assert_eq!(stats.transactions, 1); // the deployment
    }
}
